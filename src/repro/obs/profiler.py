"""Per-epoch phase timing and its aggregation.

The control loop is split into named phases (:data:`PHASES`):

``decide``
    The controller's ``decide`` call — the quantity behind the paper's
    scalability claim C3.  The profiler reuses the same ``perf_counter``
    pair the simulator already takes for ``decision_time``, so profiling
    adds no measurement overhead to the number the paper reports.
``plant``
    The chip step: power/performance evaluation plus thermal integration.
``sensor``
    Telemetry assembly inside the chip step (subset of ``plant``).
``contracts``
    Runtime invariant checks in the simulate loop.
``sanitizer``
    Telemetry sanitization inside ``decide`` (subset of ``decide``).
``watchdog``
    Watchdog wrapper overhead around the inner controller (subset of
    ``decide``).

A :class:`PhaseProfiler` accumulates one duration row per epoch; the
final :class:`TimingBreakdown` carries totals, per-epoch means, and the
epoch count, and serializes to a plain dict for ``result.extras`` and the
``run_end`` trace event.  All numbers are wall-clock seconds and live
only in extras/traces — never in the deterministic simulation series.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Tuple

__all__ = ["PHASES", "PhaseProfiler", "TimingBreakdown"]

#: Phase names in canonical display order.
PHASES: Tuple[str, ...] = (
    "decide",
    "plant",
    "sensor",
    "contracts",
    "sanitizer",
    "watchdog",
)

#: Phases measured inside another phase; their exclusive parent time is
#: reported as ``parent - sum(children)`` by the summary renderer.
NESTED_IN: Dict[str, str] = {
    "sensor": "plant",
    "sanitizer": "decide",
    "watchdog": "decide",
}


@dataclass
class TimingBreakdown:
    """Aggregated wall-clock split of a run's control loop.

    Attributes
    ----------
    totals:
        Cumulative seconds per phase over the run.
    n_epochs:
        Number of epochs aggregated.
    """

    totals: Dict[str, float]
    n_epochs: int

    def mean(self, phase: str) -> float:
        """Mean seconds per epoch for ``phase`` (0 when no epochs ran)."""
        if self.n_epochs == 0:
            return 0.0
        return self.totals.get(phase, 0.0) / self.n_epochs

    def as_dict(self) -> Dict[str, object]:
        """JSON-serializable form stored under ``extras['timing']``."""
        return {
            "n_epochs": self.n_epochs,
            "totals": {p: self.totals.get(p, 0.0) for p in PHASES},
            "means": {p: self.mean(p) for p in PHASES},
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, object]) -> "TimingBreakdown":
        totals = data.get("totals")
        n_epochs = data.get("n_epochs")
        if not isinstance(totals, Mapping) or not isinstance(n_epochs, int):
            raise ValueError("not a serialized TimingBreakdown")
        return cls(
            totals={str(k): float(v) for k, v in totals.items()},  # type: ignore[arg-type]
            n_epochs=n_epochs,
        )


@dataclass
class PhaseProfiler:
    """Accumulates per-phase durations epoch by epoch.

    The simulate loop (and, via duck-typed attributes, the chip and the
    controller wrappers) call :meth:`add` with measured durations, then
    :meth:`end_epoch` once per control epoch.  ``add`` accepts repeated
    calls for the same phase within an epoch and sums them — the thermal
    substep structure makes that the natural contract.

    The profiler is observability state only: it must never feed values
    back into the simulation, so everything it stores is write-only until
    :meth:`breakdown`.
    """

    _totals: Dict[str, float] = field(default_factory=dict)
    _epoch_row: Dict[str, float] = field(default_factory=dict)
    _epoch_rows: List[Dict[str, float]] = field(default_factory=list)
    _n_epochs: int = 0

    def add(self, phase: str, seconds: float) -> None:
        if phase not in PHASES:
            raise ValueError(f"unknown phase {phase!r}; known: {PHASES}")
        self._epoch_row[phase] = self._epoch_row.get(phase, 0.0) + float(seconds)

    def end_epoch(self) -> Dict[str, float]:
        """Close the current epoch; returns its phase->seconds row."""
        row = self._epoch_row
        for phase, seconds in row.items():
            self._totals[phase] = self._totals.get(phase, 0.0) + seconds
        self._epoch_rows.append(row)
        self._epoch_row = {}
        self._n_epochs += 1
        return row

    @property
    def n_epochs(self) -> int:
        return self._n_epochs

    @property
    def epoch_rows(self) -> List[Dict[str, float]]:
        """Per-epoch phase rows, in epoch order (read-only use)."""
        return self._epoch_rows

    def breakdown(self) -> TimingBreakdown:
        """Aggregate everything recorded so far."""
        return TimingBreakdown(totals=dict(self._totals), n_epochs=self._n_epochs)
