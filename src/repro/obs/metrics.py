"""Counter/gauge registry shared by the fault and parallel subsystems.

Before this module, each subsystem grew its own ad-hoc tally dict
(``FaultInjector.counts``, ``ResultCache.hits``/``misses``, the engine's
retry bookkeeping) with no common way to snapshot or diff them.  A
:class:`CounterRegistry` gives them one namespace-qualified home:

>>> reg = CounterRegistry()
>>> reg.inc("cache.hits")
>>> reg.set_gauge("engine.workers", 4)
>>> reg.snapshot()
{'cache.hits': 1, 'engine.workers': 4}

Counters are monotone integers (``inc``); gauges are set-to-value
(``set_gauge``) and may be floats.  ``snapshot()`` returns a plain dict
(sorted keys) safe to embed in extras or trace events; ``delta()``
diffs two snapshots, which is how the simulate loop turns cumulative
subsystem tallies into per-epoch incident events without the subsystems
ever knowing a recorder exists.

The registry is observability state: nothing in the simulation may read
values back out of it to make decisions.  Legacy surfaces
(``FaultInjector.counts`` etc.) remain as read-only compatibility views
over the registry so existing tests and result extras are unchanged.
"""

from __future__ import annotations

from typing import Dict, Mapping, Union

__all__ = ["CounterRegistry", "delta"]

Number = Union[int, float]


class CounterRegistry:
    """Flat namespace of ``dotted.name -> number`` metrics."""

    def __init__(self) -> None:
        self._values: Dict[str, Number] = {}

    def inc(self, name: str, amount: int = 1) -> int:
        """Add ``amount`` to counter ``name`` (creating it at 0)."""
        if not name:
            raise ValueError("counter name must be non-empty")
        value = int(self._values.get(name, 0)) + int(amount)
        self._values[name] = value
        return value

    def set_gauge(self, name: str, value: Number) -> None:
        """Set gauge ``name`` to ``value`` (int or float)."""
        if not name:
            raise ValueError("gauge name must be non-empty")
        self._values[name] = value

    def get(self, name: str, default: Number = 0) -> Number:
        return self._values.get(name, default)

    def snapshot(self) -> Dict[str, Number]:
        """Point-in-time copy, keys sorted for stable serialization."""
        return {k: self._values[k] for k in sorted(self._values)}

    def view(self, prefix: str) -> Dict[str, Number]:
        """Snapshot of metrics under ``prefix.``, with the prefix
        stripped — the shape the legacy per-subsystem dicts exposed."""
        dot = prefix + "."
        return {
            k[len(dot):]: v
            for k, v in sorted(self._values.items())
            if k.startswith(dot)
        }

    def reset(self) -> None:
        self._values.clear()


def delta(
    before: Mapping[str, Number], after: Mapping[str, Number]
) -> Dict[str, Number]:
    """Metrics that changed between two snapshots (``after - before``).

    Keys absent from ``before`` count from zero; unchanged keys are
    omitted, so the result is exactly the incident payload for an epoch.
    """
    changed: Dict[str, Number] = {}
    for name, value in after.items():
        diff = value - before.get(name, 0)
        if diff != 0:
            changed[name] = diff
    return changed
