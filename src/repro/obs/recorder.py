"""Recorder protocol and the three concrete recorders.

A recorder is the single sink for observability events.  The contract is
deliberately tiny so hot-path call sites stay cheap:

``enabled``
    A plain attribute.  Hot loops guard event *construction* with
    ``if recorder.enabled:`` so the disabled path costs one attribute
    read and a branch — no dict building, no string formatting.
``emit(event_type, **fields)``
    Validate the payload against :mod:`repro.obs.events`, stamp it with
    the recorder's next sequence number, and deliver it.

Implementations
---------------
:class:`NullRecorder`
    The zero-overhead default.  ``enabled`` is False and ``emit`` is a
    no-op that performs no validation and allocates nothing.
:class:`JsonlRecorder`
    Streams each event as one JSON line to a file.  Writes are
    line-buffered through a plain text handle; ``close()`` (or use as a
    context manager) flushes and releases it.
:class:`BufferRecorder`
    Collects events in memory.  The parallel engine hands one to each
    worker-side ``simulate`` call and ships the buffer back with the
    result, so a parent :class:`JsonlRecorder` can replay cell events in
    deterministic task order regardless of worker scheduling.

A single module-level :data:`NULL_RECORDER` instance is shared wherever a
default is needed — the null recorder is stateless, so sharing is safe.
"""

from __future__ import annotations

import json
from typing import Any, Dict, IO, List, Optional, Protocol, runtime_checkable

from repro.obs.events import make_event

__all__ = [
    "Recorder",
    "NullRecorder",
    "JsonlRecorder",
    "BufferRecorder",
    "NULL_RECORDER",
]


@runtime_checkable
class Recorder(Protocol):
    """Structural type of an event sink (see module docstring)."""

    enabled: bool

    def emit(self, event_type: str, **fields: Any) -> None: ...

    def flush(self) -> None: ...


class NullRecorder:
    """Recorder that records nothing, as cheaply as possible.

    ``emit`` deliberately skips schema validation: the disabled path must
    not pay for dict assembly or field checks.  Schema errors surface the
    moment a real recorder is attached, which every obs test exercises.
    """

    enabled: bool = False

    def emit(self, event_type: str, **fields: Any) -> None:
        return None

    def flush(self) -> None:
        return None


#: Shared default instance; the null recorder holds no state.
NULL_RECORDER = NullRecorder()


class _SequencedRecorder:
    """Shared numbering + validation for the real recorders."""

    enabled: bool = True

    def __init__(self) -> None:
        self._seq = 0

    def _next_event(self, event_type: str, fields: Dict[str, Any]) -> Dict[str, Any]:
        record = make_event(event_type, self._seq, fields)
        self._seq += 1
        return record


#: Events buffered before one batched encode+write.  Per-event encoding
#: inside the control loop runs with cold caches (each ~400 us simulation
#: epoch evicts the encoder's working set) and measures ~5x its tight-loop
#: cost; batching pays the cache-warming once per batch and keeps tracing
#: inside the <5% overhead budget enforced by ``tools/trace_overhead.py``.
_WRITE_BATCH = 64


class JsonlRecorder(_SequencedRecorder):
    """Stream events to ``path`` as JSON Lines.

    Parameters
    ----------
    path:
        File to create (truncated if present).  Parent directory must
        exist — trace files are an explicit user request, so a typo'd
        path should fail loudly, not silently mkdir.

    Notes
    -----
    Events are written with ``sort_keys=True`` so a trace's byte content
    is a deterministic function of its event sequence, which makes trace
    files diffable across runs.  Serialization is batched
    (:data:`_WRITE_BATCH` events at a time) to amortize encoder cache
    warm-up; :meth:`flush` forces pending events out, and :meth:`close`
    (or exiting the context manager) always flushes — a recorder that is
    never closed can lose its final partial batch.
    """

    def __init__(self, path: str) -> None:
        super().__init__()
        self._path = path
        self._fh: Optional[IO[str]] = open(path, "w", encoding="utf-8")
        # One shared encoder: json.dumps with keyword options builds a
        # fresh JSONEncoder per call, which is measurable at one event
        # per control epoch.
        self._encoder = json.JSONEncoder(sort_keys=True, default=_json_default)
        self._pending: List[Dict[str, Any]] = []

    @property
    def path(self) -> str:
        return self._path

    def emit(self, event_type: str, **fields: Any) -> None:
        if self._fh is None:
            raise ValueError(f"JsonlRecorder({self._path!r}) is closed")
        self._pending.append(self._next_event(event_type, fields))
        if len(self._pending) >= _WRITE_BATCH:
            self.flush()

    def flush(self) -> None:
        """Encode and write every pending event, then flush the handle.

        The OS-level flush makes the trace durable through the last
        emitted event even if the process later dies without reaching
        :meth:`close` — a run that raises mid-epoch must not tear off the
        buffered tail of its trace.
        """
        if self._fh is None:
            return
        if self._pending:
            encode = self._encoder.encode
            self._fh.write("".join(encode(r) + "\n" for r in self._pending))
            self._pending.clear()
        self._fh.flush()

    def record_all(self, events: List[Dict[str, Any]]) -> None:
        """Replay pre-built events (from a :class:`BufferRecorder`),
        re-stamping their sequence numbers into this recorder's stream."""
        for event in events:
            payload = {k: v for k, v in event.items() if k not in ("type", "seq")}
            self.emit(event["type"], **payload)

    def close(self) -> None:
        if self._fh is not None:
            self.flush()
            self._fh.close()
            self._fh = None
            self.enabled = False

    def __enter__(self) -> "JsonlRecorder":
        return self

    def __exit__(self, *exc: Any) -> None:
        self.close()


class BufferRecorder(_SequencedRecorder):
    """Accumulate events in memory (``.events`` list of dicts).

    Used worker-side in the parallel engine: events survive the pickle
    trip back to the parent, which replays them into its own recorder in
    task order.  Also convenient in tests.
    """

    def __init__(self) -> None:
        super().__init__()
        self.events: List[Dict[str, Any]] = []

    def emit(self, event_type: str, **fields: Any) -> None:
        self.events.append(self._next_event(event_type, fields))

    def flush(self) -> None:
        return None


def _json_default(obj: Any) -> Any:
    """Serialize numpy scalars/arrays that leak into event payloads."""
    if hasattr(obj, "item") and not hasattr(obj, "__len__"):
        return obj.item()
    if hasattr(obj, "tolist"):
        return obj.tolist()
    raise TypeError(f"not JSON serializable: {type(obj).__name__}")
