"""Continuous-batching scheduler: many jobs, shared engine rounds.

The design mirrors an inference server's continuous batcher.  Every job's
cells enter per-job queues; a single runner coroutine assembles *rounds*
by round-robin draining one cell per active job per pass (fair share: a
1000-cell sweep and a 1-cell probe each contribute one cell per pass, so
the probe finishes after the first round instead of queueing behind the
sweep).  A round executes as one
:func:`~repro.parallel.engine.execute_cells_report` call in a worker
thread — cells from *different* clients land in the same engine
invocation, where ``batch=True`` stacks the compatible ones into shared
kernel batches (``plan_batches``).  Arrivals during a round simply queue
and join the next one: batching is continuous, not windowed.

Dedup happens at three levels, cheapest first:

* **memo** — a bounded in-memory map of recently settled results; an
  identical cell re-submitted after completion is answered at submit
  time without touching the scheduler (``service.dedup_memo``).
* **in-flight** — a cell identical (by content-addressed
  :func:`~repro.parallel.cache.cell_key`) to one already queued or
  running *attaches* to the existing :class:`CellRecord` as an extra
  waiter; one simulation settles every waiter
  (``service.dedup_inflight``).
* **cache** — the shared :class:`~repro.parallel.cache.ResultCache` is
  probed by the engine inside each round, so results survive process
  restarts and are shared with library-path runs.

All scheduler state is mutated only on the event loop thread; the only
cross-thread object is each job's :class:`~repro.service.events.EventHub`
(the engine's round recorder publishes into hubs from the worker thread).
"""

from __future__ import annotations

import asyncio
import time
from collections import OrderedDict, deque
from typing import Any, Deque, Dict, List, Optional, Sequence, Set, Tuple, Union

from repro.obs.metrics import CounterRegistry, Number
from repro.parallel.cache import ResultCache
from repro.parallel.engine import (
    CellFailure,
    CellTask,
    execute_cells_report,
)
from repro.parallel.retry import RetryPolicy
from repro.service.events import EventHub
from repro.service.jobs import PlannedJob
from repro.sim.results import SimulationResult

__all__ = ["ServiceError", "Job", "CellRecord", "ContinuousScheduler"]


class ServiceError(RuntimeError):
    """A service-level request error (unknown job, bad state, ...)."""


class CellRecord:
    """One unit of scheduled work, shared by every job waiting on it."""

    __slots__ = ("key", "task", "waiters", "settled")

    def __init__(self, key: Optional[str], task: CellTask) -> None:
        self.key = key
        self.task = task
        #: ``(job, index)`` pairs to deliver the settlement to.
        self.waiters: List[Tuple["Job", int]] = []
        self.settled = False


class Job:
    """One submission's runtime state (slots fill as records settle)."""

    def __init__(
        self, job_id: str, client: str, planned: PlannedJob, hub: EventHub
    ) -> None:
        self.id = job_id
        self.client = client
        self.planned = planned
        self.hub = hub
        self.state = "queued"
        self.slots: List[Optional[SimulationResult]] = [None] * len(planned.tasks)
        self.failures: Dict[int, CellFailure] = {}
        self.pending = len(planned.tasks)
        #: Per-index record each cell is waiting on (``None`` once it was
        #: answered from the memo at submit time).
        self.records: List[Optional[CellRecord]] = [None] * len(planned.tasks)
        self.done_event = asyncio.Event()
        self.submitted_at = time.perf_counter()
        self.finished_at: Optional[float] = None

    @property
    def cells(self) -> int:
        return len(self.planned.tasks)

    @property
    def completed(self) -> int:
        return sum(1 for slot in self.slots if slot is not None)

    @property
    def terminal(self) -> bool:
        return self.state in ("done", "failed", "cancelled")

    @property
    def elapsed_s(self) -> float:
        end = (
            self.finished_at
            if self.finished_at is not None
            else time.perf_counter()
        )
        return end - self.submitted_at


class _RoundRecorder:
    """Engine recorder that fans cell-scoped events out to waiter hubs.

    Runs on the engine's worker thread; hub publishing is the designed
    cross-thread seam.  Events without a ``cell`` field (the engine
    summary) are per-round internals, not part of any one job's story,
    and are dropped from job streams.
    """

    enabled = True

    def __init__(self, records: Sequence[CellRecord]) -> None:
        self._by_label: Dict[str, List[CellRecord]] = {}
        for record in records:
            self._by_label.setdefault(record.task.cell.label(), []).append(record)

    def emit(self, event_type: str, **fields: Any) -> None:
        label = fields.get("cell")
        if not isinstance(label, str):
            return
        for record in self._by_label.get(label, ()):
            for job, _index in list(record.waiters):
                job.hub.publish(event_type, **fields)

    def flush(self) -> None:
        return None


class ContinuousScheduler:
    """Fair-share round assembly + shared-round execution + dedup.

    Parameters
    ----------
    cache:
        Shared :class:`ResultCache` (or ``None``): probed by the engine
        inside every round and shared across jobs and with library runs.
    engine_jobs:
        Worker process count per round (``1`` executes rounds inline in
        the worker thread — no process pool, which is the fast path when
        ``batch`` carries the round).
    batch:
        Forwarded to the engine: stack compatible cells of a round into
        kernel batches.  ``True`` (default) is what makes cross-client
        continuous batching real.
    round_size:
        Cell budget per round.  Larger rounds batch better; smaller
        rounds re-assess fairness more often.
    max_concurrent_rounds:
        Rounds allowed in flight at once.  ``1`` (default) gives maximal
        merging — everything arriving during a round joins the next.
    retry_policy, timeout:
        Forwarded to the engine per round.
    memo_limit:
        Bound on the in-memory settled-result memo (0 disables it).
    """

    def __init__(
        self,
        cache: Optional[ResultCache] = None,
        engine_jobs: int = 1,
        batch: Union[bool, int] = True,
        round_size: int = 64,
        max_concurrent_rounds: int = 1,
        retry_policy: Optional[RetryPolicy] = None,
        timeout: Optional[float] = None,
        memo_limit: int = 4096,
    ) -> None:
        if engine_jobs < 1:
            raise ValueError(f"engine_jobs must be >= 1, got {engine_jobs}")
        if round_size < 1:
            raise ValueError(f"round_size must be >= 1, got {round_size}")
        if max_concurrent_rounds < 1:
            raise ValueError(
                f"max_concurrent_rounds must be >= 1, got {max_concurrent_rounds}"
            )
        if memo_limit < 0:
            raise ValueError(f"memo_limit must be >= 0, got {memo_limit}")
        self.cache = cache
        self.engine_jobs = engine_jobs
        self.batch = batch
        self.round_size = round_size
        self.max_concurrent_rounds = max_concurrent_rounds
        self.retry_policy = retry_policy
        self.timeout = timeout
        self.metrics = CounterRegistry()
        #: Engine counters summed across every round this scheduler ran
        #: (``engine.cells_batched``, ``cache.hits``, ...).
        self.engine_totals: Dict[str, Number] = {}
        self.jobs: Dict[str, Job] = {}
        self._queues: "OrderedDict[str, Deque[CellRecord]]" = OrderedDict()
        self._inflight: Dict[str, CellRecord] = {}
        self._memo: "OrderedDict[str, SimulationResult]" = OrderedDict()
        self._memo_limit = memo_limit
        self._rr_offset = 0
        self._wake: Optional[asyncio.Event] = None
        self._rounds_gate: Optional[asyncio.Semaphore] = None
        self._runner: Optional["asyncio.Task[None]"] = None
        self._round_tasks: Set["asyncio.Task[None]"] = set()
        self._stopping = False

    # -- lifecycle ---------------------------------------------------------
    def start(self) -> None:
        """Start the runner on the current event loop (idempotent)."""
        if self._runner is not None and not self._runner.done():
            return
        loop = asyncio.get_running_loop()
        self._stopping = False
        self._wake = asyncio.Event()
        self._rounds_gate = asyncio.Semaphore(self.max_concurrent_rounds)
        self._runner = loop.create_task(self._run_loop())
        self._kick()

    async def stop(self) -> None:
        """Drain in-flight rounds, stop the runner, cancel leftover jobs.

        Rounds already executing complete (their waiters settle); jobs
        with cells still queued are finalized as cancelled so no waiter
        hangs forever.  Leaves zero tasks and zero worker processes.
        """
        self._stopping = True
        self._kick()
        if self._runner is not None:
            await self._runner
            self._runner = None
        if self._round_tasks:
            await asyncio.gather(*tuple(self._round_tasks))
        for job in list(self.jobs.values()):
            if not job.terminal:
                self.cancel_job(job)

    def _kick(self) -> None:
        if self._wake is not None:
            self._wake.set()

    # -- submission (event-loop thread) ------------------------------------
    def enqueue_job(self, job: Job) -> None:
        """Register a job and queue its not-yet-deduplicated cells."""
        if job.id in self.jobs:
            raise ServiceError(f"duplicate job id {job.id!r}")
        self.jobs[job.id] = job
        queue: Deque[CellRecord] = deque()
        self._queues[job.id] = queue
        self.metrics.inc("service.jobs_submitted")
        job.state = "running"
        for index, task in enumerate(job.planned.tasks):
            key = job.planned.keys[index]
            if key is not None and key in self._memo:
                job.slots[index] = self._memo[key]
                job.pending -= 1
                self.metrics.inc("service.dedup_memo")
                job.hub.publish(
                    "cell_attached", cell=task.cell.label(), origin="memo"
                )
                continue
            existing = self._inflight.get(key) if key is not None else None
            if existing is not None and not existing.settled:
                existing.waiters.append((job, index))
                job.records[index] = existing
                self.metrics.inc("service.dedup_inflight")
                job.hub.publish(
                    "cell_attached", cell=task.cell.label(), origin="inflight"
                )
                continue
            record = CellRecord(key, task)
            record.waiters.append((job, index))
            job.records[index] = record
            if key is not None:
                self._inflight[key] = record
            queue.append(record)
            self.metrics.inc("service.cells_enqueued")
        if job.pending == 0:
            # Every cell was answered from the memo.
            self._finalize(job)
        self._kick()

    def cancel_job(self, job: Job) -> bool:
        """Detach a job from its records and finalize it as cancelled.

        Records other jobs still wait on keep running; records only this
        job wanted are dropped when the round assembler reaches them.
        Returns ``False`` when the job was already terminal.
        """
        if job.terminal:
            return False
        for record in job.records:
            if record is not None and not record.settled:
                record.waiters = [
                    (waiter, index)
                    for (waiter, index) in record.waiters
                    if waiter is not job
                ]
        self._finalize(job, status="cancelled")
        return True

    # -- round assembly ----------------------------------------------------
    def _gather_round(self) -> List[CellRecord]:
        """Fair-share pick: one cell per active job per pass, rotating the
        starting job between rounds, until ``round_size`` or dry."""
        active = [job_id for job_id, queue in self._queues.items() if queue]
        if not active:
            return []
        picked: List[CellRecord] = []
        n = len(active)
        start = self._rr_offset % n
        self._rr_offset += 1
        exhausted = False
        while len(picked) < self.round_size and not exhausted:
            exhausted = True
            for k in range(n):
                queue = self._queues[active[(start + k) % n]]
                while queue:
                    record = queue.popleft()
                    if not record.waiters:
                        # Every submitter cancelled while it was queued.
                        if record.key is not None:
                            self._inflight.pop(record.key, None)
                        record.settled = True
                        continue
                    picked.append(record)
                    exhausted = False
                    break
                if len(picked) >= self.round_size:
                    break
        for job_id in [
            job_id
            for job_id, queue in self._queues.items()
            if not queue and self.jobs[job_id].terminal
        ]:
            del self._queues[job_id]
        return picked

    async def _run_loop(self) -> None:
        assert self._wake is not None and self._rounds_gate is not None
        while not self._stopping:
            await self._wake.wait()
            self._wake.clear()
            while not self._stopping:
                await self._rounds_gate.acquire()
                if self._stopping:
                    self._rounds_gate.release()
                    break
                records = self._gather_round()
                if not records:
                    self._rounds_gate.release()
                    break
                loop = asyncio.get_running_loop()
                round_task = loop.create_task(self._round(records))
                self._round_tasks.add(round_task)
                round_task.add_done_callback(self._round_tasks.discard)

    # -- round execution ---------------------------------------------------
    async def _round(self, records: List[CellRecord]) -> None:
        try:
            await self._execute_round(records)
        except Exception as exc:  # pragma: no cover — defensive
            # A scheduler defect must fail the round's jobs loudly, never
            # strand their waiters.
            for record in records:
                if not record.settled:
                    self._settle(
                        record,
                        None,
                        CellFailure(
                            cell=record.task.cell,
                            attempts=0,
                            error_type=type(exc).__qualname__,
                            message=str(exc),
                        ),
                    )
        finally:
            assert self._rounds_gate is not None
            self._rounds_gate.release()
            self._kick()

    async def _execute_round(self, records: List[CellRecord]) -> None:
        tasks = [record.task for record in records]
        waiting_jobs = {
            job.id for record in records for (job, _) in record.waiters
        }
        waiting_clients = {
            job.client for record in records for (job, _) in record.waiters
        }
        self.metrics.inc("service.rounds")
        if len(waiting_jobs) > 1:
            self.metrics.inc("service.rounds_multi_job")
        if len(waiting_clients) > 1:
            self.metrics.inc("service.rounds_cross_client")
        recorder = _RoundRecorder(records)
        report = await asyncio.to_thread(
            execute_cells_report,
            tasks,
            jobs=self.engine_jobs,
            cache=self.cache,
            recorder=recorder,
            batch=self.batch,
            retry_policy=self.retry_policy,
            timeout=self.timeout,
        )
        for key, value in report.counters.items():
            if key == "engine.jobs":
                continue
            self.engine_totals[key] = self.engine_totals.get(key, 0) + value
        failures = iter(report.failures)
        for record, result in zip(records, report.results):
            failure = next(failures) if result is None else None
            self._settle(record, result, failure)

    # -- settlement --------------------------------------------------------
    def _settle(
        self,
        record: CellRecord,
        result: Optional[SimulationResult],
        failure: Optional[CellFailure],
    ) -> None:
        if record.settled:
            return
        record.settled = True
        if record.key is not None:
            self._inflight.pop(record.key, None)
            if result is not None and self._memo_limit:
                self._memo[record.key] = result
                while len(self._memo) > self._memo_limit:
                    self._memo.popitem(last=False)
        for job, index in record.waiters:
            if job.terminal:
                continue
            if result is not None:
                job.slots[index] = result
            elif failure is not None:
                job.failures[index] = failure
            job.pending -= 1
            if job.pending == 0:
                self._finalize(job)

    def _finalize(self, job: Job, status: Optional[str] = None) -> None:
        if job.terminal:
            return
        job.state = (
            status
            if status is not None
            else ("failed" if job.failures else "done")
        )
        job.finished_at = time.perf_counter()
        self.metrics.inc(f"service.jobs_{job.state}")
        queue = self._queues.get(job.id)
        if queue is not None and not queue:
            del self._queues[job.id]
        job.hub.publish(
            "job_done",
            job=job.id,
            status=job.state,
            completed=job.completed,
            failed=len(job.failures),
        )
        job.hub.close()
        job.done_event.set()

    # -- introspection -----------------------------------------------------
    def counters(self) -> Dict[str, Number]:
        """Service metrics plus summed engine totals, one flat snapshot."""
        merged: Dict[str, Number] = dict(self.metrics.snapshot())
        merged.update(self.engine_totals)
        return merged
