"""TCP front-end: JSON-lines request/response over asyncio streams.

The protocol is deliberately minimal and dependency-free (stdlib only):
one JSON object per line, each carrying an ``op``; every reply carries
``ok``.  Errors come back as values (``{"ok": false, "error": ...,
"error_type": ...}``) — a malformed request must never take the
connection, let alone the server, down.

Operations
----------
``ping``                          liveness probe.
``submit {spec, client}``         plan + enqueue; replies ``{job}``.
``status {job}``                  point-in-time job view.
``wait {job, timeout?}``          block until terminal; replies status.
``cancel {job}``                  detach + finalize as cancelled.
``result {job, format}``          ``"digest"`` (default) → per-cell
                                  content digests; ``"npz"`` → base64
                                  npz payloads loadable with
                                  :func:`repro.sim.result_io.load_result`.
``events {job, start?}``          streams ``{"ok": true, "event": ...}``
                                  lines until the job's hub closes, then
                                  one ``{"ok": true, "end": true}``.
``counters``                      scheduler/engine/cache snapshot.
``shutdown``                      stop the server (only when started
                                  with ``allow_shutdown=True``).
"""

from __future__ import annotations

import asyncio
import base64
import json
import os
import tempfile
from typing import Any, Dict, Optional

from repro.service.scheduler import ServiceError
from repro.service.service import ExperimentService
from repro.sim.results import SimulationResult

__all__ = ["ServiceServer", "result_to_b64", "result_from_b64"]


def result_to_b64(result: SimulationResult) -> str:
    """A result's on-disk npz bytes, base64-encoded for the wire."""
    from repro.sim.result_io import save_result

    fd, name = tempfile.mkstemp(suffix=".npz")
    os.close(fd)
    try:
        save_result(result, name)
        with open(name, "rb") as fh:
            return base64.b64encode(fh.read()).decode("ascii")
    finally:
        os.unlink(name)


def result_from_b64(data: str) -> SimulationResult:
    """Inverse of :func:`result_to_b64`."""
    from repro.sim.result_io import load_result

    fd, name = tempfile.mkstemp(suffix=".npz")
    try:
        with os.fdopen(fd, "wb") as fh:
            fh.write(base64.b64decode(data.encode("ascii")))
        return load_result(name)
    finally:
        os.unlink(name)


class ServiceServer:
    """Serve an :class:`ExperimentService` over TCP JSON lines."""

    def __init__(
        self,
        service: ExperimentService,
        host: str = "127.0.0.1",
        port: int = 0,
        allow_shutdown: bool = False,
    ) -> None:
        self.service = service
        self.host = host
        self.port = port
        self.allow_shutdown = allow_shutdown
        self._server: Optional[asyncio.AbstractServer] = None
        self._shutdown = asyncio.Event()

    async def start(self) -> None:
        """Start the service (if needed) and begin accepting connections.

        With ``port=0`` the OS assigns one; :attr:`port` is updated to
        the bound value.
        """
        await self.service.start()
        self._server = await asyncio.start_server(
            self._handle, host=self.host, port=self.port
        )
        sockets = self._server.sockets
        if sockets:
            self.port = sockets[0].getsockname()[1]

    async def close(self) -> None:
        """Stop accepting, drain the service, release everything."""
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        await self.service.stop()
        self._shutdown.set()

    async def serve_until_shutdown(self) -> None:
        """Block until a ``shutdown`` request (or :meth:`close`) arrives."""
        await self._shutdown.wait()
        if self._server is not None:
            await self.close()

    # -- connection handling -----------------------------------------------
    async def _handle(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            while True:
                line = await reader.readline()
                if not line:
                    break
                try:
                    request = json.loads(line)
                    if not isinstance(request, dict):
                        raise ValueError("request must be a JSON object")
                except ValueError as exc:
                    await self._reply(
                        writer,
                        {
                            "ok": False,
                            "error": f"malformed request: {exc}",
                            "error_type": "BadRequest",
                        },
                    )
                    continue
                op = str(request.get("op", ""))
                if op == "events":
                    done = await self._stream_events(writer, request)
                    if done:
                        break
                    continue
                reply = await self._dispatch(op, request)
                await self._reply(writer, reply)
                if op == "shutdown" and reply.get("ok"):
                    self._shutdown.set()
                    break
        except (ConnectionResetError, BrokenPipeError):
            pass
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError):
                pass

    async def _reply(
        self, writer: asyncio.StreamWriter, payload: Dict[str, Any]
    ) -> None:
        writer.write(json.dumps(payload, sort_keys=True).encode() + b"\n")
        await writer.drain()

    async def _dispatch(self, op: str, request: Dict[str, Any]) -> Dict[str, Any]:
        try:
            if op == "ping":
                return {"ok": True, "pong": True}
            if op == "submit":
                job_id = await self.service.submit(
                    dict(request.get("spec") or {}),
                    client=str(request.get("client", "")),
                )
                return {"ok": True, "job": job_id}
            if op == "status":
                return {
                    "ok": True,
                    "status": self.service.status(str(request["job"])),
                }
            if op == "wait":
                timeout = request.get("timeout")
                status = await self.service.wait(
                    str(request["job"]),
                    timeout=None if timeout is None else float(timeout),
                )
                return {"ok": True, "status": status}
            if op == "cancel":
                cancelled = await self.service.cancel(str(request["job"]))
                return {"ok": True, "cancelled": cancelled}
            if op == "result":
                return self._result_reply(request)
            if op == "counters":
                return {"ok": True, "counters": self.service.counters()}
            if op == "shutdown":
                if not self.allow_shutdown:
                    raise ServiceError(
                        "shutdown over the wire is disabled "
                        "(start with allow_shutdown=True)"
                    )
                return {"ok": True, "shutdown": True}
            raise ServiceError(f"unknown op {op!r}")
        except asyncio.TimeoutError:
            return {
                "ok": False,
                "error": "wait timed out",
                "error_type": "WaitTimeout",
            }
        except Exception as exc:
            return {
                "ok": False,
                "error": str(exc),
                "error_type": type(exc).__qualname__,
            }

    def _result_reply(self, request: Dict[str, Any]) -> Dict[str, Any]:
        job_id = str(request["job"])
        fmt = str(request.get("format", "digest"))
        if fmt == "digest":
            return {"ok": True, "digests": self.service.result_digests(job_id)}
        if fmt == "npz":
            merged = self.service.results(job_id)
            payload = {
                ctrl: {str(key): result_to_b64(res) for key, res in inner.items()}
                for ctrl, inner in merged.items()
            }
            return {"ok": True, "results": payload}
        raise ServiceError(f"unknown result format {fmt!r}")

    async def _stream_events(
        self, writer: asyncio.StreamWriter, request: Dict[str, Any]
    ) -> bool:
        """Stream a job's events; returns True when the connection died."""
        try:
            job_id = str(request["job"])
            start = int(request.get("start", 0))
            stream = self.service.events(job_id, start=start)
        except Exception as exc:
            await self._reply(
                writer,
                {
                    "ok": False,
                    "error": str(exc),
                    "error_type": type(exc).__qualname__,
                },
            )
            return False
        try:
            async for event in stream:
                await self._reply(writer, {"ok": True, "event": event})
            await self._reply(writer, {"ok": True, "end": True})
        except (ConnectionResetError, BrokenPipeError):
            return True
        return False
