"""Per-job event fan-out: thread-safe publish, async subscription.

The engine runs rounds in worker threads (via ``asyncio.to_thread``)
while subscribers consume from the event loop, so the hub is the one
piece of the service that is touched from two threads: ``publish`` takes
a lock and wakes loop-side subscribers with ``call_soon_threadsafe``;
``stream`` is a plain cursor over the append-only event list, so a
subscriber can join late (or reconnect) and replay from any position
without the publisher keeping per-subscriber state.

Events are schema-checked through :func:`repro.obs.events.make_event` —
a job's stream speaks the same event vocabulary as a trace file.
"""

from __future__ import annotations

import asyncio
import threading
from typing import Any, AsyncIterator, Dict, List, Optional, Set

from repro.obs.events import make_event

__all__ = ["EventHub"]


class EventHub:
    """Append-only event log for one job, with async streaming."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._events: List[Dict[str, Any]] = []
        self._seq = 0
        self._closed = False
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._waiters: Set[asyncio.Event] = set()

    def bind(self, loop: asyncio.AbstractEventLoop) -> None:
        """Attach the event loop subscriber wake-ups are scheduled on.

        Publishing before ``bind`` is fine — events accumulate and are
        delivered when a subscriber first streams.
        """
        self._loop = loop

    @property
    def closed(self) -> bool:
        return self._closed

    def __len__(self) -> int:
        with self._lock:
            return len(self._events)

    def publish(self, event_type: str, **fields: Any) -> None:
        """Validate, stamp, append, and wake subscribers.

        Safe from any thread.  Events published after :meth:`close` are
        dropped — a cancelled job's late engine events have no audience.
        """
        with self._lock:
            if self._closed:
                return
            record = make_event(event_type, self._seq, dict(fields))
            self._seq += 1
            self._events.append(record)
        self._wake()

    def close(self) -> None:
        """End the stream: subscribers drain whatever remains, then stop."""
        with self._lock:
            self._closed = True
        self._wake()

    def _wake(self) -> None:
        loop = self._loop
        if loop is None:
            return
        try:
            loop.call_soon_threadsafe(self._notify)
        except RuntimeError:
            # Loop already closed (service shutting down): subscribers
            # are gone with it.
            return

    def _notify(self) -> None:
        for waiter in list(self._waiters):
            waiter.set()

    def snapshot(self, start: int = 0) -> List[Dict[str, Any]]:
        """Events from position ``start`` onward, as a copy."""
        with self._lock:
            return list(self._events[start:])

    async def stream(self, start: int = 0) -> AsyncIterator[Dict[str, Any]]:
        """Yield events from ``start``, live until the hub closes.

        Must be consumed on the loop passed to :meth:`bind`.
        """
        cursor = start
        ready = asyncio.Event()
        self._waiters.add(ready)
        try:
            while True:
                ready.clear()
                batch = self.snapshot(cursor)
                if batch:
                    cursor += len(batch)
                    for record in batch:
                        yield record
                    continue
                if self._closed:
                    return
                await ready.wait()
        finally:
            self._waiters.discard(ready)
