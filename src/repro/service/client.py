"""Async client for the TCP JSON-lines service protocol.

Connection-per-request for the unary operations (the protocol is
stateless, so this keeps the client trivially reconnect-safe) and one
persistent connection for event streaming.  A server-side error reply
raises :class:`~repro.service.scheduler.ServiceError` with the server's
message — callers never have to inspect raw reply dicts.
"""

from __future__ import annotations

import asyncio
import json
from typing import Any, AsyncIterator, Dict, Mapping, Optional, Union

from repro.service.jobs import JobSpec
from repro.service.scheduler import ServiceError
from repro.service.server import result_from_b64
from repro.sim.results import SimulationResult

__all__ = ["ServiceClient"]


class ServiceClient:
    """Talk to a :class:`~repro.service.server.ServiceServer`."""

    def __init__(
        self, host: str = "127.0.0.1", port: int = 0, client_name: str = ""
    ) -> None:
        self.host = host
        self.port = port
        self.client_name = client_name

    async def _roundtrip(self, request: Dict[str, Any]) -> Dict[str, Any]:
        reader, writer = await asyncio.open_connection(self.host, self.port)
        try:
            writer.write(json.dumps(request).encode() + b"\n")
            await writer.drain()
            line = await reader.readline()
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError):
                pass
        if not line:
            raise ServiceError("server closed the connection without a reply")
        return self._check(json.loads(line))

    @staticmethod
    def _check(reply: Dict[str, Any]) -> Dict[str, Any]:
        if not reply.get("ok"):
            raise ServiceError(
                f"{reply.get('error_type', 'ServiceError')}: "
                f"{reply.get('error', 'unknown server error')}"
            )
        return reply

    # -- unary operations --------------------------------------------------
    async def ping(self) -> bool:
        reply = await self._roundtrip({"op": "ping"})
        return bool(reply.get("pong"))

    async def submit(
        self, spec: Union[JobSpec, Mapping[str, Any]]
    ) -> str:
        payload = spec.to_dict() if isinstance(spec, JobSpec) else dict(spec)
        reply = await self._roundtrip(
            {"op": "submit", "spec": payload, "client": self.client_name}
        )
        return str(reply["job"])

    async def status(self, job_id: str) -> Dict[str, Any]:
        reply = await self._roundtrip({"op": "status", "job": job_id})
        return dict(reply["status"])

    async def wait(
        self, job_id: str, timeout: Optional[float] = None
    ) -> Dict[str, Any]:
        request: Dict[str, Any] = {"op": "wait", "job": job_id}
        if timeout is not None:
            request["timeout"] = timeout
        reply = await self._roundtrip(request)
        return dict(reply["status"])

    async def cancel(self, job_id: str) -> bool:
        reply = await self._roundtrip({"op": "cancel", "job": job_id})
        return bool(reply["cancelled"])

    async def counters(self) -> Dict[str, Any]:
        reply = await self._roundtrip({"op": "counters"})
        return dict(reply["counters"])

    async def result_digests(self, job_id: str) -> Dict[str, Dict[str, str]]:
        reply = await self._roundtrip(
            {"op": "result", "job": job_id, "format": "digest"}
        )
        return {
            ctrl: dict(inner) for ctrl, inner in reply["digests"].items()
        }

    async def fetch_results(
        self, job_id: str
    ) -> Dict[str, Dict[str, SimulationResult]]:
        """Download and decode a finished job's full results.

        Keys are strings on the wire (JSON object keys): benchmark names
        for suites, ``repr(budget)`` for sweeps.
        """
        reply = await self._roundtrip(
            {"op": "result", "job": job_id, "format": "npz"}
        )
        return {
            ctrl: {key: result_from_b64(blob) for key, blob in inner.items()}
            for ctrl, inner in reply["results"].items()
        }

    async def shutdown(self) -> None:
        await self._roundtrip({"op": "shutdown"})

    # -- streaming ---------------------------------------------------------
    async def stream_events(
        self, job_id: str, start: int = 0
    ) -> AsyncIterator[Dict[str, Any]]:
        """Yield a job's events live until its stream ends."""
        reader, writer = await asyncio.open_connection(self.host, self.port)
        try:
            writer.write(
                json.dumps(
                    {"op": "events", "job": job_id, "start": start}
                ).encode()
                + b"\n"
            )
            await writer.drain()
            while True:
                line = await reader.readline()
                if not line:
                    raise ServiceError("event stream closed unexpectedly")
                reply = self._check(json.loads(line))
                if reply.get("end"):
                    return
                yield dict(reply["event"])
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError):
                pass
