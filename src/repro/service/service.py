"""The in-process service facade: submit / status / cancel / wait / results.

:class:`ExperimentService` owns a :class:`~repro.service.scheduler.ContinuousScheduler`
and gives it a job-oriented API.  It runs embedded in any asyncio program
— the TCP server (:mod:`repro.service.server`) is one such program, the
load harness (``tools/service_load.py``) another, and tests drive it
directly.

Submission planning (workload construction, cell keying) runs in a
worker thread so a thousand concurrent ``submit`` calls do not serialize
on the event loop; all scheduler mutation happens on the loop.
"""

from __future__ import annotations

import asyncio
import itertools
from pathlib import Path
from typing import Any, AsyncIterator, Dict, List, Mapping, Optional, Union

from repro.obs.metrics import Number
from repro.parallel.cache import ResultCache
from repro.parallel.retry import RetryPolicy
from repro.service.events import EventHub
from repro.service.jobs import JobSpec, plan_job, result_digest
from repro.service.scheduler import ContinuousScheduler, Job, ServiceError
from repro.sim.results import SimulationResult

__all__ = ["ExperimentService"]

CacheLike = Union[ResultCache, str, Path, None]


class ExperimentService:
    """Async job API over the continuous-batching scheduler.

    Construction does not start anything: jobs submitted before
    :meth:`start` queue up and run once the scheduler starts (tests use
    this to assemble deterministic fairness scenarios).  :meth:`stop`
    drains in-flight rounds and leaves zero tasks and zero worker
    processes.
    """

    def __init__(
        self,
        cache: CacheLike = None,
        engine_jobs: int = 1,
        batch: Union[bool, int] = True,
        round_size: int = 64,
        max_concurrent_rounds: int = 1,
        retry_policy: Optional[RetryPolicy] = None,
        timeout: Optional[float] = None,
        memo_limit: int = 4096,
    ) -> None:
        store: Optional[ResultCache]
        if cache is None or isinstance(cache, ResultCache):
            store = cache
        else:
            store = ResultCache(cache)
        self._scheduler = ContinuousScheduler(
            cache=store,
            engine_jobs=engine_jobs,
            batch=batch,
            round_size=round_size,
            max_concurrent_rounds=max_concurrent_rounds,
            retry_policy=retry_policy,
            timeout=timeout,
            memo_limit=memo_limit,
        )
        self._ids = itertools.count(1)
        self._started = False

    @property
    def started(self) -> bool:
        return self._started

    @property
    def scheduler(self) -> ContinuousScheduler:
        return self._scheduler

    @property
    def cache(self) -> Optional[ResultCache]:
        return self._scheduler.cache

    # -- lifecycle ---------------------------------------------------------
    async def start(self) -> None:
        """Start scheduling (idempotent); binds event hubs to this loop."""
        loop = asyncio.get_running_loop()
        for job in self._scheduler.jobs.values():
            job.hub.bind(loop)
        self._scheduler.start()
        self._started = True

    async def stop(self) -> None:
        """Drain in-flight rounds and stop; pending jobs are cancelled."""
        await self._scheduler.stop()
        self._started = False

    # -- job API -----------------------------------------------------------
    async def submit(
        self,
        spec: Union[JobSpec, Mapping[str, Any]],
        client: str = "",
    ) -> str:
        """Plan and enqueue one job; returns its id immediately.

        Planning (workload construction, content-addressed cell keying)
        runs off-loop; invalid specs raise ``ValueError`` here, before
        anything is queued.
        """
        job_spec = (
            spec if isinstance(spec, JobSpec) else JobSpec.from_dict(spec)
        )
        planned = await asyncio.to_thread(plan_job, job_spec)
        job_id = f"j{next(self._ids):06d}"
        hub = EventHub()
        hub.bind(asyncio.get_running_loop())
        job = Job(job_id, client, planned, hub)
        hub.publish(
            "job_submitted",
            job=job_id,
            kind=job_spec.kind,
            cells=len(planned.tasks),
        )
        self._scheduler.enqueue_job(job)
        return job_id

    def _job(self, job_id: str) -> Job:
        job = self._scheduler.jobs.get(job_id)
        if job is None:
            raise ServiceError(f"unknown job {job_id!r}")
        return job

    def status(self, job_id: str) -> Dict[str, Any]:
        """Point-in-time view of one job."""
        job = self._job(job_id)
        payload: Dict[str, Any] = {
            "job": job.id,
            "state": job.state,
            "client": job.client,
            "kind": job.planned.spec.kind,
            "cells": job.cells,
            "completed": job.completed,
            "failed": len(job.failures),
            "elapsed_s": job.elapsed_s,
        }
        if job.failures:
            payload["failures"] = [
                {
                    "cell": failure.cell.label(),
                    "error_type": failure.error_type,
                    "message": failure.message,
                }
                for failure in job.failures.values()
            ]
        return payload

    async def wait(
        self, job_id: str, timeout: Optional[float] = None
    ) -> Dict[str, Any]:
        """Block until the job reaches a terminal state; returns status."""
        job = self._job(job_id)
        if timeout is None:
            await job.done_event.wait()
        else:
            await asyncio.wait_for(job.done_event.wait(), timeout)
        return self.status(job_id)

    async def cancel(self, job_id: str) -> bool:
        """Cancel a job; ``False`` when it already reached a terminal state.

        Cells shared with other jobs keep running for them; cells only
        this job wanted are dropped before they execute.
        """
        return self._scheduler.cancel_job(self._job(job_id))

    def results(
        self, job_id: str
    ) -> Dict[str, Dict[Any, SimulationResult]]:
        """The finished job's merged results (``controller → benchmark``
        for suites, ``controller → budget`` for sweeps).

        Raises :class:`ServiceError` unless the job state is ``done`` —
        a failed or cancelled job has holes the nested mapping cannot
        represent honestly (its failures are in :meth:`status`).
        """
        job = self._job(job_id)
        if job.state != "done":
            raise ServiceError(
                f"job {job_id} is {job.state!r}, not 'done'; results are "
                "only available for fully completed jobs"
            )
        flat: List[SimulationResult] = []
        for slot in job.slots:
            assert slot is not None  # state == "done" guarantees it
            flat.append(slot)
        return job.planned.merge(flat)

    def result_digests(self, job_id: str) -> Dict[str, Dict[str, str]]:
        """Per-cell content digests of a finished job's results — equal
        digests iff trace-equal results (see
        :func:`repro.service.jobs.result_digest`)."""
        merged = self.results(job_id)
        return {
            ctrl: {str(key): result_digest(res) for key, res in inner.items()}
            for ctrl, inner in merged.items()
        }

    def events(
        self, job_id: str, start: int = 0
    ) -> AsyncIterator[Dict[str, Any]]:
        """Live event stream for one job, replaying from ``start``."""
        return self._job(job_id).hub.stream(start)

    def counters(self) -> Dict[str, Number]:
        """Scheduler + engine + cache counters, one flat snapshot."""
        merged = self._scheduler.counters()
        store = self._scheduler.cache
        if store is not None:
            for name in (
                "hits",
                "misses",
                "corrupt",
                "quarantined",
                "put_errors",
                "put_contended",
            ):
                merged[f"cache_total.{name}"] = getattr(store, name)
        return merged

    def job_ids(self) -> List[str]:
        """Ids of every job this service has accepted, in submit order."""
        return list(self._scheduler.jobs)
