"""Async experiment control plane over the parallel engine.

``repro.service`` turns the library-only execution stack (engine, result
cache, batch kernel, retry/chaos layers) into a long-running process: a
job API (submit a suite or budget sweep → job id; poll status; cancel;
stream :mod:`repro.obs` events live per job) whose scheduler does
*continuous batching* across concurrent clients — compatible
:class:`~repro.parallel.cells.RunCell`\\ s from different submissions are
merged into shared engine rounds (and from there into one kernel stack
via ``plan_batches``), with fair-share queueing so one giant sweep cannot
starve small jobs, and a shared content-addressed
:class:`~repro.parallel.cache.ResultCache` plus in-flight dedup so N
identical submissions cost one simulation.

The service is a *scheduler*, never a new numeric path: every cell goes
through the same :func:`~repro.parallel.engine.execute_cells_report`
engine as a library call and the task decomposition is shared with
:func:`repro.sim.runner.run_suite` (see
:func:`repro.sim.runner.build_suite_tasks`), so service-returned results
are bit-identical to serial library runs by construction.

See ``docs/service.md`` for the API, the scheduling/fairness contract,
dedup semantics, and deployment notes.
"""

from repro.service.events import EventHub
from repro.service.jobs import JobSpec, PlannedJob, plan_job, result_digest
from repro.service.scheduler import ContinuousScheduler, Job, ServiceError
from repro.service.service import ExperimentService
from repro.service.client import ServiceClient
from repro.service.server import ServiceServer

__all__ = [
    "EventHub",
    "JobSpec",
    "PlannedJob",
    "plan_job",
    "result_digest",
    "ContinuousScheduler",
    "Job",
    "ServiceError",
    "ExperimentService",
    "ServiceClient",
    "ServiceServer",
]
