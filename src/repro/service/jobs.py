"""Job specifications and their planning into engine tasks.

A :class:`JobSpec` is the wire-level description of one submission — a
controller × workload suite or a controller × budget sweep over the
standard lineup.  :func:`plan_job` expands it into the exact
:class:`~repro.parallel.engine.CellTask` list a library call would build,
via the *shared* builders in :mod:`repro.sim.runner`
(:func:`~repro.sim.runner.build_suite_tasks` /
:func:`~repro.sim.runner.build_sweep_tasks`), which is what makes
service-returned results bit-identical to ``run_suite`` /
``run_budget_sweep`` by construction: same cells, same configs, same
factories, same cache keys.

:func:`result_digest` hashes exactly the deterministic fields
:func:`repro.parallel.compare.trace_equal` compares (wall-clock
``decision_time`` values and the ``extras["timing"]`` profile excluded),
so two digests are equal iff the results are trace-equal — a cheap
wire-transportable identity check.
"""

from __future__ import annotations

import dataclasses
import functools
import json
from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from repro.manycore.config import SystemConfig, default_system
from repro.parallel.cache import cell_key, stable_hash, CacheKeyError
from repro.parallel.cells import RunCell, merge_suite, merge_sweep
from repro.parallel.engine import CellTask
from repro.sim.results import SimulationResult
from repro.sim.runner import (
    build_suite_tasks,
    build_sweep_tasks,
    standard_controllers,
)
from repro.workloads import benchmark_names, make_benchmark, mixed_workload
from repro.workloads.phases import Workload

__all__ = ["JobSpec", "PlannedJob", "plan_job", "result_digest"]

_KINDS = ("suite", "sweep")


@dataclasses.dataclass(frozen=True)
class JobSpec:
    """One submission: which cells to run, as plain wire-safe data.

    ``kind="suite"`` runs every controller on every benchmark at the
    config's default budget; ``kind="sweep"`` runs every controller at
    each absolute budget (watts) on exactly one benchmark.  Benchmarks
    are named: ``"mixed"`` or any :func:`repro.workloads.benchmark_names`
    entry; controllers come from the standard lineup
    (:func:`repro.sim.runner.standard_controllers`).
    """

    kind: str = "suite"
    controllers: Tuple[str, ...] = ("od-rl",)
    benchmarks: Tuple[str, ...] = ("mixed",)
    budgets: Tuple[float, ...] = ()
    n_cores: int = 8
    n_epochs: int = 40
    seed: int = 0
    budget_fraction: float = 0.6

    def __post_init__(self) -> None:
        if self.kind not in _KINDS:
            raise ValueError(f"kind must be one of {_KINDS}, got {self.kind!r}")
        if not self.controllers:
            raise ValueError("controllers must be non-empty")
        if not self.benchmarks:
            raise ValueError("benchmarks must be non-empty")
        if self.n_cores < 1:
            raise ValueError(f"n_cores must be >= 1, got {self.n_cores}")
        if self.n_epochs < 1:
            raise ValueError(f"n_epochs must be >= 1, got {self.n_epochs}")
        if self.kind == "sweep":
            if not self.budgets:
                raise ValueError("a sweep needs at least one budget")
            if len(self.benchmarks) != 1:
                raise ValueError(
                    f"a sweep runs exactly one benchmark, got {len(self.benchmarks)}"
                )
        elif self.budgets:
            raise ValueError("budgets only apply to kind='sweep'")

    def to_dict(self) -> Dict[str, Any]:
        """Wire form (plain JSON-safe types)."""
        return {
            "kind": self.kind,
            "controllers": list(self.controllers),
            "benchmarks": list(self.benchmarks),
            "budgets": [float(b) for b in self.budgets],
            "n_cores": self.n_cores,
            "n_epochs": self.n_epochs,
            "seed": self.seed,
            "budget_fraction": self.budget_fraction,
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "JobSpec":
        """Build from wire form; unknown fields are rejected loudly."""
        known = {f.name for f in dataclasses.fields(cls)}
        unknown = sorted(set(data) - known)
        if unknown:
            raise ValueError(f"unknown JobSpec fields: {', '.join(unknown)}")
        fields = dict(data)
        for name in ("controllers", "benchmarks"):
            if name in fields:
                fields[name] = tuple(str(v) for v in fields[name])
        if "budgets" in fields:
            fields["budgets"] = tuple(float(v) for v in fields["budgets"])
        return cls(**fields)

    def cell_count(self) -> int:
        """Cells this spec expands to (without planning it)."""
        per_controller = (
            len(self.budgets) if self.kind == "sweep" else len(self.benchmarks)
        )
        return len(self.controllers) * per_controller


@dataclasses.dataclass
class PlannedJob:
    """A spec expanded into engine tasks (grid order) plus merge metadata.

    ``keys`` holds each task's content-addressed
    :func:`~repro.parallel.cache.cell_key` (``None`` only if a task is
    uncacheable, which the standard lineup never is) — the scheduler
    dedups in-flight work on them.
    """

    spec: JobSpec
    cfg: SystemConfig
    cells: List[RunCell]
    tasks: List[CellTask]
    keys: List[Optional[str]]

    def merge(
        self, flat: Sequence[SimulationResult]
    ) -> Dict[str, Dict[Any, SimulationResult]]:
        """Fold task-ordered results back into the nested mapping the
        library entry points return (``controller → benchmark`` for a
        suite, ``controller → budget`` for a sweep)."""
        if self.spec.kind == "sweep":
            merged_sweep = merge_sweep(self.cells, list(flat))
            return {
                ctrl: dict(by_budget) for ctrl, by_budget in merged_sweep.items()
            }
        merged = merge_suite(self.cells, list(flat))
        return {ctrl: dict(by_wl) for ctrl, by_wl in merged.items()}


@functools.lru_cache(maxsize=256)
def _workload(name: str, n_cores: int, seed: int) -> Workload:
    """Build (and memoize) one named workload.

    Workloads are treated as immutable after construction, so sharing one
    object across concurrent jobs is safe — and saves rebuilding the same
    phase sequences for every one of a thousand identical submissions.
    """
    if name == "mixed":
        return mixed_workload(n_cores, seed=seed)
    if name in benchmark_names():
        return make_benchmark(name, n_cores, seed=seed)
    raise ValueError(
        f"unknown benchmark {name!r}; expected 'mixed' or one of: "
        f"{', '.join(benchmark_names())}"
    )


def plan_job(spec: JobSpec) -> PlannedJob:
    """Expand a spec into engine tasks via the shared runner builders.

    Raises ``ValueError`` for unknown controllers or benchmarks — at
    submit time, before anything is queued.
    """
    cfg = default_system(
        n_cores=spec.n_cores, budget_fraction=spec.budget_fraction
    )
    lineup = standard_controllers(seed=spec.seed)
    unknown = [c for c in spec.controllers if c not in lineup]
    if unknown:
        raise ValueError(
            f"unknown controllers: {', '.join(unknown)}; available: "
            f"{', '.join(lineup)}"
        )
    controllers = {name: lineup[name] for name in spec.controllers}
    if spec.kind == "sweep":
        workload = _workload(spec.benchmarks[0], spec.n_cores, spec.seed)
        cells, tasks = build_sweep_tasks(
            cfg, list(spec.budgets), workload, controllers, spec.n_epochs
        )
    else:
        workloads = {}
        for name in spec.benchmarks:
            wl = _workload(name, spec.n_cores, spec.seed)
            workloads[wl.name] = wl
        cells, tasks = build_suite_tasks(
            cfg, workloads, controllers, spec.n_epochs
        )
    keys: List[Optional[str]] = []
    for task in tasks:
        try:
            keys.append(
                cell_key(
                    task.cell, task.cfg, task.workload, task.factory,
                    task.sim_kwargs,
                )
            )
        except CacheKeyError:
            keys.append(None)
    return PlannedJob(spec=spec, cfg=cfg, cells=cells, tasks=tasks, keys=keys)


def _canonical_extras(result: SimulationResult) -> Any:
    """``extras`` minus wall-clock keys, normalised through JSON — the
    same canonicalisation :func:`repro.parallel.compare.trace_equal`
    applies, so in-memory and disk-round-tripped results digest equal."""
    extras = {k: v for k, v in result.extras.items() if k != "timing"}
    return json.loads(json.dumps(extras, sort_keys=True, default=_jsonable))


def _jsonable(obj: Any) -> Any:
    if isinstance(obj, np.integer):
        return int(obj)
    if isinstance(obj, np.floating):
        return float(obj)
    if isinstance(obj, np.ndarray):
        return obj.tolist()
    raise TypeError(
        f"extras value of type {type(obj).__qualname__} is not JSON-serialisable"
    )


def result_digest(result: SimulationResult) -> str:
    """Content digest of a result's deterministic fields.

    Two results digest equal iff :func:`~repro.parallel.compare.trace_equal`
    holds: configuration, names, every chip-level and per-core series
    (exact bit patterns), the ``decision_time`` length (values are
    wall-clock), and ``extras`` up to JSON canonicalisation minus
    ``timing``.
    """
    series: List[Any] = []
    for name in (
        "chip_power",
        "chip_instructions",
        "max_temperature",
        "core_power",
        "core_levels",
        "core_instructions",
    ):
        value = getattr(result, name)
        series.append(None if value is None else np.asarray(value))
    return stable_hash(
        (
            "result-digest-v1",
            result.controller_name,
            result.workload_name,
            result.cfg,
            series,
            int(result.decision_time.shape[0]),
            _canonical_extras(result),
        )
    )
