"""Closed-loop simulation: controller interface, driver, results, runner."""

from repro.sim.interface import Controller
from repro.sim.islands import IslandedController, island_map
from repro.sim.result_io import load_result, save_result
from repro.sim.results import SimulationResult
from repro.sim.runner import (
    derive_controller_seeds,
    run_budget_sweep,
    run_suite,
    standard_controllers,
)
from repro.sim.simulator import run_controller, simulate
from repro.sim.stats import MetricStatistics, run_seeds

__all__ = [
    "Controller",
    "IslandedController",
    "island_map",
    "SimulationResult",
    "derive_controller_seeds",
    "run_budget_sweep",
    "run_suite",
    "standard_controllers",
    "run_controller",
    "simulate",
    "MetricStatistics",
    "run_seeds",
    "load_result",
    "save_result",
]
