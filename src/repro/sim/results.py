"""Simulation result containers.

A :class:`SimulationResult` stores per-epoch chip-level time series (always)
plus optional per-core series, along with the configuration the run used —
enough for every metric in :mod:`repro.metrics` to be computed after the
fact without re-running.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

import numpy as np

from repro.manycore.config import SystemConfig

__all__ = ["SimulationResult"]


@dataclass
class SimulationResult:
    """Time series and totals from one closed-loop run.

    Attributes
    ----------
    cfg:
        The system configuration of the run.
    controller_name:
        Identifier of the policy that produced the run.
    workload_name:
        Name of the workload executed.
    chip_power:
        Ground-truth total chip power per epoch, watts, shape ``(E,)``.
    chip_instructions:
        Instructions retired chip-wide per epoch, shape ``(E,)``.
    max_temperature:
        Hottest core temperature per epoch, kelvin, shape ``(E,)``.
    decision_time:
        Controller wall-clock seconds spent deciding each epoch, ``(E,)``.
    core_power:
        Optional per-core power, shape ``(E, n_cores)`` (populated when the
        simulator runs with ``record_per_core=True``).
    core_levels:
        Optional per-core VF levels, same shape, integer.
    core_instructions:
        Optional per-core instructions retired, same shape.
    """

    cfg: SystemConfig
    controller_name: str
    workload_name: str
    chip_power: np.ndarray
    chip_instructions: np.ndarray
    max_temperature: np.ndarray
    decision_time: np.ndarray
    core_power: Optional[np.ndarray] = None
    core_levels: Optional[np.ndarray] = None
    core_instructions: Optional[np.ndarray] = None
    extras: dict = field(default_factory=dict)

    def __post_init__(self) -> None:
        e = self.chip_power.shape[0]
        for name in ("chip_instructions", "max_temperature", "decision_time"):
            arr = getattr(self, name)
            if arr.shape[0] != e:
                raise ValueError(f"{name} length {arr.shape[0]} != chip_power length {e}")

    @property
    def n_epochs(self) -> int:
        return int(self.chip_power.shape[0])

    @property
    def duration(self) -> float:
        """Simulated seconds."""
        return self.n_epochs * self.cfg.epoch_time

    @property
    def total_energy(self) -> float:
        """Chip energy over the run, joules."""
        return float(np.sum(self.chip_power)) * self.cfg.epoch_time

    @property
    def total_instructions(self) -> float:
        """Instructions retired chip-wide over the run."""
        return float(np.sum(self.chip_instructions))

    @property
    def mean_throughput(self) -> float:
        """Average instructions per second over the run."""
        return self.total_instructions / self.duration

    def tail(self, fraction: float) -> "SimulationResult":
        """The last ``fraction`` of the run as a new result — used to score
        steady-state behaviour after the learning warm-up."""
        if not (0 < fraction <= 1):
            raise ValueError(f"fraction must be in (0, 1], got {fraction}")
        start = self.n_epochs - max(1, int(round(self.n_epochs * fraction)))
        return SimulationResult(
            cfg=self.cfg,
            controller_name=self.controller_name,
            workload_name=self.workload_name,
            chip_power=self.chip_power[start:],
            chip_instructions=self.chip_instructions[start:],
            max_temperature=self.max_temperature[start:],
            decision_time=self.decision_time[start:],
            core_power=None if self.core_power is None else self.core_power[start:],
            core_levels=None if self.core_levels is None else self.core_levels[start:],
            core_instructions=(
                None
                if self.core_instructions is None
                else self.core_instructions[start:]
            ),
            extras=dict(self.extras),
        )
