"""Controller interface.

Every power-management policy — the paper's OD-RL and all baselines —
implements :class:`Controller`.  The simulator drives the loop:

    levels = controller.decide(observation_of_previous_epoch)
    observation = chip.step(levels)

``decide`` receives ``None`` on the very first epoch (no telemetry yet) and
must return a full per-core VF-level vector.  Controllers must only consume
the ``sensed_*`` observation fields plus the static :class:`SystemConfig`;
ground-truth fields exist for metrics and tests.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Optional

import numpy as np

from repro.manycore.chip import EpochObservation
from repro.manycore.config import SystemConfig

__all__ = ["Controller"]


class Controller(ABC):
    """Abstract per-epoch DVFS policy for an N-core chip.

    Parameters
    ----------
    cfg:
        The system the controller manages.  Gives it the VF table, core
        count, epoch length and the chip power budget — the same information
        real power-management firmware is provisioned with.

    Attributes
    ----------
    name:
        Short identifier used in experiment tables.
    """

    #: overridden by concrete classes
    name: str = "controller"

    def __init__(self, cfg: SystemConfig) -> None:
        if cfg.power_budget <= 0:
            raise ValueError("controller requires a positive power budget")
        if not cfg.vf_levels:
            raise ValueError("controller requires a non-empty VF table")
        self.cfg = cfg

    @property
    def n_cores(self) -> int:
        return self.cfg.n_cores

    @property
    def n_levels(self) -> int:
        return self.cfg.n_levels

    def reset(self) -> None:
        """Clear any learned/internal state before a fresh run.

        The default is stateless; stateful controllers override.
        """

    @abstractmethod
    def decide(self, obs: Optional[EpochObservation]) -> np.ndarray:
        """Return the per-core VF level vector for the next epoch.

        Parameters
        ----------
        obs:
            Telemetry of the epoch that just finished, or ``None`` before
            the first epoch.

        Returns
        -------
        numpy.ndarray
            Integer array of shape ``(n_cores,)`` with entries in
            ``[0, n_levels)``.
        """

    def _full(self, level: int) -> np.ndarray:
        """Convenience: every core at the same ``level``."""
        return np.full(self.n_cores, int(level), dtype=int)
