"""Persistence of simulation results.

Evaluation sweeps are expensive; freezing each run's time series to disk
lets metrics be recomputed, figures re-rendered, and runs diffed without
re-simulating.  A :class:`~repro.sim.results.SimulationResult` round-trips
through a single ``.npz`` file: numeric series as arrays, the identifying
metadata as scalars, and enough of the :class:`SystemConfig` to rebuild an
equivalent configuration (VF table, budget, epoch length, core count).

The restored config uses the *current* default technology constants — the
file stores behavioural series, not the physics that produced them, so a
result saved under one technology should be compared, not re-simulated.
"""

from __future__ import annotations

from pathlib import Path
from typing import Union

import numpy as np

from repro.manycore.config import SystemConfig
from repro.sim.results import SimulationResult

__all__ = ["save_result", "load_result"]

_FORMAT_VERSION = 1


def save_result(result: SimulationResult, path: Union[str, Path]) -> None:
    """Write a simulation result to ``path`` as ``.npz``."""
    path = Path(path)
    payload = {
        "format_version": np.array(_FORMAT_VERSION),
        "controller_name": np.array(result.controller_name),
        "workload_name": np.array(result.workload_name),
        "n_cores": np.array(result.cfg.n_cores),
        "epoch_time": np.array(result.cfg.epoch_time),
        "power_budget": np.array(result.cfg.power_budget),
        "vf_levels": np.array(result.cfg.vf_levels),
        "chip_power": result.chip_power,
        "chip_instructions": result.chip_instructions,
        "max_temperature": result.max_temperature,
        "decision_time": result.decision_time,
    }
    for name in ("core_power", "core_levels", "core_instructions"):
        value = getattr(result, name)
        if value is not None:
            payload[name] = value
    np.savez_compressed(path, **payload)


def load_result(path: Union[str, Path]) -> SimulationResult:
    """Read a result previously written by :func:`save_result`.

    Raises
    ------
    ValueError
        On format-version mismatch.
    """
    path = Path(path)
    with np.load(path, allow_pickle=False) as data:
        version = int(data["format_version"])
        if version != _FORMAT_VERSION:
            raise ValueError(
                f"unsupported result format version {version}; expected "
                f"{_FORMAT_VERSION}"
            )
        vf = tuple((float(f), float(v)) for f, v in data["vf_levels"])
        cfg = SystemConfig(
            n_cores=int(data["n_cores"]),
            vf_levels=vf,
            epoch_time=float(data["epoch_time"]),
            power_budget=float(data["power_budget"]),
        )
        optional = {
            name: (data[name].copy() if name in data else None)
            for name in ("core_power", "core_levels", "core_instructions")
        }
        return SimulationResult(
            cfg=cfg,
            controller_name=str(data["controller_name"]),
            workload_name=str(data["workload_name"]),
            chip_power=data["chip_power"].copy(),
            chip_instructions=data["chip_instructions"].copy(),
            max_temperature=data["max_temperature"].copy(),
            decision_time=data["decision_time"].copy(),
            **optional,
        )
