"""Persistence of simulation results.

Evaluation sweeps are expensive; freezing each run's time series to disk
lets metrics be recomputed, figures re-rendered, and runs diffed without
re-simulating.  A :class:`~repro.sim.results.SimulationResult` round-trips
through a single ``.npz`` file: numeric series as arrays, the identifying
metadata as scalars, and the :class:`SystemConfig` that produced them.

Format history
--------------
* **v1** stored behavioural series plus a partial config (VF table,
  budget, epoch length, core count); restored configs silently took the
  *current* default technology constants.
* **v2** (current) additionally stores the full config — technology
  parameters, ``base_cpi``, ``mem_latency``, ``activity_range`` — and the
  result's ``extras`` dictionary as canonical JSON.  A v2 file therefore
  reloads to a result that is equal to the original on every
  deterministic field, which is what lets the content-addressed cache in
  :mod:`repro.parallel` replay cells bit-for-bit and the golden-trace
  suite pin trajectories.  v1 files still load (with default technology
  and empty extras); unknown future versions are rejected.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Dict, Union

import numpy as np

from repro.manycore.config import SystemConfig, TechnologyParams
from repro.sim.results import SimulationResult

__all__ = ["save_result", "load_result"]

_FORMAT_VERSION = 2
_SUPPORTED_VERSIONS = (1, 2)

#: TechnologyParams fields persisted in declaration order as one array.
_TECH_FIELDS = (
    "ceff",
    "leak_coeff",
    "leak_temp_sens",
    "t_ref",
    "t_ambient",
    "r_thermal",
    "c_thermal",
    "r_lateral",
)


def _jsonable(obj: Any) -> Any:
    """JSON fallback for numpy scalars/arrays appearing in ``extras``."""
    if isinstance(obj, np.integer):
        return int(obj)
    if isinstance(obj, np.floating):
        return float(obj)
    if isinstance(obj, np.ndarray):
        return obj.tolist()
    raise TypeError(
        f"extras value of type {type(obj).__qualname__} is not JSON-serialisable"
    )


def save_result(result: SimulationResult, path: Union[str, Path]) -> None:
    """Write a simulation result to ``path`` as ``.npz`` (format v2)."""
    path = Path(path)
    cfg = result.cfg
    payload: Dict[str, Any] = {
        "format_version": np.array(_FORMAT_VERSION),
        "controller_name": np.array(result.controller_name),
        "workload_name": np.array(result.workload_name),
        "n_cores": np.array(cfg.n_cores),
        "epoch_time": np.array(cfg.epoch_time),
        "power_budget": np.array(cfg.power_budget),
        "vf_levels": np.array(cfg.vf_levels),
        "base_cpi": np.array(cfg.base_cpi),
        "mem_latency": np.array(cfg.mem_latency),
        "activity_range": np.array(cfg.activity_range),
        "technology": np.array(
            [getattr(cfg.technology, f) for f in _TECH_FIELDS]
        ),
        "extras_json": np.array(
            json.dumps(result.extras, sort_keys=True, default=_jsonable)
        ),
        "chip_power": result.chip_power,
        "chip_instructions": result.chip_instructions,
        "max_temperature": result.max_temperature,
        "decision_time": result.decision_time,
    }
    for name in ("core_power", "core_levels", "core_instructions"):
        value = getattr(result, name)
        if value is not None:
            payload[name] = value
    np.savez_compressed(path, **payload)


def load_result(path: Union[str, Path]) -> SimulationResult:
    """Read a result previously written by :func:`save_result`.

    Accepts format v1 (restored with current default technology constants
    and empty ``extras``) and v2 (full fidelity).

    Raises
    ------
    ValueError
        On an unknown format version.
    """
    path = Path(path)
    with np.load(path, allow_pickle=False) as data:
        version = int(data["format_version"])
        if version not in _SUPPORTED_VERSIONS:
            raise ValueError(
                f"unsupported result format version {version}; expected one "
                f"of {_SUPPORTED_VERSIONS}"
            )
        vf = tuple((float(f), float(v)) for f, v in data["vf_levels"])
        cfg_kwargs: Dict[str, Any] = {
            "n_cores": int(data["n_cores"]),
            "vf_levels": vf,
            "epoch_time": float(data["epoch_time"]),
            "power_budget": float(data["power_budget"]),
        }
        extras: Dict[str, Any] = {}
        if version >= 2:
            tech_values = data["technology"]
            cfg_kwargs.update(
                base_cpi=float(data["base_cpi"]),
                mem_latency=float(data["mem_latency"]),
                activity_range=(
                    float(data["activity_range"][0]),
                    float(data["activity_range"][1]),
                ),
                technology=TechnologyParams(
                    **{f: float(v) for f, v in zip(_TECH_FIELDS, tech_values)}
                ),
            )
            extras = json.loads(str(data["extras_json"]))
        cfg = SystemConfig(**cfg_kwargs)
        optional = {
            name: (data[name].copy() if name in data else None)
            for name in ("core_power", "core_levels", "core_instructions")
        }
        return SimulationResult(
            cfg=cfg,
            controller_name=str(data["controller_name"]),
            workload_name=str(data["workload_name"]),
            chip_power=data["chip_power"].copy(),
            chip_instructions=data["chip_instructions"].copy(),
            max_temperature=data["max_temperature"].copy(),
            decision_time=data["decision_time"].copy(),
            extras=extras,
            **optional,
        )
