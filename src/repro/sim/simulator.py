"""Closed-loop simulation driver.

Wires a :class:`~repro.manycore.chip.ManyCoreChip` to a
:class:`~repro.sim.interface.Controller` and runs the control loop for a
given number of epochs, recording the time series every metric needs.
Controller decision latency is measured with ``time.perf_counter`` around
the ``decide`` call only — that wall time is itself an evaluation output
(the paper's scalability claim C3).
"""

from __future__ import annotations

import time
from typing import TYPE_CHECKING, Optional, Union

if TYPE_CHECKING:
    from repro.faults.campaign import FaultCampaign
    from repro.faults.injector import FaultInjector

import numpy as np

from repro.contracts import (
    check_observation_sane,
    check_power_samples,
    check_time_monotone,
    validation_enabled,
)
from repro.manycore.chip import ManyCoreChip
from repro.manycore.config import SystemConfig
from repro.manycore.hetero import HeterogeneousMap
from repro.manycore.memory import MemorySystem
from repro.manycore.sensors import SensorSuite
from repro.manycore.variation import CoreVariation
from repro.sim.interface import Controller
from repro.sim.results import SimulationResult
from repro.workloads.phases import Workload

__all__ = ["simulate", "run_controller"]


def simulate(
    chip: ManyCoreChip,
    controller: Controller,
    n_epochs: int,
    record_per_core: bool = False,
    reset: bool = True,
    validate: Optional[bool] = None,
    watchdog: bool = False,
    checkpoint_period: int = 0,
    max_strikes: int = 3,
) -> SimulationResult:
    """Run the closed control loop for ``n_epochs``.

    Parameters
    ----------
    chip:
        The plant; its config must match the controller's.
    controller:
        The policy under test.
    n_epochs:
        Number of control epochs to simulate.
    record_per_core:
        Also record per-core power and level series (memory:
        ``2 * E * n_cores`` doubles).
    reset:
        Reset both plant and controller first.  Pass ``False`` to continue
        a run (e.g. to measure post-convergence behaviour separately).
    validate:
        Arm the runtime invariant contracts (see :mod:`repro.contracts`)
        for this run, overriding the ``REPRO_VALIDATE`` environment
        variable; also forwarded to the chip's per-epoch checks.  ``None``
        (default) defers to the environment.
    watchdog:
        Wrap the controller in a
        :class:`~repro.faults.watchdog.WatchdogController` before running:
        controller exceptions become recorded recoveries with a fallback
        action, and any :class:`~repro.faults.campaign.ControllerCrash`
        events in the chip's fault campaign are simulated (crash/restart
        with checkpoint recovery).  Watchdog counters land in
        ``result.extras["watchdog"]``.
    checkpoint_period:
        With ``watchdog``, checkpoint the controller every this many
        epochs (``0`` disables; crashes then restart cold).
    max_strikes:
        With ``watchdog``, consecutive decide failures tolerated before
        the controller is reset and restored from the last checkpoint.

    Returns
    -------
    SimulationResult
    """
    if n_epochs <= 0:
        raise ValueError(f"n_epochs must be positive, got {n_epochs}")
    if chip.cfg.n_cores != controller.cfg.n_cores:
        raise ValueError(
            f"chip has {chip.cfg.n_cores} cores but controller was built "
            f"for {controller.cfg.n_cores}"
        )
    if watchdog:
        # Imported here: repro.faults.watchdog depends on this package's
        # Controller interface, so a module-level import would cycle.
        from repro.faults.watchdog import WatchdogController

        crash_epochs = (
            chip.faults.campaign.crash_epochs if chip.faults is not None else ()
        )
        controller = WatchdogController(
            controller,
            max_strikes=max_strikes,
            crash_epochs=crash_epochs,
            checkpoint_period=checkpoint_period,
        )
    if reset:
        chip.reset()
        controller.reset()
    validating = validation_enabled(validate)
    if validate is not None:
        chip.validate = validate

    chip_power = np.empty(n_epochs)
    chip_instructions = np.empty(n_epochs)
    max_temperature = np.empty(n_epochs)
    decision_time = np.empty(n_epochs)
    core_power = np.empty((n_epochs, chip.n_cores)) if record_per_core else None
    core_levels = (
        np.empty((n_epochs, chip.n_cores), dtype=int) if record_per_core else None
    )
    core_instructions = (
        np.empty((n_epochs, chip.n_cores)) if record_per_core else None
    )

    obs = None
    last_time_s = float("-inf")
    for e in range(n_epochs):
        t0 = time.perf_counter()
        levels = controller.decide(obs)
        decision_time[e] = time.perf_counter() - t0
        obs = chip.step(levels)
        if validating:
            check_power_samples(obs.power, epoch=e)
            check_time_monotone(last_time_s, obs.time, epoch=e)
            check_observation_sane(
                obs.sensed_power,
                obs.sensed_instructions,
                obs.sensed_temperature,
                obs.levels,
                chip.cfg.n_levels,
                epoch=e,
            )
            last_time_s = obs.time
        chip_power[e] = obs.chip_power
        chip_instructions[e] = obs.chip_instructions
        max_temperature[e] = float(np.max(obs.temperature))
        if record_per_core:
            core_power[e] = obs.power
            core_levels[e] = obs.levels
            core_instructions[e] = obs.instructions

    return SimulationResult(
        cfg=chip.cfg,
        controller_name=controller.name,
        workload_name=chip.workload.name,
        chip_power=chip_power,
        chip_instructions=chip_instructions,
        max_temperature=max_temperature,
        decision_time=decision_time,
        core_power=core_power,
        core_levels=core_levels,
        core_instructions=core_instructions,
        extras=_resilience_extras(chip, controller),
    )


def _resilience_extras(chip: ManyCoreChip, controller: Controller) -> dict:
    """Fault-injection and degradation counters for ``result.extras``.

    Duck-typed so memoryless baselines (no sanitizer, no watchdog wrapper)
    contribute nothing; keys appear only when the matching machinery ran.
    """
    extras: dict = {}
    if chip.faults is not None and chip.faults.campaign.n_events > 0:
        extras["faults"] = {
            "n_events": chip.faults.campaign.n_events,
            **chip.faults.counts,
        }
    stats = getattr(controller, "stats", None)
    inner = getattr(controller, "inner", controller)
    if stats is not None and inner is not controller:
        extras["watchdog"] = stats
    sanitizer = getattr(inner, "sanitizer", None)
    if sanitizer is not None and getattr(inner, "degradation", False):
        extras["degradation"] = {
            "rejected_samples": sanitizer.rejected_samples,
            "fallback_samples": sanitizer.fallback_samples,
            "agents_repaired": getattr(inner, "agents_repaired", 0),
        }
    return extras


def run_controller(
    cfg: SystemConfig,
    workload: Workload,
    controller: Controller,
    n_epochs: int,
    sensors: Optional[SensorSuite] = None,
    record_per_core: bool = False,
    variation: Optional[CoreVariation] = None,
    memory_system: Optional[MemorySystem] = None,
    hetero: Optional[HeterogeneousMap] = None,
    validate: Optional[bool] = None,
    faults: Union["FaultCampaign", "FaultInjector", None] = None,
    watchdog: bool = False,
    checkpoint_period: int = 0,
    max_strikes: int = 3,
) -> SimulationResult:
    """Convenience wrapper: build the chip, run, return the result.

    ``faults`` attaches a fault campaign to the chip; ``watchdog``,
    ``checkpoint_period`` and ``max_strikes`` are forwarded to
    :func:`simulate` (checkpoint cadence in epochs).
    """
    chip = ManyCoreChip(
        cfg,
        workload,
        sensors=sensors,
        variation=variation,
        memory_system=memory_system,
        hetero=hetero,
        validate=validate,
        faults=faults,
    )
    return simulate(
        chip,
        controller,
        n_epochs,
        record_per_core=record_per_core,
        validate=validate,
        watchdog=watchdog,
        checkpoint_period=checkpoint_period,
        max_strikes=max_strikes,
    )
