"""Closed-loop simulation driver.

Wires a :class:`~repro.manycore.chip.ManyCoreChip` to a
:class:`~repro.sim.interface.Controller` and runs the control loop for a
given number of epochs, recording the time series every metric needs.
Controller decision latency is measured with ``time.perf_counter`` around
the ``decide`` call only — that wall time is itself an evaluation output
(the paper's scalability claim C3).
"""

from __future__ import annotations

import time
from typing import Optional

import numpy as np

from repro.contracts import (
    check_power_samples,
    check_time_monotone,
    validation_enabled,
)
from repro.manycore.chip import ManyCoreChip
from repro.manycore.config import SystemConfig
from repro.manycore.hetero import HeterogeneousMap
from repro.manycore.memory import MemorySystem
from repro.manycore.sensors import SensorSuite
from repro.manycore.variation import CoreVariation
from repro.sim.interface import Controller
from repro.sim.results import SimulationResult
from repro.workloads.phases import Workload

__all__ = ["simulate", "run_controller"]


def simulate(
    chip: ManyCoreChip,
    controller: Controller,
    n_epochs: int,
    record_per_core: bool = False,
    reset: bool = True,
    validate: Optional[bool] = None,
) -> SimulationResult:
    """Run the closed control loop for ``n_epochs``.

    Parameters
    ----------
    chip:
        The plant; its config must match the controller's.
    controller:
        The policy under test.
    n_epochs:
        Number of control epochs to simulate.
    record_per_core:
        Also record per-core power and level series (memory:
        ``2 * E * n_cores`` doubles).
    reset:
        Reset both plant and controller first.  Pass ``False`` to continue
        a run (e.g. to measure post-convergence behaviour separately).
    validate:
        Arm the runtime invariant contracts (see :mod:`repro.contracts`)
        for this run, overriding the ``REPRO_VALIDATE`` environment
        variable; also forwarded to the chip's per-epoch checks.  ``None``
        (default) defers to the environment.

    Returns
    -------
    SimulationResult
    """
    if n_epochs <= 0:
        raise ValueError(f"n_epochs must be positive, got {n_epochs}")
    if chip.cfg.n_cores != controller.cfg.n_cores:
        raise ValueError(
            f"chip has {chip.cfg.n_cores} cores but controller was built "
            f"for {controller.cfg.n_cores}"
        )
    if reset:
        chip.reset()
        controller.reset()
    validating = validation_enabled(validate)
    if validate is not None:
        chip.validate = validate

    chip_power = np.empty(n_epochs)
    chip_instructions = np.empty(n_epochs)
    max_temperature = np.empty(n_epochs)
    decision_time = np.empty(n_epochs)
    core_power = np.empty((n_epochs, chip.n_cores)) if record_per_core else None
    core_levels = (
        np.empty((n_epochs, chip.n_cores), dtype=int) if record_per_core else None
    )
    core_instructions = (
        np.empty((n_epochs, chip.n_cores)) if record_per_core else None
    )

    obs = None
    last_time_s = float("-inf")
    for e in range(n_epochs):
        t0 = time.perf_counter()
        levels = controller.decide(obs)
        decision_time[e] = time.perf_counter() - t0
        obs = chip.step(levels)
        if validating:
            check_power_samples(obs.power, epoch=e)
            check_time_monotone(last_time_s, obs.time, epoch=e)
            last_time_s = obs.time
        chip_power[e] = obs.chip_power
        chip_instructions[e] = obs.chip_instructions
        max_temperature[e] = float(np.max(obs.temperature))
        if record_per_core:
            core_power[e] = obs.power
            core_levels[e] = obs.levels
            core_instructions[e] = obs.instructions

    return SimulationResult(
        cfg=chip.cfg,
        controller_name=controller.name,
        workload_name=chip.workload.name,
        chip_power=chip_power,
        chip_instructions=chip_instructions,
        max_temperature=max_temperature,
        decision_time=decision_time,
        core_power=core_power,
        core_levels=core_levels,
        core_instructions=core_instructions,
    )


def run_controller(
    cfg: SystemConfig,
    workload: Workload,
    controller: Controller,
    n_epochs: int,
    sensors: Optional[SensorSuite] = None,
    record_per_core: bool = False,
    variation: Optional[CoreVariation] = None,
    memory_system: Optional[MemorySystem] = None,
    hetero: Optional[HeterogeneousMap] = None,
    validate: Optional[bool] = None,
) -> SimulationResult:
    """Convenience wrapper: build the chip, run, return the result."""
    chip = ManyCoreChip(
        cfg,
        workload,
        sensors=sensors,
        variation=variation,
        memory_system=memory_system,
        hetero=hetero,
        validate=validate,
    )
    return simulate(
        chip, controller, n_epochs, record_per_core=record_per_core, validate=validate
    )
