"""Closed-loop simulation driver.

Wires a :class:`~repro.manycore.chip.ManyCoreChip` to a
:class:`~repro.sim.interface.Controller` and runs the control loop for a
given number of epochs, recording the time series every metric needs.
Controller decision latency is measured with ``time.perf_counter`` around
the ``decide`` call only — that wall time is itself an evaluation output
(the paper's scalability claim C3).

Observability (:mod:`repro.obs`) threads through here: pass a
``recorder`` to stream typed events (run manifest, per-epoch records,
fault/sanitizer/watchdog incidents, checkpoint saves/restores) and
``profile=True`` to collect the per-phase timing breakdown into
``result.extras["timing"]``.  Both are strictly write-only: the simulated
trajectory is bit-identical with observability on or off, which the
golden-trace tests enforce.  Incident events are produced by *polling*
the subsystems' cumulative counters between epochs — the fault injector,
sanitizer and watchdog never learn that a recorder exists.
"""

from __future__ import annotations

import time
from typing import TYPE_CHECKING, Dict, Optional, Union

if TYPE_CHECKING:
    from repro.faults.campaign import FaultCampaign
    from repro.faults.injector import FaultInjector

import numpy as np

from repro.contracts import (
    check_observation_sane,
    check_power_samples,
    check_time_monotone,
    validation_enabled,
)
from repro.manycore.chip import ManyCoreChip
from repro.manycore.config import SystemConfig
from repro.manycore.hetero import HeterogeneousMap
from repro.manycore.memory import MemorySystem
from repro.manycore.sensors import SensorSuite
from repro.manycore.variation import CoreVariation
from repro.obs import NULL_RECORDER, PhaseProfiler, Recorder, SCHEMA_VERSION
from repro.sim.interface import Controller
from repro.sim.results import SimulationResult
from repro.workloads.phases import Workload

__all__ = ["simulate", "run_controller"]

#: watchdog counter attribute -> emitted incident, polled between epochs
_WATCHDOG_INCIDENTS = (
    ("recoveries", "recovery"),
    ("resets", "reset"),
    ("crashes", "crash"),
)


def simulate(
    chip: ManyCoreChip,
    controller: Controller,
    n_epochs: int,
    record_per_core: bool = False,
    reset: bool = True,
    validate: Optional[bool] = None,
    watchdog: bool = False,
    checkpoint_period: int = 0,
    max_strikes: int = 3,
    recorder: Optional[Recorder] = None,
    profile: bool = False,
    harvest: bool = False,
) -> SimulationResult:
    """Run the closed control loop for ``n_epochs``.

    Parameters
    ----------
    chip:
        The plant; its config must match the controller's.
    controller:
        The policy under test.
    n_epochs:
        Number of control epochs to simulate.
    record_per_core:
        Also record per-core power and level series (memory:
        ``2 * E * n_cores`` doubles).
    reset:
        Reset both plant and controller first.  Pass ``False`` to continue
        a run (e.g. to measure post-convergence behaviour separately).
    validate:
        Arm the runtime invariant contracts (see :mod:`repro.contracts`)
        for this run, overriding the ``REPRO_VALIDATE`` environment
        variable; also forwarded to the chip's per-epoch checks.  ``None``
        (default) defers to the environment.
    watchdog:
        Wrap the controller in a
        :class:`~repro.faults.watchdog.WatchdogController` before running:
        controller exceptions become recorded recoveries with a fallback
        action, and any :class:`~repro.faults.campaign.ControllerCrash`
        events in the chip's fault campaign are simulated (crash/restart
        with checkpoint recovery).  Watchdog counters land in
        ``result.extras["watchdog"]``.
    checkpoint_period:
        With ``watchdog``, checkpoint the controller every this many
        epochs (``0`` disables; crashes then restart cold).
    max_strikes:
        With ``watchdog``, consecutive decide failures tolerated before
        the controller is reset and restored from the last checkpoint.
    recorder:
        Event sink for the structured trace (see :mod:`repro.obs`);
        ``None`` uses the zero-overhead null recorder.  Wall-clock fields
        live only in trace events — the deterministic result series are
        bit-identical with any recorder attached.
    profile:
        Collect the per-phase timing breakdown
        (decide / plant / sensor / contracts / sanitizer / watchdog) into
        ``result.extras["timing"]`` and, with a recorder, into each epoch
        event.  Pure wall-clock measurement; never feeds back into the
        simulation.
    harvest:
        With a recorder, also emit one ``transition`` event per TD update
        the controller performs — the raw material of offline-RL replay
        datasets (see :mod:`repro.offline`).  The controller must expose
        a ``last_update`` attribute (:class:`~repro.core.controller.
        ODRLController` does); requesting harvest from one that does not
        is a ``ValueError``, not a silently empty dataset.  Off by
        default so ordinary traces stay byte-stable and inside the
        tracing overhead budget.

    Returns
    -------
    SimulationResult
    """
    if n_epochs <= 0:
        raise ValueError(f"n_epochs must be positive, got {n_epochs}")
    if chip.cfg.n_cores != controller.cfg.n_cores:
        raise ValueError(
            f"chip has {chip.cfg.n_cores} cores but controller was built "
            f"for {controller.cfg.n_cores}"
        )
    if watchdog:
        # Imported here: repro.faults.watchdog depends on this package's
        # Controller interface, so a module-level import would cycle.
        from repro.faults.watchdog import WatchdogController

        crash_epochs = (
            chip.faults.campaign.crash_epochs if chip.faults is not None else ()
        )
        controller = WatchdogController(
            controller,
            max_strikes=max_strikes,
            crash_epochs=crash_epochs,
            checkpoint_period=checkpoint_period,
        )
    if reset:
        chip.reset()
        controller.reset()
    validating = validation_enabled(validate)
    if validate is not None:
        chip.validate = validate

    rec: Recorder = recorder if recorder is not None else NULL_RECORDER
    profiler = PhaseProfiler() if profile else None
    inner = getattr(controller, "inner", controller)
    harvesting = harvest and rec.enabled
    if harvest and not hasattr(inner, "last_update"):
        raise ValueError(
            "harvest=True requires a controller exposing last_update "
            f"(an RL learner); {type(inner).__name__} does not"
        )

    chip_power = np.empty(n_epochs)
    chip_instructions = np.empty(n_epochs)
    max_temperature = np.empty(n_epochs)
    decision_time = np.empty(n_epochs)
    core_power = np.empty((n_epochs, chip.n_cores)) if record_per_core else None
    core_levels = (
        np.empty((n_epochs, chip.n_cores), dtype=int) if record_per_core else None
    )
    core_instructions = (
        np.empty((n_epochs, chip.n_cores)) if record_per_core else None
    )

    if rec.enabled:
        rec.emit(
            "run_start",
            **_run_manifest(chip, controller, inner, n_epochs, harvest=harvesting),
        )
    poller = _IncidentPoller(chip, controller, inner) if rec.enabled else None

    if profiler is not None:
        # Duck-typed attachment: the chip times its sensor reads, the
        # controller its sanitizer pass, the watchdog its wrapper
        # overhead — each only if it carries a ``profiler`` attribute.
        chip.profiler = profiler
        controller.profiler = profiler
        if inner is not controller:
            inner.profiler = profiler
    try:
        obs = None
        last_time_s = float("-inf")
        for e in range(n_epochs):
            t0 = time.perf_counter()
            levels = controller.decide(obs)
            t1 = time.perf_counter()
            decision_time[e] = t1 - t0
            obs = chip.step(levels)
            t2 = time.perf_counter() if profiler is not None else 0.0
            if validating:
                check_power_samples(obs.power, epoch=e)
                check_time_monotone(last_time_s, obs.time, epoch=e)
                check_observation_sane(
                    obs.sensed_power,
                    obs.sensed_instructions,
                    obs.sensed_temperature,
                    obs.levels,
                    chip.cfg.n_levels,
                    epoch=e,
                )
                last_time_s = obs.time
            chip_power[e] = obs.chip_power
            chip_instructions[e] = obs.chip_instructions
            max_temperature[e] = float(np.max(obs.temperature))
            if record_per_core:
                core_power[e] = obs.power
                core_levels[e] = obs.levels
                core_instructions[e] = obs.instructions

            phases: Optional[Dict[str, float]] = None
            if profiler is not None:
                t3 = time.perf_counter()
                profiler.add("decide", t1 - t0)
                profiler.add("plant", t2 - t1)
                profiler.add("contracts", t3 - t2)
                phases = profiler.end_epoch()
            if rec.enabled:
                # Native floats keep the hot-path JSON encode off the
                # slow ``default=`` fallback for numpy scalars.
                fields: Dict[str, object] = {
                    "epoch": e,
                    "chip_power": float(chip_power[e]),
                    "chip_instructions": float(chip_instructions[e]),
                    "max_temperature": max_temperature[e],
                    "decision_time": float(decision_time[e]),
                }
                if phases is not None:
                    fields["phases"] = phases
                rec.emit("epoch", **fields)
                if harvesting:
                    update = getattr(inner, "last_update", None)
                    if update is not None:
                        # .tolist() up front: native ints/floats/bools keep
                        # the JSON encode off the slow default= fallback,
                        # and floats round-trip bit-exactly through repr.
                        rec.emit(
                            "transition",
                            epoch=e,
                            states=update["states"].tolist(),
                            actions=update["actions"].tolist(),
                            rewards=update["rewards"].tolist(),
                            next_states=update["next_states"].tolist(),
                            next_actions=update["next_actions"].tolist(),
                            mask=update["mask"].tolist(),
                        )
                assert poller is not None
                poller.poll(rec, e)
    finally:
        if profiler is not None:
            chip.profiler = None
            controller.profiler = None
            if inner is not controller:
                inner.profiler = None

    extras = _resilience_extras(chip, controller)
    if profiler is not None:
        extras["timing"] = profiler.breakdown().as_dict()
    if rec.enabled:
        end_fields: Dict[str, object] = {
            "n_epochs": n_epochs,
            "total_energy_j": chip.total_energy,
            "total_instructions": chip.total_instructions,
        }
        if profiler is not None:
            end_fields["timing"] = extras["timing"]
        rec.emit("run_end", **end_fields)

    return SimulationResult(
        cfg=chip.cfg,
        controller_name=controller.name,
        workload_name=chip.workload.name,
        chip_power=chip_power,
        chip_instructions=chip_instructions,
        max_temperature=max_temperature,
        decision_time=decision_time,
        core_power=core_power,
        core_levels=core_levels,
        core_instructions=core_instructions,
        extras=extras,
    )


def _run_manifest(
    chip: ManyCoreChip,
    controller: Controller,
    inner: Controller,
    n_epochs: int,
    harvest: bool = False,
) -> Dict[str, object]:
    """The ``run_start`` event payload: everything needed to identify a run.

    Under harvest mode the manifest also carries the learner's state/action
    geometry (events are open records), so replay ingestion can size its
    tables from the trace alone.
    """
    # Imported lazily: the cache module lives in repro.parallel, which
    # imports this module's package; deferring avoids an import cycle at
    # module load while reusing the one canonical code-version salt.
    from repro.parallel.cache import CACHE_SALT

    seed = getattr(inner, "_seed", None)
    manifest: Dict[str, object] = {
        "schema_version": SCHEMA_VERSION,
        "controller": controller.name,
        "workload": chip.workload.name,
        "n_cores": chip.cfg.n_cores,
        "n_epochs": n_epochs,
        "code_salt": CACHE_SALT,
        "power_budget": chip.cfg.power_budget,
        "epoch_time": chip.cfg.epoch_time,
        "seed": int(seed) if isinstance(seed, (int, np.integer)) else None,
        "watchdog": inner is not controller,
    }
    if harvest:
        agents = getattr(inner, "agents")
        manifest["harvest"] = True
        manifest["rl_n_states"] = int(agents.n_states)
        manifest["rl_n_actions"] = int(agents.n_actions)
        manifest["rl_gamma"] = float(agents.gamma)
        manifest["rl_action_mode"] = str(getattr(inner, "action_mode", ""))
    return manifest


class _IncidentPoller:
    """Turns cumulative subsystem counters into per-epoch incident events.

    Snapshots the fault injector's counts, the sanitizer's sample
    counters, and the watchdog's recovery/checkpoint counters, and emits
    one event per counter that moved during the epoch.  Polling keeps the
    subsystems recorder-free: they cannot behave differently under
    observation because they never see the recorder.
    """

    def __init__(
        self, chip: ManyCoreChip, controller: Controller, inner: Controller
    ) -> None:
        self._injector = chip.faults
        self._sanitizer = (
            getattr(inner, "sanitizer", None)
            if getattr(inner, "degradation", False)
            else None
        )
        self._watchdog = controller if inner is not controller else None
        self._fault_prev: Dict[str, int] = (
            dict(self._injector.counts) if self._injector is not None else {}
        )
        self._san_prev = self._sanitizer_counts()
        self._wd_prev = self._watchdog_counts()

    def _sanitizer_counts(self) -> tuple:
        if self._sanitizer is None:
            return (0, 0)
        return (self._sanitizer.rejected_samples, self._sanitizer.fallback_samples)

    def _watchdog_counts(self) -> Dict[str, int]:
        if self._watchdog is None:
            return {}
        names = [attr for attr, _ in _WATCHDOG_INCIDENTS] + ["checkpoints", "restores"]
        return {n: int(getattr(self._watchdog, n, 0)) for n in names}

    @staticmethod
    def _diff(now: int, prev: int) -> int:
        """Restart-aware counter delta.

        A cumulative counter can shrink mid-run when its subsystem is
        reset (a controller crash resets the inner policy, which resets
        the sanitizer's tallies).  A drop means the counter restarted
        from zero, so the epoch's increment is the new value itself.
        """
        return now if now < prev else now - prev

    def poll(self, rec: Recorder, epoch: int) -> None:
        if self._injector is not None:
            now = dict(self._injector.counts)
            for kind, value in now.items():
                diff = self._diff(value, self._fault_prev.get(kind, 0))
                if diff:
                    rec.emit("fault", epoch=epoch, kind=kind, count=diff)
            self._fault_prev = now
        if self._sanitizer is not None:
            rejected, fallback = self._sanitizer_counts()
            d_rej = self._diff(rejected, self._san_prev[0])
            d_fb = self._diff(fallback, self._san_prev[1])
            if d_rej or d_fb:
                rec.emit("sanitizer", epoch=epoch, rejected=d_rej, fallback=d_fb)
            self._san_prev = (rejected, fallback)
        if self._watchdog is not None:
            now_wd = self._watchdog_counts()
            for attr, incident in _WATCHDOG_INCIDENTS:
                diff = self._diff(now_wd[attr], self._wd_prev.get(attr, 0))
                if diff:
                    rec.emit("watchdog", epoch=epoch, event=incident, count=diff)
            for attr, action in (("checkpoints", "save"), ("restores", "restore")):
                diff = self._diff(now_wd.get(attr, 0), self._wd_prev.get(attr, 0))
                for _ in range(diff):
                    rec.emit("checkpoint", epoch=epoch, action=action)
            self._wd_prev = now_wd


def _resilience_extras(chip: ManyCoreChip, controller: Controller) -> dict:
    """Fault-injection and degradation counters for ``result.extras``.

    Duck-typed so memoryless baselines (no sanitizer, no watchdog wrapper)
    contribute nothing; keys appear only when the matching machinery ran.
    """
    extras: dict = {}
    if chip.faults is not None and chip.faults.campaign.n_events > 0:
        extras["faults"] = {
            "n_events": chip.faults.campaign.n_events,
            **chip.faults.counts,
        }
    stats = getattr(controller, "stats", None)
    inner = getattr(controller, "inner", controller)
    if stats is not None and inner is not controller:
        extras["watchdog"] = stats
    sanitizer = getattr(inner, "sanitizer", None)
    if sanitizer is not None and getattr(inner, "degradation", False):
        extras["degradation"] = {
            "rejected_samples": sanitizer.rejected_samples,
            "fallback_samples": sanitizer.fallback_samples,
            "agents_repaired": getattr(inner, "agents_repaired", 0),
        }
    return extras


def run_controller(
    cfg: SystemConfig,
    workload: Workload,
    controller: Controller,
    n_epochs: int,
    sensors: Optional[SensorSuite] = None,
    record_per_core: bool = False,
    variation: Optional[CoreVariation] = None,
    memory_system: Optional[MemorySystem] = None,
    hetero: Optional[HeterogeneousMap] = None,
    validate: Optional[bool] = None,
    faults: Union["FaultCampaign", "FaultInjector", None] = None,
    watchdog: bool = False,
    checkpoint_period: int = 0,
    max_strikes: int = 3,
    recorder: Optional[Recorder] = None,
    profile: bool = False,
    harvest: bool = False,
) -> SimulationResult:
    """Convenience wrapper: build the chip, run, return the result.

    ``faults`` attaches a fault campaign to the chip; ``watchdog``,
    ``checkpoint_period`` and ``max_strikes`` are forwarded to
    :func:`simulate` (checkpoint cadence in epochs), as are ``recorder``,
    ``profile`` and ``harvest`` (see :mod:`repro.obs` and
    :mod:`repro.offline`).
    """
    chip = ManyCoreChip(
        cfg,
        workload,
        sensors=sensors,
        variation=variation,
        memory_system=memory_system,
        hetero=hetero,
        validate=validate,
        faults=faults,
    )
    return simulate(
        chip,
        controller,
        n_epochs,
        record_per_core=record_per_core,
        validate=validate,
        watchdog=watchdog,
        checkpoint_period=checkpoint_period,
        max_strikes=max_strikes,
        recorder=recorder,
        profile=profile,
        harvest=harvest,
    )
