"""Voltage/Frequency Island (VFI) granularity.

Commercial many-cores rarely give every core its own voltage regulator;
cores are grouped into islands that share one VF setting.  Island
granularity is a classic design trade-off: per-core islands maximize
control freedom but cost regulators; chip-wide control is cheap but cannot
differentiate cores.

:class:`IslandedController` runs *any* per-core controller at island
granularity without changing the controller: it presents the inner
controller with a **virtual chip** whose "cores" are the islands —

* the virtual technology's ``ceff`` and ``leak_coeff`` are scaled by the
  island size, so the virtual per-"core" power model matches a whole
  island's draw (power telemetry is summed per island);
* instruction telemetry is *averaged* per island, keeping IPC and
  normalized-throughput semantics identical to the single-core case;
* temperature telemetry is the island maximum (the binding constraint);

and expands the inner controller's island-level decisions back to per-core
level vectors.  Experiment E12 sweeps the island size.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Callable, Optional

import numpy as np

from repro.manycore.chip import EpochObservation
from repro.manycore.config import SystemConfig
from repro.sim.interface import Controller

__all__ = ["IslandedController", "island_map"]


def island_map(n_cores: int, island_size: int) -> np.ndarray:
    """Per-core island indices for contiguous islands of ``island_size``.

    The last island may be smaller when ``island_size`` does not divide
    ``n_cores``.
    """
    if n_cores <= 0:
        raise ValueError(f"n_cores must be positive, got {n_cores}")
    if island_size <= 0:
        raise ValueError(f"island_size must be positive, got {island_size}")
    return np.arange(n_cores) // island_size


class IslandedController(Controller):
    """Run an inner per-core controller at VFI (multi-core island)
    granularity.

    Parameters
    ----------
    cfg:
        The *real* system configuration.
    island_size:
        Cores per island; 1 reproduces the inner controller exactly, and
        ``n_cores`` gives chip-wide control.
    inner_factory:
        Callable building the inner controller from the *virtual*
        :class:`SystemConfig`; defaults to
        :class:`~repro.core.controller.ODRLController`.
    """

    def __init__(
        self,
        cfg: SystemConfig,
        island_size: int,
        inner_factory: Optional[Callable[[SystemConfig], Controller]] = None,
    ) -> None:
        super().__init__(cfg)
        if island_size <= 0 or island_size > cfg.n_cores:
            raise ValueError(
                f"island_size must be in [1, n_cores], got {island_size}"
            )
        self.island_size = island_size
        self._map = island_map(cfg.n_cores, island_size)
        self.n_islands = int(self._map.max()) + 1
        self._island_counts = np.bincount(self._map).astype(float)

        # The virtual chip: one "core" per island with island-scaled power
        # constants.  For simplicity islands are scaled by the nominal
        # island size; a partial last island is slightly over-provisioned
        # in the virtual model, which is conservative.
        tech = cfg.technology
        virtual_tech = replace(
            tech,
            ceff=tech.ceff * island_size,
            leak_coeff=tech.leak_coeff * island_size,
        )
        self._virtual_cfg = replace(
            cfg, n_cores=self.n_islands, technology=virtual_tech
        )
        if inner_factory is None:
            from repro.core.controller import ODRLController

            inner_factory = ODRLController
        self.inner = inner_factory(self._virtual_cfg)
        self.name = f"vfi{island_size}:{self.inner.name}"

    def reset(self) -> None:
        self.inner.reset()

    def _aggregate(self, obs: EpochObservation) -> EpochObservation:
        """Collapse per-core telemetry into per-island virtual telemetry."""
        def sum_by_island(values: np.ndarray) -> np.ndarray:
            return np.bincount(self._map, weights=values, minlength=self.n_islands)

        def mean_by_island(values: np.ndarray) -> np.ndarray:
            return sum_by_island(values) / self._island_counts

        def max_by_island(values: np.ndarray) -> np.ndarray:
            out = np.full(self.n_islands, -np.inf)
            np.maximum.at(out, self._map, values)
            return out

        # All cores in an island share a level; take the first per island.
        first = np.zeros(self.n_islands, dtype=int)
        seen = np.zeros(self.n_islands, dtype=bool)
        for core in range(self.cfg.n_cores):
            isl = self._map[core]
            if not seen[isl]:
                first[isl] = obs.levels[core]
                seen[isl] = True

        return EpochObservation(
            epoch=obs.epoch,
            time=obs.time,
            levels=first,
            power=sum_by_island(obs.power),
            instructions=mean_by_island(obs.instructions),
            temperature=max_by_island(obs.temperature),
            mem_intensity=mean_by_island(obs.mem_intensity),
            compute_intensity=mean_by_island(obs.compute_intensity),
            sensed_power=sum_by_island(obs.sensed_power),
            sensed_instructions=mean_by_island(obs.sensed_instructions),
            sensed_temperature=max_by_island(obs.sensed_temperature),
        )

    def decide(self, obs: Optional[EpochObservation]) -> np.ndarray:
        virtual_obs = None if obs is None else self._aggregate(obs)
        island_levels = self.inner.decide(virtual_obs)
        return island_levels[self._map]
