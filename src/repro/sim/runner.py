"""Experiment runner: controller factories and sweep helpers.

The evaluation compares the same controller set across many workloads,
budgets, and core counts.  This module centralizes the controller lineup
(so every experiment uses identical configurations) and the grid
bookkeeping.  Grids run serially by default; ``jobs=N`` shards the grid
across worker processes and ``cache=`` adds content-addressed result
caching — both via :mod:`repro.parallel`, and both bit-identical to the
serial loop on every deterministic output (see ``docs/parallel.md``).

Controller factories are ``functools.partial`` objects over module-level
builders rather than lambdas: partials pickle into spawned workers and
carry an introspectable construction recipe, which is what the result
cache fingerprints.
"""

from __future__ import annotations

import importlib
from functools import partial
from pathlib import Path
from typing import (
    TYPE_CHECKING,
    Any,
    Callable,
    Dict,
    List,
    Mapping,
    Optional,
    Sequence,
    Tuple,
    Union,
)

import numpy as np

from repro.manycore.config import SystemConfig
from repro.obs import Recorder
from repro.sim.interface import Controller
from repro.sim.results import SimulationResult
from repro.sim.simulator import run_controller
from repro.workloads.phases import Workload

if TYPE_CHECKING:
    from repro.parallel.cells import RunCell
    from repro.parallel.engine import CellTask

__all__ = [
    "ControllerFactory",
    "derive_controller_seeds",
    "standard_controllers",
    "build_suite_tasks",
    "build_sweep_tasks",
    "run_suite",
    "run_budget_sweep",
]

ControllerFactory = Callable[[SystemConfig], Controller]

#: Canonical lineup order and construction recipe: name -> (class path,
#: takes_seed).  Order matters for table output: the contribution first,
#: then the reactive/optimizing baselines, then the static anchors.
_LINEUP: Dict[str, tuple] = {
    "od-rl": ("repro.core.ODRLController", True),
    "pid": ("repro.baselines.PIDCappingController", False),
    "greedy-ascent": ("repro.baselines.GreedyAscentController", False),
    "steepest-drop": ("repro.baselines.SteepestDropController", False),
    "max-swap": ("repro.baselines.MaxSwapController", False),
    "maxbips": ("repro.baselines.MaxBIPSController", False),
    "centralized-rl": ("repro.baselines.CentralizedRLController", True),
    "static-uniform": ("repro.baselines.StaticUniformController", False),
    "uncapped": ("repro.baselines.UncappedController", False),
}


def _construct_controller(
    cls_path: str, cfg: SystemConfig, seed: Optional[int] = None
) -> Controller:
    """Import ``cls_path`` and build it over ``cfg`` (module-level so the
    ``partial`` factories built on it pickle into spawned workers)."""
    module_name, _, cls_name = cls_path.rpartition(".")
    cls = getattr(importlib.import_module(module_name), cls_name)
    controller: Controller = cls(cfg, seed=seed) if seed is not None else cls(cfg)
    return controller


def _construct_warm_controller(
    policy_path: str,
    policy_digest: str,
    cfg: SystemConfig,
    seed: Optional[int] = None,
) -> Controller:
    """Build the ``od-rl-warm`` lineup member from an offline policy file.

    ``policy_digest`` rides in the partial's positional args so the
    result cache fingerprints *which* policy the run used; the builder
    re-verifies it at construction, so a cache hit can never pair stale
    results with an edited policy file.
    """
    from repro.offline.warmstart import build_warm_controller

    return build_warm_controller(
        cfg, policy_path, seed=seed if seed is not None else 0,
        expected_digest=policy_digest,
    )


def _construct_linear_controller(
    policy_path: str, policy_digest: str, cfg: SystemConfig
) -> Controller:
    """Build the ``linear-q`` lineup member from an offline policy file."""
    from repro.offline.warmstart import build_linear_controller

    return build_linear_controller(
        cfg, policy_path, expected_digest=policy_digest
    )


#: offline lineup name -> module-level builder (see standard_controllers)
_OFFLINE_BUILDERS: Dict[str, Callable[..., Controller]] = {
    "od-rl-warm": _construct_warm_controller,
    "linear-q": _construct_linear_controller,
}


def derive_controller_seeds(seed: int, names: Sequence[str]) -> Dict[str, int]:
    """Independent per-controller seeds derived from one lineup seed.

    Each name gets its own :class:`numpy.random.SeedSequence` child (via
    ``spawn``), so two seeded controllers in the same lineup can never
    share an RNG stream — handing the raw ``seed`` to both OD-RL and
    centralized RL would make their exploration draws identical, silently
    correlating the contribution with its own baseline.  The mapping is a
    pure function of ``(seed, position in names)``.
    """
    children = np.random.SeedSequence(seed).spawn(len(names))
    return {
        name: int(child.generate_state(1, np.uint64)[0])
        for name, child in zip(names, children)
    }


def standard_controllers(
    seed: int = 0,
    offline: Optional[Mapping[str, Union[str, Path]]] = None,
) -> Dict[str, ControllerFactory]:
    """The evaluation's controller lineup, as picklable factories over a config.

    Seeded controllers (``od-rl``, ``centralized-rl``) receive distinct
    seeds derived from ``seed`` via :func:`derive_controller_seeds`; the
    deterministic baselines take none.  Every factory is a
    ``functools.partial`` over a module-level builder, so the lineup can be
    shipped to spawned worker processes and fingerprinted by the result
    cache.

    ``offline`` appends offline-pretrained members: a mapping from lineup
    name (``"od-rl-warm"`` or ``"linear-q"``) to a policy ``.npz`` path
    written by :mod:`repro.offline.warmstart`.  The file's content digest
    is baked into the factory, so cached results are keyed to the exact
    policy.  Appending never changes the base lineup's derived seeds
    (seed children are keyed by position, and the offline names come
    last).  Warm/linear controllers fall back to ``PerRunPolicy`` in the
    batched harness — bit-identical by construction.
    """
    seeded = [name for name, (_, takes_seed) in _LINEUP.items() if takes_seed]
    offline_names = sorted(offline) if offline else []
    for name in offline_names:
        if name not in _OFFLINE_BUILDERS:
            raise ValueError(
                f"unknown offline controller {name!r}; available: "
                f"{', '.join(sorted(_OFFLINE_BUILDERS))}"
            )
        if name in _LINEUP:
            raise ValueError(f"offline name {name!r} collides with the base lineup")
    seeds = derive_controller_seeds(seed, seeded + ["od-rl-warm"])
    lineup: Dict[str, ControllerFactory] = {}
    for name, (cls_path, takes_seed) in _LINEUP.items():
        if takes_seed:
            lineup[name] = partial(_construct_controller, cls_path, seed=seeds[name])
        else:
            lineup[name] = partial(_construct_controller, cls_path)
    if offline:
        from repro.offline.warmstart import policy_file_digest

        for name in offline_names:
            path = str(offline[name])
            digest = policy_file_digest(path)
            if name == "od-rl-warm":
                lineup[name] = partial(
                    _construct_warm_controller, path, digest,
                    seed=seeds["od-rl-warm"],
                )
            else:
                lineup[name] = partial(_construct_linear_controller, path, digest)
    return lineup


def _factory_seed(factory: ControllerFactory) -> int:
    """The seed a factory will hand its controller, when recoverable (else 0)."""
    keywords = getattr(factory, "keywords", None)
    if keywords:
        seed = keywords.get("seed")
        if isinstance(seed, (int, np.integer)):
            return int(seed)
    return 0


def build_suite_tasks(
    cfg: SystemConfig,
    workloads: Mapping[str, Workload],
    controllers: Mapping[str, ControllerFactory],
    n_epochs: int,
    sim_kwargs: Optional[Mapping[str, Any]] = None,
    trace: bool = False,
    profile: bool = False,
) -> Tuple[List["RunCell"], List["CellTask"]]:
    """The controller × workload grid as engine tasks, in grid order.

    This is the *single* decomposition both :func:`run_suite` and the
    experiment service (:mod:`repro.service`) build their cells from —
    sharing it is what guarantees a service-submitted suite addresses the
    same cache keys and produces bit-identical results to a library call,
    by construction rather than by parallel maintenance of two builders.
    """
    from repro.parallel.cells import RunCell
    from repro.parallel.engine import CellTask

    extra = dict(sim_kwargs or {})
    cells: List[RunCell] = []
    tasks: List[CellTask] = []
    for ctrl_name, factory in controllers.items():
        for wl_name, workload in workloads.items():
            cell = RunCell(
                controller=ctrl_name,
                workload=wl_name,
                budget=None,
                seed=_factory_seed(factory),
                n_epochs=n_epochs,
            )
            cells.append(cell)
            tasks.append(
                CellTask(
                    cell, cfg, workload, factory, extra,
                    trace=trace, profile=profile,
                )
            )
    return cells, tasks


def build_sweep_tasks(
    base_cfg: SystemConfig,
    budgets: Sequence[float],
    workload: Workload,
    controllers: Mapping[str, ControllerFactory],
    n_epochs: int,
    sim_kwargs: Optional[Mapping[str, Any]] = None,
    trace: bool = False,
    profile: bool = False,
) -> Tuple[List["RunCell"], List["CellTask"]]:
    """The controller × budget grid as engine tasks, in grid order (the
    sweep-shaped counterpart of :func:`build_suite_tasks`)."""
    from repro.parallel.cells import RunCell
    from repro.parallel.engine import CellTask

    extra = dict(sim_kwargs or {})
    cells: List[RunCell] = []
    tasks: List[CellTask] = []
    for ctrl_name, factory in controllers.items():
        for budget in budgets:
            cfg = base_cfg.with_budget(budget)
            cell = RunCell(
                controller=ctrl_name,
                workload=workload.name,
                budget=float(budget),
                seed=_factory_seed(factory),
                n_epochs=n_epochs,
            )
            cells.append(cell)
            tasks.append(
                CellTask(
                    cell, cfg, workload, factory, extra,
                    trace=trace, profile=profile,
                )
            )
    return cells, tasks


def _flush_recorder(recorder: Optional[Recorder]) -> None:
    """Best-effort flush so a grid that raises mid-run cannot tear off
    the recorder's buffered tail (``getattr`` tolerates legacy recorders
    that predate ``flush``)."""
    flush = getattr(recorder, "flush", None)
    if callable(flush):
        flush()


def run_suite(
    cfg: SystemConfig,
    workloads: Mapping[str, Workload],
    controllers: Mapping[str, ControllerFactory],
    n_epochs: int,
    jobs: int = 1,
    cache: Union[str, Path, Any, None] = None,
    sim_kwargs: Optional[Mapping[str, Any]] = None,
    recorder: Optional[Recorder] = None,
    profile: bool = False,
    batch: Union[bool, int] = False,
    retry_policy: Optional[Any] = None,
    timeout: Optional[float] = None,
    chaos: Optional[Any] = None,
    journal: Union[str, Path, Any, None] = None,
) -> Dict[str, Dict[str, SimulationResult]]:
    """Run every controller on every workload.

    Parameters
    ----------
    jobs:
        Worker process count.  The default ``1`` runs the historical
        serial loop in-process; ``jobs > 1`` shards the controller ×
        workload grid across spawned workers (factories must then be
        picklable — the standard lineup is).
    cache:
        Optional result cache: a directory path or a
        :class:`repro.parallel.ResultCache`.  Cells whose content-addressed
        key is already cached are loaded instead of re-simulated.
    sim_kwargs:
        Extra keyword arguments forwarded verbatim to
        :func:`~repro.sim.simulator.run_controller` for every cell
        (``record_per_core``, ``faults``, ``watchdog`` …).  Values must be
        picklable and stateless for ``jobs > 1`` (pass a
        :class:`~repro.faults.campaign.FaultCampaign`, not a live
        injector).
    recorder, profile:
        Observability switches (see :mod:`repro.obs`), threaded as
        explicit parameters — never through ``sim_kwargs`` — so they stay
        out of cache keys and worker pickles.  With ``jobs > 1`` the
        recorder stays in the parent; workers buffer their events and the
        engine replays them in task order.
    batch:
        Stack compatible cells into tensor batches (:mod:`repro.batch`)
        and advance each stack with one NumPy epoch step — the third
        backend beside the serial loop and ``jobs=``.  ``True`` batches
        each compatible group whole; an integer caps the stack size.
        Results are bit-identical to the serial loop; mixed budgets,
        seeds, epoch counts, fault campaigns, variation/hetero maps, and
        watchdog supervision all stack.  Incompatible cells (tracing or
        profiling enabled, non-default ``sensors``/``memory_system``)
        fall back per cell with a recorded reason.  Composes with ``cache=``
        (batching never changes a cell's cache key) and with ``jobs=``
        for the fallback cells.
    retry_policy, timeout, chaos, journal:
        Resilience switches, forwarded verbatim to
        :func:`~repro.parallel.engine.execute_cells` — a
        :class:`~repro.parallel.RetryPolicy`, a per-cell soft deadline in
        seconds, a :class:`~repro.parallel.ChaosPolicy` for fault-drill
        runs, and a campaign journal path (or
        :class:`~repro.parallel.CampaignJournal`) enabling
        checkpoint/resume.  Any of them being set routes even ``jobs=1``
        grids through the resilient engine (results stay bit-identical;
        see ``docs/parallel.md``).

    Returns
    -------
    dict
        ``results[controller_name][workload_name] -> SimulationResult``.
    """
    if n_epochs <= 0:
        raise ValueError(f"n_epochs must be positive, got {n_epochs}")
    extra = dict(sim_kwargs or {})
    resilient = (
        retry_policy is not None or timeout is not None
        or chaos is not None or journal is not None
    )
    if (jobs == 1 and cache is None and recorder is None and not profile
            and not batch and not resilient):
        results: Dict[str, Dict[str, SimulationResult]] = {}
        for ctrl_name, factory in controllers.items():
            results[ctrl_name] = {}
            for wl_name, workload in workloads.items():
                controller = factory(cfg)
                results[ctrl_name][wl_name] = run_controller(
                    cfg, workload, controller, n_epochs, **extra
                )
        return results

    from repro.parallel.cells import merge_suite
    from repro.parallel.engine import execute_cells

    trace = recorder is not None and recorder.enabled
    cells, tasks = build_suite_tasks(
        cfg, workloads, controllers, n_epochs,
        sim_kwargs=extra, trace=trace, profile=profile,
    )
    try:
        flat = execute_cells(
            tasks, jobs=jobs, cache=cache, recorder=recorder, batch=batch,
            retry_policy=retry_policy, timeout=timeout, chaos=chaos,
            journal=journal,
        )
        return merge_suite(cells, flat)
    finally:
        _flush_recorder(recorder)


def run_budget_sweep(
    base_cfg: SystemConfig,
    budgets: Sequence[float],
    workload: Workload,
    controllers: Mapping[str, ControllerFactory],
    n_epochs: int,
    jobs: int = 1,
    cache: Union[str, Path, Any, None] = None,
    sim_kwargs: Optional[Mapping[str, Any]] = None,
    recorder: Optional[Recorder] = None,
    profile: bool = False,
    batch: Union[bool, int] = False,
    retry_policy: Optional[Any] = None,
    timeout: Optional[float] = None,
    chaos: Optional[Any] = None,
    journal: Union[str, Path, Any, None] = None,
) -> Dict[str, Dict[float, SimulationResult]]:
    """Run every controller at each absolute budget (watts) on one workload.

    ``jobs``, ``cache``, ``sim_kwargs``, ``recorder``, ``profile``,
    ``batch`` and the resilience switches (``retry_policy``, ``timeout``,
    ``chaos``, ``journal``) behave as in :func:`run_suite` — a budget
    sweep is the batched backend's best case, since one controller's
    cells at different budgets stack into a single tensor simulation.

    Returns
    -------
    dict
        ``results[controller_name][budget] -> SimulationResult``.
    """
    if not budgets:
        raise ValueError("budgets must be non-empty")
    if n_epochs <= 0:
        raise ValueError(f"n_epochs must be positive, got {n_epochs}")
    extra = dict(sim_kwargs or {})
    resilient = (
        retry_policy is not None or timeout is not None
        or chaos is not None or journal is not None
    )
    if (jobs == 1 and cache is None and recorder is None and not profile
            and not batch and not resilient):
        results: Dict[str, Dict[float, SimulationResult]] = {}
        for ctrl_name, factory in controllers.items():
            results[ctrl_name] = {}
            for budget in budgets:
                cfg = base_cfg.with_budget(budget)
                controller = factory(cfg)
                results[ctrl_name][budget] = run_controller(
                    cfg, workload, controller, n_epochs, **extra
                )
        return results

    from repro.parallel.cells import merge_sweep
    from repro.parallel.engine import execute_cells

    trace = recorder is not None and recorder.enabled
    cells, tasks = build_sweep_tasks(
        base_cfg, budgets, workload, controllers, n_epochs,
        sim_kwargs=extra, trace=trace, profile=profile,
    )
    try:
        flat = execute_cells(
            tasks, jobs=jobs, cache=cache, recorder=recorder, batch=batch,
            retry_policy=retry_policy, timeout=timeout, chaos=chaos,
            journal=journal,
        )
        merged = merge_sweep(cells, flat)
    finally:
        _flush_recorder(recorder)
    # Budget keys must be the caller's original float objects/ordering.
    return {
        ctrl: {b: merged[ctrl][float(b)] for b in budgets} for ctrl in controllers
    }
