"""Experiment runner: controller factories and sweep helpers.

The evaluation compares the same controller set across many workloads,
budgets, and core counts.  This module centralizes the controller lineup
(so every experiment uses identical configurations) and the nested-loop
bookkeeping.
"""

from __future__ import annotations

from typing import Callable, Dict, Mapping, Sequence

from repro.manycore.config import SystemConfig
from repro.sim.interface import Controller
from repro.sim.results import SimulationResult
from repro.sim.simulator import run_controller
from repro.workloads.phases import Workload

__all__ = ["ControllerFactory", "standard_controllers", "run_suite", "run_budget_sweep"]

ControllerFactory = Callable[[SystemConfig], Controller]


def standard_controllers(seed: int = 0) -> Dict[str, ControllerFactory]:
    """The evaluation's controller lineup, as factories over a config.

    Order matters for table output: the contribution first, then the
    reactive/optimizing baselines, then the static anchors.
    """
    # Imported here: repro.core and repro.baselines themselves import the
    # Controller interface from this package, so a module-level import
    # would be circular.
    from repro.baselines import (
        CentralizedRLController,
        GreedyAscentController,
        MaxBIPSController,
        MaxSwapController,
        PIDCappingController,
        SteepestDropController,
        StaticUniformController,
        UncappedController,
    )
    from repro.core import ODRLController

    return {
        "od-rl": lambda cfg: ODRLController(cfg, seed=seed),
        "pid": lambda cfg: PIDCappingController(cfg),
        "greedy-ascent": lambda cfg: GreedyAscentController(cfg),
        "steepest-drop": lambda cfg: SteepestDropController(cfg),
        "max-swap": lambda cfg: MaxSwapController(cfg),
        "maxbips": lambda cfg: MaxBIPSController(cfg),
        "centralized-rl": lambda cfg: CentralizedRLController(cfg, seed=seed),
        "static-uniform": lambda cfg: StaticUniformController(cfg),
        "uncapped": lambda cfg: UncappedController(cfg),
    }


def run_suite(
    cfg: SystemConfig,
    workloads: Mapping[str, Workload],
    controllers: Mapping[str, ControllerFactory],
    n_epochs: int,
) -> Dict[str, Dict[str, SimulationResult]]:
    """Run every controller on every workload.

    Returns
    -------
    dict
        ``results[controller_name][workload_name] -> SimulationResult``.
    """
    if n_epochs <= 0:
        raise ValueError(f"n_epochs must be positive, got {n_epochs}")
    results: Dict[str, Dict[str, SimulationResult]] = {}
    for ctrl_name, factory in controllers.items():
        results[ctrl_name] = {}
        for wl_name, workload in workloads.items():
            controller = factory(cfg)
            results[ctrl_name][wl_name] = run_controller(
                cfg, workload, controller, n_epochs
            )
    return results


def run_budget_sweep(
    base_cfg: SystemConfig,
    budgets: Sequence[float],
    workload: Workload,
    controllers: Mapping[str, ControllerFactory],
    n_epochs: int,
) -> Dict[str, Dict[float, SimulationResult]]:
    """Run every controller at each absolute budget (watts) on one workload.

    Returns
    -------
    dict
        ``results[controller_name][budget] -> SimulationResult``.
    """
    if not budgets:
        raise ValueError("budgets must be non-empty")
    results: Dict[str, Dict[float, SimulationResult]] = {}
    for ctrl_name, factory in controllers.items():
        results[ctrl_name] = {}
        for budget in budgets:
            cfg = base_cfg.with_budget(budget)
            controller = factory(cfg)
            results[ctrl_name][budget] = run_controller(
                cfg, workload, controller, n_epochs
            )
    return results
