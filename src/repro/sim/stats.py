"""Multi-seed statistical runs.

A single seeded run answers "what happened"; a claim needs "what happens
on average, and how much does it move".  :func:`run_seeds` repeats a
controller/workload configuration across seeds — re-sampling both the
workload trace and the learner's exploration — and aggregates any set of
scalar metrics into mean / standard deviation / confidence intervals.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Mapping, Sequence, Tuple

import numpy as np
from scipy import stats as scipy_stats

from repro.manycore.config import SystemConfig
from repro.sim.interface import Controller
from repro.sim.results import SimulationResult
from repro.sim.simulator import run_controller
from repro.workloads.phases import Workload

__all__ = ["MetricStatistics", "run_seeds"]

MetricFn = Callable[[SimulationResult], float]
WorkloadFactory = Callable[[int], Workload]
ControllerFactory = Callable[[SystemConfig, int], Controller]


@dataclass(frozen=True)
class MetricStatistics:
    """Aggregate of one metric across seeds.

    Attributes
    ----------
    values:
        Per-seed metric values, in seed order.
    """

    values: Tuple[float, ...]

    def __post_init__(self) -> None:
        if not self.values:
            raise ValueError("MetricStatistics needs at least one value")

    @property
    def n(self) -> int:
        return len(self.values)

    @property
    def mean(self) -> float:
        return float(np.mean(self.values))

    @property
    def std(self) -> float:
        """Sample standard deviation (ddof=1); 0 for a single seed."""
        if self.n < 2:
            return 0.0
        return float(np.std(self.values, ddof=1))

    def confidence_interval(self, level: float = 0.95) -> Tuple[float, float]:
        """Student-t confidence interval for the mean.

        Degenerates to ``(mean, mean)`` for a single seed or zero spread.
        """
        if not (0 < level < 1):
            raise ValueError(f"level must be in (0, 1), got {level}")
        if self.n < 2 or self.std <= 0.0:
            return (self.mean, self.mean)
        half_width = scipy_stats.t.ppf(0.5 + level / 2, self.n - 1) * self.std / np.sqrt(self.n)
        return (self.mean - half_width, self.mean + half_width)


def run_seeds(
    cfg: SystemConfig,
    workload_factory: WorkloadFactory,
    controller_factory: ControllerFactory,
    n_epochs: int,
    seeds: Sequence[int],
    metrics: Mapping[str, MetricFn],
    steady_fraction: float = 0.5,
) -> Dict[str, MetricStatistics]:
    """Run one configuration across ``seeds`` and aggregate metrics.

    Parameters
    ----------
    cfg:
        System configuration, shared across seeds.
    workload_factory:
        ``seed -> Workload``; called once per seed.
    controller_factory:
        ``(cfg, seed) -> Controller``; called once per seed.
    n_epochs:
        Epochs per run.
    seeds:
        Seeds to sweep; must be non-empty.
    metrics:
        Named metric functions evaluated on the steady-state tail of each
        run.
    steady_fraction:
        Trailing fraction of each run the metrics see (1.0 = whole run).

    Returns
    -------
    dict
        ``metric name -> MetricStatistics``.
    """
    if not seeds:
        raise ValueError("seeds must be non-empty")
    if not metrics:
        raise ValueError("metrics must be non-empty")
    per_metric: Dict[str, list] = {name: [] for name in metrics}
    for seed in seeds:
        workload = workload_factory(seed)
        controller = controller_factory(cfg, seed)
        result = run_controller(cfg, workload, controller, n_epochs)
        steady = result.tail(steady_fraction)
        for name, fn in metrics.items():
            per_metric[name].append(float(fn(steady)))
    return {
        name: MetricStatistics(tuple(values))
        for name, values in per_metric.items()
    }
