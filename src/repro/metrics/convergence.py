"""Convergence detection for on-line learning curves.

"How long until the controller is at steady state?" is itself an
evaluation number (E6 reports it): an on-line scheme whose warm-up lasts
longer than a workload's phases never actually converges in production.

The detector is deliberately simple and deterministic: window-average the
series, take the final window as the steady value, and report the first
window from which *every* subsequent window stays inside a relative
tolerance band around it.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

__all__ = ["window_means", "epochs_to_converge"]


def window_means(series: np.ndarray, window: int) -> np.ndarray:
    """Non-overlapping window averages; the tail remainder is dropped."""
    series = np.asarray(series, dtype=float)
    if series.ndim != 1 or series.size == 0:
        raise ValueError("series must be a non-empty 1-D array")
    if window <= 0:
        raise ValueError(f"window must be positive, got {window}")
    n = series.size // window
    if n == 0:
        raise ValueError(
            f"series of length {series.size} shorter than one window ({window})"
        )
    return series[: n * window].reshape(n, window).mean(axis=1)


def epochs_to_converge(
    series: np.ndarray,
    window: int = 100,
    tolerance: float = 0.05,
) -> Optional[int]:
    """First epoch index from which the windowed series stays within
    ``tolerance`` (relative) of its final windowed value.

    Returns
    -------
    int or None
        Epoch count (a multiple of ``window``), or ``None`` if even the
        last window is outside the band of the final value (i.e. the
        series never settles).

    Notes
    -----
    The band is relative to the final window's magnitude; for final values
    near zero an absolute fallback of ``tolerance`` is used so the
    definition stays total.
    """
    if tolerance <= 0:
        raise ValueError(f"tolerance must be positive, got {tolerance}")
    means = window_means(series, window)
    final = means[-1]
    scale = max(abs(final), tolerance)
    inside = np.abs(means - final) <= tolerance * scale
    # Find the earliest window w such that inside[w:] is all True.
    if not inside[-1]:  # pragma: no cover - inside[-1] is True by construction
        return None
    first = len(means) - 1
    while first > 0 and inside[first - 1]:
        first -= 1
    return first * window
