"""Evaluation metrics over simulation results."""

from repro.metrics.convergence import epochs_to_converge, window_means
from repro.metrics.fairness import (
    jain_index,
    per_core_throughput,
    slowdowns,
    worst_slowdown,
)
from repro.metrics.perf_metrics import (
    decision_time_percentile,
    energy_efficiency,
    mean_decision_time,
    throughput_bips,
    throughput_per_over_budget_energy,
)
from repro.metrics.power_metrics import (
    budget_utilization,
    over_budget_energy,
    over_budget_power,
    overshoot_fraction,
    peak_overshoot,
)
from repro.metrics.report import format_series, format_table, normalize_rows

__all__ = [
    "epochs_to_converge",
    "window_means",
    "jain_index",
    "per_core_throughput",
    "slowdowns",
    "worst_slowdown",
    "decision_time_percentile",
    "energy_efficiency",
    "mean_decision_time",
    "throughput_bips",
    "throughput_per_over_budget_energy",
    "budget_utilization",
    "over_budget_energy",
    "over_budget_power",
    "overshoot_fraction",
    "peak_overshoot",
    "format_series",
    "format_table",
    "normalize_rows",
]
