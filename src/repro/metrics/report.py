"""Plain-text table/series rendering for experiment output.

The benchmark harness prints the same rows/series the paper's tables and
figures report; these helpers keep that formatting in one place and free of
any plotting dependency.
"""

from __future__ import annotations

from typing import Dict, Mapping, Sequence

__all__ = ["format_table", "format_series", "normalize_rows"]


def format_table(
    rows: Mapping[str, Mapping[str, float]],
    columns: Sequence[str],
    title: str = "",
    fmt: str = "{:.3g}",
    row_header: str = "",
) -> str:
    """Render a nested mapping ``rows[row][column] -> value`` as text.

    Parameters
    ----------
    rows:
        Outer keys are row labels (e.g. controller names), inner mappings
        hold the column values.  Missing cells render as ``-``.
    columns:
        Column order.
    title:
        Optional heading printed above the table.
    fmt:
        ``str.format`` spec applied to each numeric cell.
    row_header:
        Label of the row-name column.
    """
    if not columns:
        raise ValueError("columns must be non-empty")
    header = [row_header] + list(columns)
    body = []
    for row_name, cells in rows.items():
        line = [str(row_name)]
        for col in columns:
            value = cells.get(col)
            line.append("-" if value is None else fmt.format(value))
        body.append(line)
    widths = [
        max(len(str(r[i])) for r in [header] + body) for i in range(len(header))
    ]
    def render(parts: Sequence[str]) -> str:
        return "  ".join(str(p).rjust(w) for p, w in zip(parts, widths))

    lines = []
    if title:
        lines.append(title)
    lines.append(render(header))
    lines.append(render(["-" * w for w in widths]))
    lines.extend(render(b) for b in body)
    return "\n".join(lines)


def format_series(
    x: Sequence[float],
    series: Mapping[str, Sequence[float]],
    x_label: str = "x",
    title: str = "",
    fmt: str = "{:.4g}",
) -> str:
    """Render aligned columns of one x-axis plus named y-series — the text
    equivalent of a line plot."""
    if not series:
        raise ValueError("series must be non-empty")
    for name, ys in series.items():
        if len(ys) != len(x):
            raise ValueError(
                f"series {name!r} has {len(ys)} points but x has {len(x)}"
            )
    rows: Dict[str, Dict[str, float]] = {}
    for i, xv in enumerate(x):
        rows[fmt.format(xv)] = {name: series[name][i] for name in series}
    return format_table(rows, list(series), title=title, fmt=fmt, row_header=x_label)


def normalize_rows(
    rows: Mapping[str, Mapping[str, float]], reference_row: str
) -> Dict[str, Dict[str, float]]:
    """Divide every row elementwise by ``reference_row`` (speedup/ratio
    tables).  Reference cells that are zero yield ``float('inf')`` for
    positive values, matching "x times better than a zero baseline"."""
    if reference_row not in rows:
        raise KeyError(f"reference row {reference_row!r} not in table")
    ref = rows[reference_row]
    out: Dict[str, Dict[str, float]] = {}
    for name, cells in rows.items():
        out[name] = {}
        for col, value in cells.items():
            denominator = ref.get(col)
            if denominator is None:
                continue
            if denominator == 0:
                out[name][col] = float("inf") if value > 0 else 1.0
            else:
                out[name][col] = value / denominator
    return out
