"""Per-core fairness metrics.

A budget allocator that chases chip throughput can starve individual
cores — the global reallocation deliberately under-feeds memory-bound
cores.  Whether that is acceptable depends on the deployment (throughput
farm vs. latency-SLA tenants), so the evaluation reports it rather than
hiding it:

* **Jain's fairness index** over per-core throughput: 1.0 when all cores
  retire equally, 1/n when one core gets everything.
* **slowdown distribution** versus a reference run (e.g. uncapped): how
  much each core individually lost to power management.

Both operate on per-core series, so the simulation must be run with
``record_per_core=True``... except throughput fairness, which only needs
per-core instruction totals and is also derivable from a per-core trace.
"""

from __future__ import annotations

import numpy as np

__all__ = ["jain_index", "per_core_throughput", "slowdowns", "worst_slowdown"]


def jain_index(values: np.ndarray) -> float:
    """Jain's fairness index: ``(sum x)^2 / (n * sum x^2)``.

    Bounded in ``[1/n, 1]``; scale-invariant.  All-zero input is defined
    as perfectly fair (1.0) — nobody gets anything, equally.
    """
    values = np.asarray(values, dtype=float)
    if values.ndim != 1 or values.size == 0:
        raise ValueError("jain_index expects a non-empty 1-D array")
    if np.any(values < 0):
        raise ValueError("jain_index expects non-negative values")
    total_sq = float(np.sum(values)) ** 2
    denom = values.size * float(np.sum(values**2))
    if denom == 0:
        return 1.0
    return total_sq / denom


def per_core_throughput(core_instructions: np.ndarray, duration: float) -> np.ndarray:
    """Per-core mean instructions/second from an ``(epochs, cores)`` series.

    ``duration`` is the simulated time the series spans, in seconds.
    """
    core_instructions = np.asarray(core_instructions, dtype=float)
    if core_instructions.ndim != 2:
        raise ValueError("expected an (epochs, cores) instruction series")
    if duration <= 0:
        raise ValueError(f"duration must be positive, got {duration}")
    return core_instructions.sum(axis=0) / duration


def slowdowns(managed: np.ndarray, reference: np.ndarray) -> np.ndarray:
    """Per-core slowdown of a managed run versus a reference run.

    ``slowdown[i] = reference_throughput[i] / managed_throughput[i]``;
    1.0 = unaffected, 2.0 = core runs at half its reference speed.
    """
    managed = np.asarray(managed, dtype=float)
    reference = np.asarray(reference, dtype=float)
    if managed.shape != reference.shape:
        raise ValueError("managed and reference shapes must match")
    if np.any(managed <= 0):
        raise ValueError("managed throughput must be positive for slowdowns")
    return reference / managed


def worst_slowdown(managed: np.ndarray, reference: np.ndarray) -> float:
    """The most-starved core's slowdown — the number an SLA cares about."""
    return float(np.max(slowdowns(managed, reference)))
