"""Performance and efficiency metrics (the paper's claim C2 family)."""

from __future__ import annotations

import numpy as np

from repro.metrics.power_metrics import over_budget_energy
from repro.sim.results import SimulationResult

__all__ = [
    "throughput_bips",
    "energy_efficiency",
    "throughput_per_over_budget_energy",
    "mean_decision_time",
    "decision_time_percentile",
]

#: joules below which over-budget energy is treated as "fully compliant";
#: keeps the throughput-per-OBE ratio finite for controllers that never
#: overshoot.  One micro-joule is far below any physically meaningful
#: violation at watt-scale budgets and millisecond epochs.
OBE_FLOOR = 1e-6


def throughput_bips(result: SimulationResult) -> float:
    """Mean chip throughput in billions of instructions per second."""
    return result.mean_throughput / 1e9


def energy_efficiency(result: SimulationResult) -> float:
    """Instructions per joule (equivalently BIPS per watt × 1e9)."""
    if result.total_energy <= 0:
        raise ValueError("run has no energy accounted; cannot compute efficiency")
    return result.total_instructions / result.total_energy


def throughput_per_over_budget_energy(
    result: SimulationResult, floor: float = OBE_FLOOR
) -> float:
    """Total instructions divided by over-budget energy (claim C2a).

    The paper's headline ratio: how much work the controller delivers per
    joule it spends *violating* the budget.  A controller that never
    violates scores ``total_instructions / floor`` — effectively a large
    sentinel that still orders controllers sensibly.
    """
    if floor <= 0:
        raise ValueError(f"floor must be positive, got {floor}")
    obe = max(over_budget_energy(result), floor)
    return result.total_instructions / obe


def mean_decision_time(result: SimulationResult) -> float:
    """Average controller wall-clock seconds per decision (claim C3)."""
    return float(np.mean(result.decision_time))


def decision_time_percentile(result: SimulationResult, q: float = 99.0) -> float:
    """Tail controller decision latency — the number that must fit inside
    a control epoch for the scheme to be deployable."""
    if not (0 < q <= 100):
        raise ValueError(f"q must be in (0, 100], got {q}")
    return float(np.percentile(result.decision_time, q))
