"""Budget-compliance metrics (the paper's claim C1 family).

All metrics take a :class:`~repro.sim.results.SimulationResult` and read the
ground-truth chip power trace against the configured budget.
"""

from __future__ import annotations

import numpy as np

from repro.sim.results import SimulationResult

__all__ = [
    "over_budget_power",
    "over_budget_energy",
    "overshoot_fraction",
    "peak_overshoot",
    "budget_utilization",
]


def over_budget_power(result: SimulationResult) -> np.ndarray:
    """Per-epoch power above the budget, watts (zero when compliant)."""
    return np.maximum(result.chip_power - result.cfg.power_budget, 0.0)


def over_budget_energy(result: SimulationResult) -> float:
    """Total energy spent above the budget over the run, joules.

    This is the integral the paper's "budget overshoot" comparisons use:
    it weighs both how often and how far the controller exceeds TDP.
    """
    return float(np.sum(over_budget_power(result))) * result.cfg.epoch_time


def overshoot_fraction(result: SimulationResult) -> float:
    """Fraction of epochs whose chip power exceeds the budget."""
    return float(np.mean(result.chip_power > result.cfg.power_budget))


def peak_overshoot(result: SimulationResult) -> float:
    """Worst single-epoch power excursion above the budget, watts."""
    return float(np.max(over_budget_power(result)))


def budget_utilization(result: SimulationResult) -> float:
    """Mean chip power as a fraction of the budget.

    Near 1.0 with zero overshoot is the ideal; well below 1.0 means
    performance is being left on the table.
    """
    return float(np.mean(result.chip_power)) / result.cfg.power_budget
