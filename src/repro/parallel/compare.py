"""Bit-level equality of simulation results.

The determinism contract of the parallel engine is that a cell computed in
a worker process (or replayed from the cache) is *bit-identical* to the
same cell computed serially — same chip trajectories, same per-core
series, same fault/watchdog counters, same configuration.

The deliberate exceptions are the wall-clock observations:
``decision_time`` (measured with ``time.perf_counter`` around ``decide``)
and the ``extras["timing"]`` breakdown written under ``profile=True``.
Both are *observations of the host machine*, not of the simulated system.
Two runs of the same cell never agree on them, so ``decision_time`` is
excluded from trace equality by default (compared only when explicitly
requested) and ``timing`` is excluded always.

``extras`` dictionaries are compared up to JSON canonicalisation (tuples
become lists when a result round-trips through the on-disk format; the
information content is identical).
"""

from __future__ import annotations

import json
from typing import Any, List, Optional

import numpy as np

from repro.sim.results import SimulationResult

__all__ = ["trace_equal", "assert_trace_equal"]

_SERIES = (
    "chip_power",
    "chip_instructions",
    "max_temperature",
    "core_power",
    "core_levels",
    "core_instructions",
)


def _json_canonical(obj: Any) -> Any:
    """``obj`` normalised through JSON (tuples→lists, numpy scalars→python)."""
    return json.loads(json.dumps(obj, sort_keys=True, default=_jsonable))


def _jsonable(obj: Any) -> Any:
    if isinstance(obj, np.integer):
        return int(obj)
    if isinstance(obj, np.floating):
        return float(obj)
    if isinstance(obj, np.ndarray):
        return obj.tolist()
    raise TypeError(f"extras value of type {type(obj).__qualname__} is not JSON-serialisable")


def _mismatches(
    a: SimulationResult, b: SimulationResult, compare_decision_time: bool
) -> List[str]:
    problems: List[str] = []
    if a.controller_name != b.controller_name:
        problems.append(
            f"controller_name: {a.controller_name!r} != {b.controller_name!r}"
        )
    if a.workload_name != b.workload_name:
        problems.append(f"workload_name: {a.workload_name!r} != {b.workload_name!r}")
    if a.cfg != b.cfg:
        problems.append("cfg: configurations differ")
    for name in _SERIES:
        left: Optional[np.ndarray] = getattr(a, name)
        right: Optional[np.ndarray] = getattr(b, name)
        if (left is None) != (right is None):
            problems.append(f"{name}: present on one side only")
        elif left is not None and right is not None and not np.array_equal(
            left, right
        ):
            diverges = int(np.argmax(np.any(np.atleast_2d(left != right), axis=-1)))
            problems.append(f"{name}: arrays differ (first divergence near epoch {diverges})")
    if compare_decision_time and not np.array_equal(a.decision_time, b.decision_time):
        problems.append("decision_time: arrays differ")
    if not compare_decision_time and a.decision_time.shape != b.decision_time.shape:
        problems.append(
            f"decision_time: lengths differ "
            f"({a.decision_time.shape[0]} != {b.decision_time.shape[0]})"
        )
    if _json_canonical(_deterministic_extras(a)) != _json_canonical(
        _deterministic_extras(b)
    ):
        problems.append("extras: dictionaries differ")
    return problems


def _deterministic_extras(result: SimulationResult) -> Any:
    """``extras`` minus wall-clock-only keys.

    ``timing`` (the :class:`repro.obs.TimingBreakdown` written under
    ``profile=True``) is host-machine measurement, exactly like
    ``decision_time``: two runs of the same cell never agree on it, so a
    profiled run must still compare trace-equal to an unprofiled one.
    """
    return {k: v for k, v in result.extras.items() if k != "timing"}


def trace_equal(
    a: SimulationResult,
    b: SimulationResult,
    compare_decision_time: bool = False,
) -> bool:
    """Are two results bit-identical on every deterministic field?

    Compares configuration, names, every chip-level and per-core series
    (exact — no tolerance), and ``extras`` up to JSON canonicalisation.
    ``decision_time`` is wall-clock and only compared when
    ``compare_decision_time`` is set (lengths are always checked).
    """
    return not _mismatches(a, b, compare_decision_time)


def assert_trace_equal(
    a: SimulationResult,
    b: SimulationResult,
    compare_decision_time: bool = False,
    context: str = "",
) -> None:
    """Raise ``AssertionError`` naming every differing field.

    ``compare_decision_time`` is a flag, not a duration: set it to also
    require bit-equal wall-clock ``decision_time`` arrays (only sensible
    when both sides store synthetic values, e.g. zeroed golden fixtures).
    The error message lists each mismatching series with the epoch where
    it first diverges — what a failed determinism or golden-trace test
    needs to be actionable, prefixed with ``context`` when given.
    """
    problems = _mismatches(a, b, compare_decision_time)
    if problems:
        where = f" [{context}]" if context else ""
        raise AssertionError(
            "simulation results differ" + where + ":\n  " + "\n  ".join(problems)
        )
