"""Process-pool execution of run cells.

The engine takes an ordered list of :class:`CellTask`s (a
:class:`~repro.parallel.cells.RunCell` plus everything needed to run it),
executes them across ``jobs`` worker processes, and returns results in
task order.  Three properties drive the design:

**Determinism.**  Workers are started with the ``spawn`` method, so a
worker inherits no forked interpreter state — in particular no RNG state
— from the parent.  Every cell rebuilds its controller inside the worker
from the factory's explicit seed, making a parallel cell's trajectory
bit-identical to the same cell run serially (see
:mod:`repro.parallel.compare` for the one wall-clock exception).

**Crash containment.**  A worker that dies mid-cell (OOM kill, segfault,
``os._exit``) breaks the whole :class:`~concurrent.futures.ProcessPoolExecutor`;
the engine rebuilds the pool and resubmits the unfinished cells.  Each
unsuccessful attempt — a raised exception or being in flight/queued when
the pool broke — counts against a cell's attempt budget
(``retries + 1`` attempts total, default one retry).  A cell that exhausts
its budget is recorded as a structured :class:`CellFailure`; after all
cells settle, any failures are raised together as
:class:`ParallelExecutionError` so one bad cell reports every casualty,
not just the first.  Ordinary exceptions inside a cell are caught in the
worker and shipped back as values, so only hard crashes ever break a pool.

**Caching.**  With a :class:`~repro.parallel.cache.ResultCache`, each
cell's :func:`~repro.parallel.cache.cell_key` is probed before any work is
scheduled and computed results are persisted by the parent (workers never
touch the cache, so there are no write races between processes).

``jobs=1`` executes inline — no pool, no pickling, exceptions propagate
raw — which is what keeps the serial entry points byte-for-byte identical
to their historical behaviour.
"""

from __future__ import annotations

import traceback
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field
from multiprocessing import get_context
from pathlib import Path
from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple, Union

from repro.manycore.config import SystemConfig
from repro.obs import NULL_RECORDER, BufferRecorder, CounterRegistry, Recorder
from repro.parallel.cache import ResultCache, cell_key
from repro.parallel.cells import RunCell
from repro.sim.results import SimulationResult
from repro.workloads.phases import Workload

__all__ = [
    "CellTask",
    "CellFailure",
    "ParallelExecutionError",
    "execute_cells",
]

CacheLike = Union[ResultCache, str, Path, None]


@dataclass(frozen=True)
class CellTask:
    """A run cell bundled with everything a worker needs to execute it.

    ``cfg`` must already carry the cell's effective power budget (the
    planners apply :attr:`RunCell.budget` overrides before building
    tasks).  For ``jobs > 1`` the whole task is pickled to the worker, so
    ``factory`` must be picklable — the ``functools.partial`` factories
    from :func:`repro.sim.runner.standard_controllers` are; lambdas are
    not.
    """

    cell: RunCell
    cfg: SystemConfig
    workload: Workload
    factory: Any
    sim_kwargs: Mapping[str, Any] = field(default_factory=dict)
    #: Observability switches.  Deliberately *outside* ``sim_kwargs`` so
    #: they never enter :func:`~repro.parallel.cache.cell_key` — tracing
    #: or profiling a run must not change its cache identity (the
    #: trajectory is bit-identical either way).  With ``trace``, the
    #: worker collects the run's events in a
    #: :class:`~repro.obs.BufferRecorder` and ships them back with the
    #: result for task-ordered replay in the parent.
    trace: bool = False
    profile: bool = False


@dataclass(frozen=True)
class CellFailure:
    """Structured record of a cell that exhausted its attempt budget.

    Attributes
    ----------
    cell:
        The failed cell.
    attempts:
        Unsuccessful attempts consumed (includes pool-crash casualties).
    error_type:
        Qualified exception type name, or ``"WorkerCrash"`` when the
        worker process died without raising.
    message:
        The exception message (or crash description).
    traceback_text:
        Formatted worker-side traceback when one exists, else ``""``.
    """

    cell: RunCell
    attempts: int
    error_type: str
    message: str
    traceback_text: str = ""

    def __str__(self) -> str:
        return (
            f"{self.cell.label()}: {self.error_type}: {self.message} "
            f"(after {self.attempts} attempts)"
        )


class ParallelExecutionError(RuntimeError):
    """One or more cells failed after retries; carries every failure."""

    def __init__(self, failures: Sequence[CellFailure]) -> None:
        self.failures: Tuple[CellFailure, ...] = tuple(failures)
        lines = "\n  ".join(str(f) for f in self.failures)
        super().__init__(
            f"{len(self.failures)} cell(s) failed after retries:\n  {lines}"
        )


def _run_cell(
    task: CellTask, recorder: Optional[Recorder] = None
) -> SimulationResult:
    """Execute one cell (worker-side): build the controller, run the loop."""
    # Imported here, not at module level: the simulator pulls in the full
    # plant stack, and worker processes import this module on spawn.
    from repro.sim.simulator import run_controller

    controller = task.factory(task.cfg)
    return run_controller(
        task.cfg,
        task.workload,
        controller,
        task.cell.n_epochs,
        recorder=recorder,
        profile=task.profile,
        **dict(task.sim_kwargs),
    )


def _run_cell_guarded(task: CellTask) -> Tuple[str, Any]:
    """Worker entry: exceptions come back as values, never as raised errors.

    Returning ``("error", ...)`` instead of raising keeps ordinary cell
    failures (bad config, contract violation) out of the pool's exception
    machinery, so only hard process death ever breaks the pool.  The
    ``"ok"`` payload is ``(result, events)`` — the run's buffered trace
    events when ``task.trace`` is set, else ``None``.
    """
    try:
        buffer = BufferRecorder() if task.trace else None
        result = _run_cell(task, recorder=buffer)
        return "ok", (result, buffer.events if buffer is not None else None)
    except BaseException as exc:  # shipped to the parent as a structured value
        return "error", (
            type(exc).__qualname__,
            str(exc),
            traceback.format_exc(),
        )


def _coerce_cache(cache: CacheLike) -> Optional[ResultCache]:
    if cache is None or isinstance(cache, ResultCache):
        return cache
    return ResultCache(cache)


def _run_batched(
    tasks: Sequence[CellTask],
    pending: List[int],
    keys: List[Optional[str]],
    results: List[Optional[SimulationResult]],
    store: Optional[ResultCache],
    rec: Recorder,
    metrics: CounterRegistry,
    batch: Union[bool, int],
) -> List[int]:
    """Run the batch-compatible subset of ``pending`` through the stacked
    backend; return the still-unsettled indices (fallbacks, batch errors)
    in task order for the serial/pool path.

    A group that raises is not fatal: every member is re-queued with the
    ``"batch-error"`` fallback reason and recomputed by the serial path,
    so a batching defect can cost time but never a result.
    """
    # Imported here, not at module level: repro.batch pulls in the full
    # plant + controller stack, which the engine otherwise avoids loading
    # (worker processes import this module on spawn).
    from repro.batch import batch_unsupported_reason, plan_batches, simulate_batch

    batchable: List[int] = []
    leftovers: List[int] = []
    for i in pending:
        reason = batch_unsupported_reason(tasks[i])
        if reason is None:
            batchable.append(i)
        else:
            leftovers.append(i)
            metrics.inc(f"engine.fallback.{reason}")
            if rec.enabled:
                rec.emit("cell_fallback", cell=tasks[i].cell.label(), reason=reason)
    if not batchable:
        return leftovers

    max_batch = len(batchable) if batch is True else int(batch)
    plan = plan_batches([tasks[i] for i in batchable], max_batch)
    for group_index, group in enumerate(plan):
        members = [batchable[j] for j in group]
        try:
            group_results = simulate_batch([tasks[i] for i in members])
        except Exception:
            # Recorded and re-queued, never swallowed: every member is
            # recomputed by the serial/pool path below.
            metrics.inc("engine.batch_errors")
            for i in members:
                metrics.inc("engine.fallback.batch-error")
                if rec.enabled:
                    rec.emit(
                        "cell_fallback",
                        cell=tasks[i].cell.label(),
                        reason="batch-error",
                    )
            leftovers.extend(members)
            continue
        metrics.inc("engine.batch_groups")
        for i, result in zip(members, group_results):
            results[i] = result
            metrics.inc("engine.cells_run")
            metrics.inc("engine.cells_batched")
            if store is not None and keys[i] is not None:
                store.put(keys[i], result)
            if rec.enabled:
                rec.emit(
                    "cell_batched",
                    cell=tasks[i].cell.label(),
                    group=group_index,
                    size=len(members),
                )
                rec.emit("cell_done", cell=tasks[i].cell.label(), attempts=1)
    leftovers.sort()
    return leftovers


def _replay_events(rec: Recorder, events: Sequence[Mapping[str, Any]]) -> None:
    """Re-emit a worker's buffered events into the parent recorder
    (sequence numbers are re-stamped by the parent's own counter)."""
    for event in events:
        payload = {k: v for k, v in event.items() if k not in ("type", "seq")}
        rec.emit(event["type"], **payload)


def execute_cells(
    tasks: Sequence[CellTask],
    jobs: int = 1,
    cache: CacheLike = None,
    retries: int = 1,
    recorder: Optional[Recorder] = None,
    batch: Union[bool, int] = False,
) -> List[SimulationResult]:
    """Execute every task, in parallel when ``jobs > 1``, with caching.

    Parameters
    ----------
    tasks:
        The cells to run; results come back in the same order.
    jobs:
        Worker process count.  ``1`` executes inline in the calling
        process (no pool, exceptions propagate unchanged).
    cache:
        A :class:`ResultCache`, a directory path to open one at, or
        ``None`` to disable caching.  Hits skip execution entirely;
        computed cells are persisted for the next invocation.
    retries:
        Extra attempts a cell is granted after an unsuccessful one
        (worker crash or in-cell exception) before it is recorded as a
        :class:`CellFailure`.
    recorder:
        Optional event sink (see :mod:`repro.obs`).  The engine emits
        cell lifecycle events (``cell_start`` / ``cell_cached`` /
        ``cell_done`` / ``cell_failed``) and a closing
        ``engine_summary``; per-run events from workers (for tasks with
        ``trace=True``) are shipped back in buffers and replayed in task
        order, so the trace is deterministic regardless of worker
        scheduling.
    batch:
        Route cache-missed, batch-compatible cells through the stacked
        tensor backend (:mod:`repro.batch`) before the serial/pool path.
        ``True`` stacks each compatible group whole; an integer caps the
        runs per stack.  Cells the backend declines (tracing, profiling,
        watchdog, non-default plant options — see
        :func:`repro.batch.batch_unsupported_reason`) or that fail inside
        a batch fall back to the serial/pool path with a recorded
        ``cell_fallback`` reason; results are bit-identical either way.
        Batch membership never enters :func:`~repro.parallel.cache.cell_key`.

    Raises
    ------
    ParallelExecutionError
        If any cell exhausted its attempts (``jobs > 1`` path); carries
        the full failure list.
    """
    if jobs < 1:
        raise ValueError(f"jobs must be >= 1, got {jobs}")
    if retries < 0:
        raise ValueError(f"retries must be >= 0, got {retries}")
    if batch is not True and batch is not False and int(batch) < 1:
        raise ValueError(f"batch must be a bool or a positive int, got {batch}")
    store = _coerce_cache(cache)
    rec: Recorder = recorder if recorder is not None else NULL_RECORDER
    metrics = CounterRegistry()
    metrics.set_gauge("engine.jobs", jobs)
    metrics.set_gauge("engine.cells_total", len(tasks))
    cache_hits0 = store.hits if store is not None else 0
    cache_misses0 = store.misses if store is not None else 0

    results: List[Optional[SimulationResult]] = [None] * len(tasks)
    keys: List[Optional[str]] = [None] * len(tasks)
    pending: List[int] = []
    for i, task in enumerate(tasks):
        if rec.enabled:
            rec.emit("cell_start", cell=task.cell.label())
        if store is not None:
            keys[i] = cell_key(
                task.cell, task.cfg, task.workload, task.factory, task.sim_kwargs
            )
            hit = store.get(keys[i])
            if hit is not None:
                results[i] = hit
                metrics.inc("engine.cells_cached")
                if rec.enabled:
                    rec.emit("cell_cached", cell=task.cell.label())
                continue
        pending.append(i)

    if batch and pending:
        pending = _run_batched(
            tasks, pending, keys, results, store, rec, metrics, batch
        )

    if jobs == 1:
        for i in pending:
            results[i] = _run_cell(
                tasks[i], recorder=rec if tasks[i].trace else None
            )
            metrics.inc("engine.cells_run")
            if store is not None:
                store.put(keys[i], results[i])
            if rec.enabled:
                rec.emit("cell_done", cell=tasks[i].cell.label(), attempts=1)
        _emit_engine_summary(rec, metrics, store, cache_hits0, cache_misses0)
        return [r for r in results if r is not None]

    attempts: Dict[int, int] = {i: 0 for i in pending}
    event_buffers: Dict[int, Any] = {}
    success_attempts: Dict[int, int] = {}
    last_error: Dict[int, Tuple[str, str, str]] = {}
    failures: List[CellFailure] = []
    failed_of: Dict[int, CellFailure] = {}
    to_run = list(pending)
    while to_run:
        retry_round: List[int] = []
        with ProcessPoolExecutor(
            max_workers=min(jobs, len(to_run)), mp_context=get_context("spawn")
        ) as pool:
            future_of = {pool.submit(_run_cell_guarded, tasks[i]): i for i in to_run}
            not_done = set(future_of)
            broken = False
            while not_done and not broken:
                done, not_done = wait(not_done, return_when=FIRST_COMPLETED)
                for fut in done:
                    i = future_of[fut]
                    try:
                        status, payload = fut.result()
                    except BrokenProcessPool:
                        broken = True
                        attempts[i] += 1
                        last_error.setdefault(
                            i,
                            (
                                "WorkerCrash",
                                "worker process died before returning a result",
                                "",
                            ),
                        )
                        retry_round.append(i)
                        continue
                    except Exception as exc:
                        # Submission-side errors (e.g. an unpicklable lambda
                        # factory) surface here rather than in the worker;
                        # they consume an attempt like any other failure.
                        attempts[i] += 1
                        last_error[i] = (
                            type(exc).__qualname__,
                            str(exc),
                            traceback.format_exc(),
                        )
                        retry_round.append(i)
                        continue
                    if status == "ok":
                        result, events = payload
                        results[i] = result
                        success_attempts[i] = attempts.pop(i, 0) + 1
                        if events:
                            event_buffers[i] = events
                        metrics.inc("engine.cells_run")
                        if store is not None:
                            store.put(keys[i], result)
                    else:
                        attempts[i] += 1
                        last_error[i] = payload
                        retry_round.append(i)
            if broken:
                # Everything still queued or in flight died with the pool:
                # one attempt each, then resubmit to a fresh pool.
                for fut in not_done:
                    i = future_of[fut]
                    fut.cancel()
                    attempts[i] += 1
                    last_error.setdefault(
                        i,
                        (
                            "WorkerCrash",
                            "worker pool broke while the cell was queued/in flight",
                            "",
                        ),
                    )
                    retry_round.append(i)

        to_run = []
        for i in retry_round:
            if attempts[i] <= retries:
                to_run.append(i)
                metrics.inc("engine.retries")
            else:
                error_type, message, tb_text = last_error[i]
                failures.append(
                    CellFailure(
                        cell=tasks[i].cell,
                        attempts=attempts[i],
                        error_type=error_type,
                        message=message,
                        traceback_text=tb_text,
                    )
                )
                failed_of[i] = failures[-1]
                metrics.inc("engine.cells_failed")

    if rec.enabled:
        # Replay worker event buffers and settle-state events in task
        # order: the trace's cell sequence is then a deterministic
        # function of the task list, not of worker scheduling.
        for i, task in enumerate(tasks):
            events = event_buffers.get(i)
            if events:
                _replay_events(rec, events)
            if i in success_attempts:
                rec.emit(
                    "cell_done",
                    cell=task.cell.label(),
                    attempts=success_attempts[i],
                )
            elif i in failed_of:
                failure = failed_of[i]
                rec.emit(
                    "cell_failed",
                    cell=task.cell.label(),
                    attempts=failure.attempts,
                    error_type=failure.error_type,
                )
    _emit_engine_summary(rec, metrics, store, cache_hits0, cache_misses0)

    if failures:
        raise ParallelExecutionError(failures)
    settled = [r for r in results if r is not None]
    if len(settled) != len(tasks):
        raise RuntimeError(
            f"engine invariant violated: {len(tasks) - len(settled)} cell(s) "
            "neither produced a result nor recorded a failure"
        )
    return settled


def _emit_engine_summary(
    rec: Recorder,
    metrics: CounterRegistry,
    store: Optional[ResultCache],
    cache_hits0: int,
    cache_misses0: int,
) -> None:
    """Close an :func:`execute_cells` invocation with a counter snapshot."""
    if not rec.enabled:
        return
    counters = metrics.snapshot()
    if store is not None:
        counters["cache.hits"] = store.hits - cache_hits0
        counters["cache.misses"] = store.misses - cache_misses0
    rec.emit("engine_summary", counters=counters)
