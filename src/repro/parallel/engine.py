"""Process-pool execution of run cells.

The engine takes an ordered list of :class:`CellTask`s (a
:class:`~repro.parallel.cells.RunCell` plus everything needed to run it),
executes them across ``jobs`` worker processes, and returns results in
task order.  Four properties drive the design:

**Determinism.**  Workers are started with the ``spawn`` method, so a
worker inherits no forked interpreter state — in particular no RNG state
— from the parent.  Every cell rebuilds its controller inside the worker
from the factory's explicit seed, making a parallel cell's trajectory
bit-identical to the same cell run serially (see
:mod:`repro.parallel.compare` for the one wall-clock exception).

**Crash containment.**  A worker that dies mid-cell (OOM kill, segfault,
``os._exit``) breaks the whole :class:`~concurrent.futures.ProcessPoolExecutor`;
the engine rebuilds the pool and resubmits the unfinished cells.
Ordinary exceptions inside a cell are caught in the worker and shipped
back as values, so only hard crashes ever break a pool.

**Graceful degradation.**  Every unsuccessful attempt is *classified* by
a :class:`~repro.parallel.retry.RetryPolicy`: transient infrastructure
faults (worker crash, straggler timeout, IPC error) are retried with
bounded, seeded backoff; deterministic failures (a bad config, a contract
violation) fail fast — the first attempt already proved the outcome — and
a "transient" error that reproduces verbatim twice is treated as
deterministic in disguise.  A per-cell soft deadline (``timeout``) arms a
hung-worker watchdog that cancels stragglers and re-queues innocent
bystanders without charging their attempt budgets.  Cache writes are
best-effort (:meth:`~repro.parallel.cache.ResultCache.put_safe`): a full
disk costs a recompute later, never the run.  A cell that exhausts its
budget is recorded as a structured :class:`CellFailure`;
:func:`execute_cells` raises them together as
:class:`ParallelExecutionError`, while :func:`execute_cells_report`
returns partial results plus the failure report instead of raising.

**Caching and resume.**  With a
:class:`~repro.parallel.cache.ResultCache`, each cell's
:func:`~repro.parallel.cache.cell_key` is probed before any work is
scheduled and computed results are persisted by the parent (workers never
touch the cache, so there are no write races between processes).  Reads
verify integrity: a corrupt entry is quarantined — surfaced as a
``cache_quarantine`` event and counted in the engine summary — and the
cell recomputed.  With a :class:`~repro.parallel.journal.CampaignJournal`,
every settlement is checkpointed so a killed campaign resumes completing
only the missing cells, bit-identical to an uninterrupted run.

``jobs=1`` without any resilience options executes inline — no pool, no
pickling, exceptions propagate raw — which is what keeps the serial entry
points byte-for-byte identical to their historical behaviour.  Passing
``retry_policy``, ``chaos``, ``timeout`` or ``journal`` opts the inline
path into the same classified-retry machinery as the pool path (worker
crash and hang injection stay pool-only: the inline process cannot kill
or preempt itself).
"""

from __future__ import annotations

import time
import traceback
from collections import deque
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field
from multiprocessing import get_context
from pathlib import Path
from typing import (
    Any,
    Deque,
    Dict,
    List,
    Mapping,
    Optional,
    Sequence,
    Set,
    Tuple,
    Union,
)

from repro.manycore.config import SystemConfig
from repro.obs import NULL_RECORDER, BufferRecorder, CounterRegistry, Recorder
from repro.obs.metrics import Number
from repro.parallel.cache import ResultCache, cell_key
from repro.parallel.cells import RunCell
from repro.parallel.chaos import ChaosPolicy
from repro.parallel.journal import CampaignJournal, campaign_id
from repro.parallel.retry import RetryPolicy
from repro.sim.results import SimulationResult
from repro.workloads.phases import Workload

__all__ = [
    "CellTask",
    "CellFailure",
    "ExecutionReport",
    "ParallelExecutionError",
    "execute_cells",
    "execute_cells_report",
]

CacheLike = Union[ResultCache, str, Path, None]
JournalLike = Union[CampaignJournal, str, Path, None]


@dataclass(frozen=True)
class CellTask:
    """A run cell bundled with everything a worker needs to execute it.

    ``cfg`` must already carry the cell's effective power budget (the
    planners apply :attr:`RunCell.budget` overrides before building
    tasks).  For ``jobs > 1`` the whole task is pickled to the worker, so
    ``factory`` must be picklable — the ``functools.partial`` factories
    from :func:`repro.sim.runner.standard_controllers` are; lambdas are
    not.
    """

    cell: RunCell
    cfg: SystemConfig
    workload: Workload
    factory: Any
    sim_kwargs: Mapping[str, Any] = field(default_factory=dict)
    #: Observability switches.  Deliberately *outside* ``sim_kwargs`` so
    #: they never enter :func:`~repro.parallel.cache.cell_key` — tracing
    #: or profiling a run must not change its cache identity (the
    #: trajectory is bit-identical either way).  With ``trace``, the
    #: worker collects the run's events in a
    #: :class:`~repro.obs.BufferRecorder` and ships them back with the
    #: result for task-ordered replay in the parent.
    trace: bool = False
    profile: bool = False


@dataclass(frozen=True)
class CellFailure:
    """Structured record of a cell whose attempts were exhausted or cut off.

    Attributes
    ----------
    cell:
        The failed cell.
    attempts:
        Unsuccessful attempts consumed (includes pool-crash casualties).
    error_type:
        Qualified exception type name of the *latest* failure;
        ``"WorkerCrash"`` when the worker process died without raising,
        ``"CellTimeout"`` when the soft-deadline watchdog cancelled it.
    message:
        The exception message (or crash/timeout description).
    traceback_text:
        Formatted worker-side traceback when one exists, else ``""``.
    classification:
        ``"transient"`` or ``"deterministic"`` per the run's
        :class:`~repro.parallel.retry.RetryPolicy` — deterministic
        failures fail fast without consuming the retry budget.
    """

    cell: RunCell
    attempts: int
    error_type: str
    message: str
    traceback_text: str = ""
    classification: str = "deterministic"

    def __str__(self) -> str:
        return (
            f"{self.cell.label()}: {self.error_type}: {self.message} "
            f"({self.classification}, after {self.attempts} attempts)"
        )


@dataclass(frozen=True)
class ExecutionReport:
    """Outcome of one engine invocation, failures included.

    Returned by :func:`execute_cells_report` (partial-results mode): the
    caller gets every completed cell *and* a structured account of every
    failure instead of an exception that discards the survivors.

    Attributes
    ----------
    results:
        Per-task results in task order; ``None`` where the cell failed.
    failures:
        Every :class:`CellFailure`, in task order.
    counters:
        The invocation's counter snapshot (what ``engine_summary`` emits).
    campaign:
        Content-addressed campaign id when a journal was used.
    resumed:
        Cells the journal reported already completed on entry.
    """

    results: Tuple[Optional[SimulationResult], ...]
    failures: Tuple[CellFailure, ...]
    counters: Dict[str, Number]
    campaign: Optional[str] = None
    resumed: int = 0

    @property
    def ok(self) -> bool:
        return not self.failures

    def completed(self) -> List[SimulationResult]:
        """The successful results, in task order."""
        return [r for r in self.results if r is not None]


class ParallelExecutionError(RuntimeError):
    """One or more cells failed after retries; carries every failure."""

    def __init__(self, failures: Sequence[CellFailure]) -> None:
        self.failures: Tuple[CellFailure, ...] = tuple(failures)
        lines = "\n  ".join(str(f) for f in self.failures)
        super().__init__(
            f"{len(self.failures)} cell(s) failed after retries:\n  {lines}"
        )


def _run_cell(
    task: CellTask, recorder: Optional[Recorder] = None
) -> SimulationResult:
    """Execute one cell (worker-side): build the controller, run the loop."""
    # Imported here, not at module level: the simulator pulls in the full
    # plant stack, and worker processes import this module on spawn.
    from repro.sim.simulator import run_controller

    controller = task.factory(task.cfg)
    return run_controller(
        task.cfg,
        task.workload,
        controller,
        task.cell.n_epochs,
        recorder=recorder,
        profile=task.profile,
        **dict(task.sim_kwargs),
    )


def _run_cell_guarded(
    task: CellTask,
    chaos: Optional[ChaosPolicy] = None,
    attempt: int = 1,
) -> Tuple[str, Any]:
    """Worker entry: exceptions come back as values, never as raised errors.

    Returning ``("error", ...)`` instead of raising keeps ordinary cell
    failures (bad config, contract violation) out of the pool's exception
    machinery, so only hard process death ever breaks the pool.  The
    ``"ok"`` payload is ``(result, events)`` — the run's buffered trace
    events when ``task.trace`` is set, else ``None``.  The ``"error"``
    payload carries the attempt's *partial* event buffer as its fourth
    element, so a cell that fails permanently still leaves a trace
    through its last completed epoch instead of losing the buffer with
    the attempt.

    ``chaos`` (when armed) injects its worker-side faults — crash, hang,
    transient error — before the cell simulates, keyed deterministically
    by the cell label and the 1-based ``attempt`` number the parent
    passes, so injection decisions are identical across the spawn
    boundary and across runs.
    """
    buffer = BufferRecorder() if task.trace else None
    try:
        if chaos is not None:
            chaos.at_cell_start(task.cell.label(), attempt)
        result = _run_cell(task, recorder=buffer)
        return "ok", (result, buffer.events if buffer is not None else None)
    except BaseException as exc:  # shipped to the parent as a structured value
        return "error", (
            type(exc).__qualname__,
            str(exc),
            traceback.format_exc(),
            buffer.events if buffer is not None and buffer.events else None,
        )


def _coerce_cache(cache: CacheLike) -> Optional[ResultCache]:
    if cache is None or isinstance(cache, ResultCache):
        return cache
    return ResultCache(cache)


def _terminate_pool_processes(pool: ProcessPoolExecutor) -> None:
    """Kill a pool's worker processes (the watchdog's cancel mechanism).

    ``ProcessPoolExecutor`` has no public per-future cancel for running
    work, so the watchdog terminates the workers and lets the engine's
    broken-pool path rebuild and resubmit.  Accessing ``_processes`` is
    deliberate and defensive: if the attribute moves in a future Python,
    the watchdog degrades to waiting out the straggler instead of
    crashing the campaign.
    """
    processes = getattr(pool, "_processes", None)
    if not processes:
        return
    for proc in list(processes.values()):
        try:
            proc.terminate()
        except Exception:
            # Already-reaped process or platform refusal: the rebuild
            # path below handles stragglers either way.
            continue


def _drain_quarantine(
    rec: Recorder,
    metrics: CounterRegistry,
    store: ResultCache,
    cursor: int,
) -> int:
    """Emit ``cache_quarantine`` events for log entries past ``cursor``;
    return the new cursor.  The engine owns event emission so the cache
    stays recorder-free."""
    while cursor < len(store.quarantine_log):
        key, reason = store.quarantine_log[cursor]
        cursor += 1
        metrics.inc("engine.cache_quarantines")
        if rec.enabled:
            rec.emit("cache_quarantine", key=key, reason=reason)
    return cursor


def _run_batched(
    tasks: Sequence[CellTask],
    pending: List[int],
    keys: List[Optional[str]],
    results: List[Optional[SimulationResult]],
    store: Optional[ResultCache],
    rec: Recorder,
    metrics: CounterRegistry,
    batch: Union[bool, int],
) -> List[int]:
    """Run the batch-compatible subset of ``pending`` through the stacked
    backend; return the still-unsettled indices (fallbacks, batch errors)
    in task order for the serial/pool path.

    A group that raises is not fatal: every member is re-queued with the
    ``"batch-error"`` fallback reason and recomputed by the serial path,
    so a batching defect can cost time but never a result.
    """
    # Imported here, not at module level: repro.batch pulls in the full
    # plant + controller stack, which the engine otherwise avoids loading
    # (worker processes import this module on spawn).
    from repro.batch import batch_unsupported_reason, plan_batches, simulate_batch

    batchable: List[int] = []
    leftovers: List[int] = []
    for i in pending:
        reason = batch_unsupported_reason(tasks[i])
        if reason is None:
            batchable.append(i)
        else:
            leftovers.append(i)
            metrics.inc(f"engine.fallback.{reason}")
            if rec.enabled:
                rec.emit("cell_fallback", cell=tasks[i].cell.label(), reason=reason)
    if not batchable:
        return leftovers

    max_batch = len(batchable) if batch is True else int(batch)
    plan = plan_batches([tasks[i] for i in batchable], max_batch)
    for group_index, group in enumerate(plan):
        members = [batchable[j] for j in group]
        try:
            group_results = simulate_batch([tasks[i] for i in members])
        except Exception:
            # Recorded and re-queued, never swallowed: every member is
            # recomputed by the serial/pool path below.
            metrics.inc("engine.batch_errors")
            for i in members:
                metrics.inc("engine.fallback.batch-error")
                if rec.enabled:
                    rec.emit(
                        "cell_fallback",
                        cell=tasks[i].cell.label(),
                        reason="batch-error",
                    )
            leftovers.extend(members)
            continue
        metrics.inc("engine.batch_groups")
        for i, result in zip(members, group_results):
            results[i] = result
            metrics.inc("engine.cells_run")
            metrics.inc("engine.cells_batched")
            if store is not None and keys[i] is not None:
                store.put_safe(keys[i], result)
            if rec.enabled:
                rec.emit(
                    "cell_batched",
                    cell=tasks[i].cell.label(),
                    group=group_index,
                    size=len(members),
                )
                rec.emit("cell_done", cell=tasks[i].cell.label(), attempts=1)
    leftovers.sort()
    return leftovers


def _replay_events(rec: Recorder, events: Sequence[Mapping[str, Any]]) -> None:
    """Re-emit a worker's buffered events into the parent recorder
    (sequence numbers are re-stamped by the parent's own counter)."""
    for event in events:
        payload = {k: v for k, v in event.items() if k not in ("type", "seq")}
        rec.emit(event["type"], **payload)


def execute_cells(
    tasks: Sequence[CellTask],
    jobs: int = 1,
    cache: CacheLike = None,
    retries: int = 1,
    recorder: Optional[Recorder] = None,
    batch: Union[bool, int] = False,
    retry_policy: Optional[RetryPolicy] = None,
    timeout: Optional[float] = None,
    chaos: Optional[ChaosPolicy] = None,
    journal: JournalLike = None,
) -> List[SimulationResult]:
    """Execute every task, in parallel when ``jobs > 1``, with caching.

    Parameters
    ----------
    tasks:
        The cells to run; results come back in the same order.
    jobs:
        Worker process count.  ``1`` executes inline in the calling
        process (no pool; without resilience options, exceptions
        propagate unchanged).
    cache:
        A :class:`ResultCache`, a directory path to open one at, or
        ``None`` to disable caching.  Hits skip execution entirely;
        computed cells are persisted for the next invocation.  Reads are
        integrity-verified: corrupt entries are quarantined (emitting
        ``cache_quarantine``) and recomputed; writes are best-effort, so
        a full disk costs a recompute later, never the run.
    retries:
        Extra attempts a cell is granted after an unsuccessful one.
        Shorthand for ``retry_policy=RetryPolicy(retries=...)`` with zero
        backoff; ignored when ``retry_policy`` is given.
    recorder:
        Optional event sink (see :mod:`repro.obs`).  The engine emits
        cell lifecycle events (``cell_start`` / ``cell_cached`` /
        ``cell_done`` / ``cell_failed``), retry-stack incidents
        (``cell_retry`` / ``cell_timeout`` / ``cell_abandoned``), cache
        integrity incidents (``cache_quarantine``), ``campaign_resume``
        when a journal resumes, and a closing ``engine_summary``; per-run
        events from workers (for tasks with ``trace=True``) are shipped
        back in buffers and replayed in task order, so the trace is
        deterministic regardless of worker scheduling.
    batch:
        Route cache-missed, batch-compatible cells through the stacked
        tensor backend (:mod:`repro.batch`) before the serial/pool path.
        ``True`` stacks each compatible group whole; an integer caps the
        runs per stack.  Mixed budgets, seeds, epoch counts, fault
        campaigns, variation/hetero maps, and watchdog supervision all
        stack.  Cells the backend declines (tracing, profiling,
        non-default ``sensors``/``memory_system`` — see
        :func:`repro.batch.batch_unsupported_reason`) or that fail inside
        a batch fall back to the serial/pool path with a recorded
        ``cell_fallback`` reason; results are bit-identical either way.
        Batch membership never enters :func:`~repro.parallel.cache.cell_key`.
    retry_policy:
        Full control of retry behaviour: transient/deterministic error
        classification, the identical-failure cutoff, and bounded
        exponential backoff with seeded jitter (see
        :class:`~repro.parallel.retry.RetryPolicy`).
    timeout:
        Per-cell soft deadline in seconds (``jobs > 1`` only).  A cell
        still running past it is cancelled by the hung-worker watchdog —
        its workers are terminated, the straggler is charged an attempt
        (error type ``CellTimeout``, transient), and innocent in-flight
        cells are re-queued *without* consuming their budgets.  The
        clock starts when the pool marks the cell running, which
        includes fresh-worker spawn/import time (seconds on a cold
        machine): pick deadlines comfortably above worker spin-up.
    chaos:
        A :class:`~repro.parallel.chaos.ChaosPolicy` injecting seeded,
        deterministic infrastructure faults (worker crash/hang/transient
        at cell start; cache corruption/truncation/disk-full around
        writes).  Test and soak harness use only; ``None`` is exactly
        today's behaviour.
    journal:
        A :class:`~repro.parallel.journal.CampaignJournal` (or a path to
        create one at) checkpointing every cell settlement.  Requires
        cacheable tasks; when ``cache`` is ``None`` a sibling cache
        directory is derived from the journal path.  Re-running with the
        same journal and cache completes only the missing cells and is
        bit-identical to an uninterrupted run.

    Raises
    ------
    ParallelExecutionError
        If any cell exhausted its attempts; carries the full failure
        list.  Use :func:`execute_cells_report` to receive partial
        results instead of an exception.
    """
    resilient = (
        retry_policy is not None
        or timeout is not None
        or chaos is not None
        or journal is not None
    )
    report = _execute(
        tasks,
        jobs=jobs,
        cache=cache,
        retries=retries,
        recorder=recorder,
        batch=batch,
        retry_policy=retry_policy,
        timeout=timeout,
        chaos=chaos,
        journal=journal,
        raw_inline=(jobs == 1 and not resilient),
    )
    if report.failures:
        raise ParallelExecutionError(report.failures)
    settled = report.completed()
    if len(settled) != len(tasks):
        raise RuntimeError(
            f"engine invariant violated: {len(tasks) - len(settled)} cell(s) "
            "neither produced a result nor recorded a failure"
        )
    return settled


def execute_cells_report(
    tasks: Sequence[CellTask],
    jobs: int = 1,
    cache: CacheLike = None,
    retries: int = 1,
    recorder: Optional[Recorder] = None,
    batch: Union[bool, int] = False,
    retry_policy: Optional[RetryPolicy] = None,
    timeout: Optional[float] = None,
    chaos: Optional[ChaosPolicy] = None,
    journal: JournalLike = None,
) -> ExecutionReport:
    """Partial-results variant of :func:`execute_cells`.

    Never raises for cell failures: the returned
    :class:`ExecutionReport` carries every completed result (in task
    order, ``None`` where a cell failed) alongside the structured failure
    list, so a campaign with one poisoned cell still delivers the other
    results — and, with a journal, the failed cells stay pending for the
    next resume.
    """
    return _execute(
        tasks,
        jobs=jobs,
        cache=cache,
        retries=retries,
        recorder=recorder,
        batch=batch,
        retry_policy=retry_policy,
        timeout=timeout,
        chaos=chaos,
        journal=journal,
        raw_inline=False,
    )


def _execute(
    tasks: Sequence[CellTask],
    jobs: int,
    cache: CacheLike,
    retries: int,
    recorder: Optional[Recorder],
    batch: Union[bool, int],
    retry_policy: Optional[RetryPolicy],
    timeout: Optional[float],
    chaos: Optional[ChaosPolicy],
    journal: JournalLike,
    raw_inline: bool,
) -> ExecutionReport:
    """Shared engine body behind :func:`execute_cells` /
    :func:`execute_cells_report`."""
    if jobs < 1:
        raise ValueError(f"jobs must be >= 1, got {jobs}")
    if retries < 0:
        raise ValueError(f"retries must be >= 0, got {retries}")
    if batch is not True and batch is not False and int(batch) < 1:
        raise ValueError(f"batch must be a bool or a positive int, got {batch}")
    if timeout is not None and timeout <= 0:
        raise ValueError(f"timeout must be > 0 seconds, got {timeout}")
    policy = (
        retry_policy
        if retry_policy is not None
        else RetryPolicy(retries=retries, base_delay=0.0, max_delay=0.0, jitter=0.0)
    )
    store = _coerce_cache(cache)
    jour: Optional[CampaignJournal] = None
    if journal is not None:
        jour = (
            journal
            if isinstance(journal, CampaignJournal)
            else CampaignJournal(journal)
        )
        if store is None:
            # A journal without a cache could checkpoint but never resume
            # (results would be lost); derive a sibling store instead.
            store = ResultCache(jour.path.parent / (jour.path.name + ".cache"))
    if chaos is not None and store is not None and store.chaos is None:
        store.chaos = chaos

    rec: Recorder = recorder if recorder is not None else NULL_RECORDER
    metrics = CounterRegistry()
    metrics.set_gauge("engine.jobs", jobs)
    metrics.set_gauge("engine.cells_total", len(tasks))
    cache0: Dict[str, int] = {}
    if store is not None:
        cache0 = {
            "hits": store.hits,
            "misses": store.misses,
            "corrupt": store.corrupt,
            "quarantined": store.quarantined,
            "put_errors": store.put_errors,
        }
    q_cursor = len(store.quarantine_log) if store is not None else 0

    results: List[Optional[SimulationResult]] = [None] * len(tasks)
    keys: List[Optional[str]] = [None] * len(tasks)
    if store is not None:
        for i, task in enumerate(tasks):
            keys[i] = cell_key(
                task.cell, task.cfg, task.workload, task.factory, task.sim_kwargs
            )

    try:
        campaign: Optional[str] = None
        resumed = 0
        if jour is not None:
            campaign = campaign_id([k for k in keys if k is not None])
            journal_completed = jour.begin(campaign, len(tasks))
            resumed = sum(1 for k in keys if k in journal_completed)
            if resumed:
                metrics.set_gauge("engine.cells_resumed", resumed)
                if rec.enabled:
                    rec.emit(
                        "campaign_resume",
                        campaign=campaign,
                        total=len(tasks),
                        completed=resumed,
                        pending=len(tasks) - resumed,
                    )

        pending: List[int] = []
        for i, task in enumerate(tasks):
            if rec.enabled:
                rec.emit("cell_start", cell=task.cell.label())
            key = keys[i]
            if store is not None and key is not None:
                hit = store.get(key)
                q_cursor = _drain_quarantine(rec, metrics, store, q_cursor)
                if hit is not None:
                    results[i] = hit
                    metrics.inc("engine.cells_cached")
                    if rec.enabled:
                        rec.emit("cell_cached", cell=task.cell.label())
                    if jour is not None:
                        jour.record_done(i, key, cached=True)
                    continue
            pending.append(i)

        if batch and pending:
            before_batch = list(pending)
            pending = _run_batched(
                tasks, pending, keys, results, store, rec, metrics, batch
            )
            if jour is not None:
                still = set(pending)
                for i in before_batch:
                    key = keys[i]
                    if i not in still and key is not None and results[i] is not None:
                        jour.record_done(i, key)

        failures_of: Dict[int, CellFailure] = {}
        success_attempts: Dict[int, int] = {}
        event_buffers: Dict[int, Any] = {}
        #: Deferred retry-stack events per cell, emitted at settle time in
        #: task order so the trace stays deterministic when chaos is off.
        notes: Dict[int, List[Tuple[str, Dict[str, Any]]]] = {}

        if jobs == 1:
            if raw_inline:
                # Historical serial path: stream traces straight into the
                # recorder, propagate exceptions raw.
                for i in pending:
                    result = _run_cell(
                        tasks[i], recorder=rec if tasks[i].trace else None
                    )
                    results[i] = result
                    metrics.inc("engine.cells_run")
                    key = keys[i]
                    if store is not None and key is not None:
                        store.put_safe(key, result)
                    if rec.enabled:
                        rec.emit(
                            "cell_done", cell=tasks[i].cell.label(), attempts=1
                        )
                counters = _summary_counters(metrics, store, cache0)
                if rec.enabled:
                    rec.emit("engine_summary", counters=counters)
                return ExecutionReport(
                    results=tuple(results),
                    failures=(),
                    counters=counters,
                )
            _run_inline_resilient(
                tasks,
                pending,
                keys,
                results,
                store,
                jour,
                rec,
                metrics,
                policy,
                chaos,
                failures_of,
                success_attempts,
                event_buffers,
                notes,
            )
        else:
            _run_pool(
                tasks,
                pending,
                keys,
                results,
                store,
                jour,
                metrics,
                policy,
                timeout,
                chaos,
                jobs,
                failures_of,
                success_attempts,
                event_buffers,
                notes,
            )
        if store is not None:
            q_cursor = _drain_quarantine(rec, metrics, store, q_cursor)

        if rec.enabled:
            # Replay deferred notes, worker event buffers and settle-state
            # events in task order: the trace's cell sequence is then a
            # deterministic function of the task list, not of worker
            # scheduling.
            for i, task in enumerate(tasks):
                for note_type, payload in notes.get(i, []):
                    rec.emit(note_type, cell=task.cell.label(), **payload)
                events = event_buffers.get(i)
                if events:
                    _replay_events(rec, events)
                if i in success_attempts:
                    rec.emit(
                        "cell_done",
                        cell=task.cell.label(),
                        attempts=success_attempts[i],
                    )
                elif i in failures_of:
                    failure = failures_of[i]
                    rec.emit(
                        "cell_failed",
                        cell=task.cell.label(),
                        attempts=failure.attempts,
                        error_type=failure.error_type,
                    )
        counters = _summary_counters(metrics, store, cache0)
        if rec.enabled:
            rec.emit("engine_summary", counters=counters)
        return ExecutionReport(
            results=tuple(results),
            failures=tuple(failures_of[i] for i in sorted(failures_of)),
            counters=counters,
            campaign=campaign,
            resumed=resumed,
        )
    finally:
        if jour is not None:
            jour.close()
        # Durability on the unhappy path: a run that raises mid-campaign
        # must not lose the recorder's buffered tail (satellite of the
        # torn-trace bug).  ``getattr`` keeps third-party recorders that
        # predate ``flush`` working.
        flush = getattr(rec, "flush", None)
        if callable(flush):
            flush()


def _settle_failure(
    task: CellTask,
    attempts: int,
    error: Tuple[str, str, str],
    policy: RetryPolicy,
    metrics: CounterRegistry,
    notes: Dict[int, List[Tuple[str, Dict[str, Any]]]],
    index: int,
) -> CellFailure:
    """Build the :class:`CellFailure` for a cell that gets no more attempts,
    noting a ``cell_abandoned`` event when budget remained unspent."""
    error_type, message, tb_text = error
    classification = policy.classify(error_type, message)
    if attempts <= policy.retries:
        metrics.inc("engine.cells_abandoned")
        notes.setdefault(index, []).append(
            (
                "cell_abandoned",
                {
                    "attempts": attempts,
                    "error_type": error_type,
                    "classification": classification,
                },
            )
        )
    metrics.inc("engine.cells_failed")
    return CellFailure(
        cell=task.cell,
        attempts=attempts,
        error_type=error_type,
        message=message,
        traceback_text=tb_text,
        classification=classification,
    )


def _note_retry(
    task: CellTask,
    attempts: int,
    error: Tuple[str, str, str],
    policy: RetryPolicy,
    metrics: CounterRegistry,
    notes: Dict[int, List[Tuple[str, Dict[str, Any]]]],
    index: int,
) -> None:
    """Record one granted retry (counter + deferred ``cell_retry`` event)."""
    error_type, message, _ = error
    metrics.inc("engine.retries")
    notes.setdefault(index, []).append(
        (
            "cell_retry",
            {
                "attempt": attempts,
                "error_type": error_type,
                "classification": policy.classify(error_type, message),
                "delay": policy.delay_before(attempts + 1, task.cell.label()),
            },
        )
    )


def _run_inline_resilient(
    tasks: Sequence[CellTask],
    pending: List[int],
    keys: List[Optional[str]],
    results: List[Optional[SimulationResult]],
    store: Optional[ResultCache],
    jour: Optional[CampaignJournal],
    rec: Recorder,
    metrics: CounterRegistry,
    policy: RetryPolicy,
    chaos: Optional[ChaosPolicy],
    failures_of: Dict[int, CellFailure],
    success_attempts: Dict[int, int],
    event_buffers: Dict[int, Any],
    notes: Dict[int, List[Tuple[str, Dict[str, Any]]]],
) -> None:
    """``jobs=1`` with the classified-retry machinery, scheduled by
    deadline: cells run in task order, but a cell owing backoff is
    *deferred* (per-cell ``not_before`` timestamp) while later ready
    cells execute, so a flaky cell never stalls the rest of the grid —
    the process only sleeps when every pending cell is backing off.

    Traced runs buffer per attempt; a successful attempt replaces any
    earlier partial buffer, so a retried cell never double-emits its
    epochs, while a permanently failed cell keeps its last attempt's
    partial trace through the final completed epoch."""
    queue: Deque[int] = deque(pending)
    not_before: Dict[int, float] = {i: 0.0 for i in pending}
    attempts: Dict[int, int] = {i: 0 for i in pending}
    history: Dict[int, List[Tuple[str, str]]] = {i: [] for i in pending}
    while queue:
        now = time.monotonic()
        pos = next((p for p, j in enumerate(queue) if not_before[j] <= now), None)
        if pos is None:
            # Every pending cell is backing off; sleep to the nearest
            # deadline instead of spinning.
            time.sleep(max(0.0, min(not_before[j] for j in queue) - now))
            continue
        i = queue[pos]
        del queue[pos]
        task = tasks[i]
        label = task.cell.label()
        attempts[i] += 1
        attempt = attempts[i]
        buffer = BufferRecorder() if task.trace and rec.enabled else None
        try:
            if chaos is not None:
                chaos.inline_cell_start(label, attempt)
            result = _run_cell(task, recorder=buffer)
        except Exception as exc:
            error = (type(exc).__qualname__, str(exc), traceback.format_exc())
            history[i].append((error[0], error[1]))
            if buffer is not None and buffer.events:
                # Partial trace of the failed attempt; a later successful
                # attempt overwrites it below.
                event_buffers[i] = buffer.events
            if policy.should_retry(attempt, history[i]):
                _note_retry(task, attempt, error, policy, metrics, notes, i)
                not_before[i] = time.monotonic() + policy.delay_before(
                    attempt + 1, label
                )
                queue.append(i)
                continue
            failures_of[i] = _settle_failure(
                task, attempt, error, policy, metrics, notes, i
            )
            key = keys[i]
            if jour is not None and key is not None:
                jour.record_failed(i, key, error[0], attempt)
            continue
        results[i] = result
        success_attempts[i] = attempt
        metrics.inc("engine.cells_run")
        if buffer is not None:
            if buffer.events:
                event_buffers[i] = buffer.events
            else:
                event_buffers.pop(i, None)
        key = keys[i]
        if store is not None and key is not None:
            store.put_safe(key, result)
        if jour is not None and key is not None:
            jour.record_done(i, key)


def _run_pool(
    tasks: Sequence[CellTask],
    pending: List[int],
    keys: List[Optional[str]],
    results: List[Optional[SimulationResult]],
    store: Optional[ResultCache],
    jour: Optional[CampaignJournal],
    metrics: CounterRegistry,
    policy: RetryPolicy,
    timeout: Optional[float],
    chaos: Optional[ChaosPolicy],
    jobs: int,
    failures_of: Dict[int, CellFailure],
    success_attempts: Dict[int, int],
    event_buffers: Dict[int, Any],
    notes: Dict[int, List[Tuple[str, Dict[str, Any]]]],
) -> None:
    """The pool rounds loop: submit, watch, classify, retry or settle.

    Backoff never blocks dispatch: a retried cell carries a per-cell
    ``not_before`` deadline and is *deferred* — ready cells are submitted
    immediately, deferred cells are promoted into the live pool as their
    deadlines pass, and the hung-worker watchdog keeps ticking
    throughout.  A cell in backoff therefore never stalls unrelated work
    (the backoff-stall bug: the old one-``time.sleep``-per-round design
    held every ready cell and the watchdog hostage to the longest delay
    owed by any retried member).
    """
    attempts: Dict[int, int] = {i: 0 for i in pending}
    history: Dict[int, List[Tuple[str, str]]] = {i: [] for i in pending}
    last_error: Dict[int, Tuple[str, str, str]] = {}
    #: Last failed attempt's partial event buffer per cell (pool workers
    #: ship it with the error payload); replayed only on permanent failure.
    error_events: Dict[int, Any] = {}
    not_before: Dict[int, float] = {i: 0.0 for i in pending}
    to_run = list(pending)
    while to_run:
        retry_round: List[int] = []
        requeue_free: List[int] = []
        deferred: List[int] = []
        with ProcessPoolExecutor(
            max_workers=min(jobs, len(to_run)), mp_context=get_context("spawn")
        ) as pool:
            now = time.monotonic()
            ready = [i for i in to_run if not_before[i] <= now]
            deferred = [i for i in to_run if not_before[i] > now]
            future_of = {
                pool.submit(_run_cell_guarded, tasks[i], chaos, attempts[i] + 1): i
                for i in ready
            }
            not_done = set(future_of)
            running_since: Dict[Any, float] = {}
            broken = False
            watchdog_broke = False
            while (not_done or deferred) and not broken:
                if not not_done:
                    # Only deferred cells remain: sleep to the nearest
                    # backoff deadline, then promote below.
                    wake_in = (
                        min(not_before[i] for i in deferred) - time.monotonic()
                    )
                    if wake_in > 0:
                        time.sleep(wake_in)
                    done: Set[Any] = set()
                else:
                    # Poll when a watchdog deadline or a deferral is
                    # armed; a plain blocking wait otherwise, so neither
                    # costs anything when unused.
                    ticks: List[float] = []
                    if timeout is not None:
                        ticks.append(max(0.01, min(0.05, timeout / 5.0)))
                    if deferred:
                        wake_in = (
                            min(not_before[i] for i in deferred)
                            - time.monotonic()
                        )
                        ticks.append(max(0.01, wake_in))
                    tick = min(ticks) if ticks else None
                    done, not_done = wait(
                        not_done, timeout=tick, return_when=FIRST_COMPLETED
                    )
                for fut in done:
                    i = future_of[fut]
                    try:
                        status, payload = fut.result()
                    except BrokenProcessPool:
                        broken = True
                        attempts[i] += 1
                        last_error[i] = (
                            "WorkerCrash",
                            "worker process died before returning a result",
                            "",
                        )
                        history[i].append((last_error[i][0], last_error[i][1]))
                        retry_round.append(i)
                        continue
                    except Exception as exc:
                        # Submission-side errors (e.g. an unpicklable lambda
                        # factory) surface here rather than in the worker;
                        # they consume an attempt like any other failure.
                        attempts[i] += 1
                        last_error[i] = (
                            type(exc).__qualname__,
                            str(exc),
                            traceback.format_exc(),
                        )
                        history[i].append((last_error[i][0], last_error[i][1]))
                        retry_round.append(i)
                        continue
                    if status == "ok":
                        result, events = payload
                        results[i] = result
                        success_attempts[i] = attempts.pop(i, 0) + 1
                        if events:
                            event_buffers[i] = events
                        error_events.pop(i, None)
                        metrics.inc("engine.cells_run")
                        key = keys[i]
                        if store is not None and key is not None:
                            store.put_safe(key, result)
                        if jour is not None and key is not None:
                            jour.record_done(i, key)
                    else:
                        attempts[i] += 1
                        last_error[i] = (payload[0], payload[1], payload[2])
                        if len(payload) > 3 and payload[3]:
                            error_events[i] = payload[3]
                        history[i].append((payload[0], payload[1]))
                        retry_round.append(i)
                # Promote deferred cells whose backoff deadlines passed
                # into the live pool.
                if deferred and not broken:
                    now = time.monotonic()
                    ripe = [i for i in deferred if not_before[i] <= now]
                    if ripe:
                        deferred = [i for i in deferred if not_before[i] > now]
                        for pos, i in enumerate(ripe):
                            try:
                                fut = pool.submit(
                                    _run_cell_guarded,
                                    tasks[i],
                                    chaos,
                                    attempts[i] + 1,
                                )
                            except BrokenProcessPool:
                                # The pool died under us: unpromoted cells
                                # keep their deadlines for the next round.
                                broken = True
                                deferred.extend(ripe[pos:])
                                break
                            future_of[fut] = i
                            not_done.add(fut)
                if broken or timeout is None or not not_done:
                    continue
                # Soft-deadline watchdog: charge stragglers, kill the pool,
                # and let the broken-pool path re-queue the innocents for
                # free (their budgets are untouched).
                now = time.monotonic()
                for fut in not_done:
                    if fut.running() and fut not in running_since:
                        running_since[fut] = now
                expired = [
                    fut
                    for fut in not_done
                    if fut in running_since
                    and now - running_since[fut] >= timeout
                ]
                if expired:
                    broken = True
                    watchdog_broke = True
                    for fut in expired:
                        i = future_of[fut]
                        attempts[i] += 1
                        last_error[i] = (
                            "CellTimeout",
                            f"cell exceeded its soft deadline of {timeout}s",
                            "",
                        )
                        history[i].append((last_error[i][0], last_error[i][1]))
                        metrics.inc("engine.timeouts")
                        notes.setdefault(i, []).append(
                            (
                                "cell_timeout",
                                {"attempt": attempts[i], "deadline": timeout},
                            )
                        )
                        retry_round.append(i)
                    not_done -= set(expired)
                    _terminate_pool_processes(pool)
            if broken:
                for fut in not_done:
                    i = future_of[fut]
                    fut.cancel()
                    if watchdog_broke:
                        # Innocent bystanders of a watchdog kill: re-queued
                        # with their attempt budgets untouched.
                        metrics.inc("engine.requeued")
                        requeue_free.append(i)
                    else:
                        # Casualties of a genuine crash: one attempt each,
                        # then resubmit to a fresh pool.
                        attempts[i] += 1
                        last_error[i] = (
                            "WorkerCrash",
                            "worker pool broke while the cell was queued/in flight",
                            "",
                        )
                        history[i].append((last_error[i][0], last_error[i][1]))
                        retry_round.append(i)

        to_run = []
        for i in retry_round:
            if policy.should_retry(attempts[i], history[i]):
                to_run.append(i)
                _note_retry(
                    tasks[i], attempts[i], last_error[i], policy, metrics, notes, i
                )
                not_before[i] = time.monotonic() + policy.delay_before(
                    attempts[i] + 1, tasks[i].cell.label()
                )
            else:
                if error_events.get(i):
                    # Permanent failure: replay the last attempt's partial
                    # trace through its final completed epoch.
                    event_buffers[i] = error_events[i]
                failures_of[i] = _settle_failure(
                    tasks[i], attempts[i], last_error[i], policy, metrics, notes, i
                )
                key = keys[i]
                if jour is not None and key is not None:
                    jour.record_failed(i, key, last_error[i][0], attempts[i])
        for i in requeue_free:
            # Watchdog innocents re-enter immediately: the requeue is not
            # a retry and owes no backoff.
            not_before[i] = 0.0
        to_run.extend(requeue_free)
        to_run.extend(deferred)
        to_run.sort()


def _summary_counters(
    metrics: CounterRegistry,
    store: Optional[ResultCache],
    cache0: Dict[str, int],
) -> Dict[str, Number]:
    """The invocation's counter snapshot, with this invocation's cache
    deltas folded in — what ``engine_summary`` emits and
    :attr:`ExecutionReport.counters` carries."""
    counters = metrics.snapshot()
    if store is not None:
        counters["cache.hits"] = store.hits - cache0.get("hits", 0)
        counters["cache.misses"] = store.misses - cache0.get("misses", 0)
        counters["cache.corrupt"] = store.corrupt - cache0.get("corrupt", 0)
        counters["cache.quarantined"] = store.quarantined - cache0.get(
            "quarantined", 0
        )
        counters["cache.put_errors"] = store.put_errors - cache0.get(
            "put_errors", 0
        )
    return counters
