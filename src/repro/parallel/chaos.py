"""Seeded, deterministic *infrastructure* fault injection.

:mod:`repro.faults` (PR 2) breaks the simulated chip — dead cores, stuck
actuators, telemetry blackouts — and the control stack degrades
gracefully.  This module applies the same discipline one layer up, to the
execution infrastructure that now carries every experiment: worker
processes, the IPC path, and the on-disk result cache.  A
:class:`ChaosPolicy` injects the faults a long-running experiment service
meets in production:

* **worker crash** — the worker process dies mid-cell (``os._exit``),
  breaking the process pool exactly like an OOM kill or segfault;
* **hang** — the worker stalls for :attr:`hang_seconds` before
  continuing, turning the cell into a straggler for the engine's
  soft-deadline watchdog;
* **transient error** — a :class:`ChaosTransientError` raised at cell
  start, modelling a transient pickling/IPC failure that a retry clears;
* **cache corruption** — a just-written cache entry has bytes flipped or
  is truncated (a torn write), which the cache's integrity verification
  must quarantine rather than serve;
* **disk full** — a cache write fails with ``OSError`` before the atomic
  rename, which the engine must absorb (a failed cache write may cost a
  recompute later, never the run).

Two invariants make chaos runs provable rather than merely exciting:

**Determinism.**  Every injection decision is a pure SHA-256 hash of
``(seed, fault kind, site identity, attempt)`` — independent of call
order, process, and wall clock — so the same policy injects the same
faults at the same sites in every run.  No numpy/random stream is
consumed (DET001-clean), and the policy pickles across the spawn boundary
unchanged.

**Termination.**  Worker-side faults (crash, hang, transient) are only
injected on attempts up to :attr:`max_attempt`; with a retry budget of at
least ``max_attempt``, every cell eventually gets a clean attempt.  Cache
faults cannot loop either: a corrupted entry is quarantined on the next
read, recomputed once, and the recomputed in-memory result is used
directly.

Chaos never touches the *simulation*: faults strike before or around
``run_controller``, so a cell that ultimately succeeds — however many
crashes, hangs and corruptions preceded it — produces a result
bit-identical to a clean run.  That is the contract the chaos soak test
(``tools/chaos_soak.py``, ``make chaos``) enforces.
"""

from __future__ import annotations

import hashlib
import os
import time
from dataclasses import dataclass, field
from typing import Dict, Optional

__all__ = [
    "CHAOS_CRASH_EXIT_CODE",
    "ChaosTransientError",
    "ChaosPolicy",
]

#: Exit status of a chaos-killed worker, distinguishable from interpreter
#: errors in worker logs (mirrors the test helpers' sentinel code idiom).
CHAOS_CRASH_EXIT_CODE = 44


class ChaosTransientError(RuntimeError):
    """Injected transient infrastructure error (IPC/pickling-style).

    Classified transient by :class:`repro.parallel.retry.RetryPolicy`, so
    the engine retries the cell with backoff instead of failing it.
    """


def _decision(seed: int, kind: str, key: str, attempt: int) -> float:
    """Deterministic uniform in ``[0, 1)`` for one injection site."""
    digest = hashlib.sha256(
        f"chaos;{seed};{kind};{key};{attempt}".encode()
    ).digest()
    return int.from_bytes(digest[:8], "big") / float(1 << 64)


@dataclass
class ChaosPolicy:
    """Deterministic infrastructure fault schedule, keyed by site identity.

    Rates are independent per-fault probabilities in ``[0, 1]``; a site's
    draw for each fault kind is a pure function of
    ``(seed, kind, site, attempt)``.  The policy is mutable only in its
    :attr:`counts` tally (injections observed *in this process* — worker
    processes keep their own copies, so parent-side counts cover exactly
    the parent-side faults: cache corruption and disk-full).

    Attributes
    ----------
    seed:
        Chaos schedule seed.  Same seed, same faults, every run.
    crash_rate, hang_rate, transient_rate:
        Worker-side fault probabilities, evaluated once per (cell,
        attempt) at cell start, in that precedence order (at most one
        fires per attempt).
    cache_corrupt_rate, cache_truncate_rate:
        Probability that a just-written cache entry is corrupted (one
        byte flipped) or truncated (torn write), evaluated per entry key.
    disk_full_rate:
        Probability that a cache write raises ``OSError`` before the
        atomic rename, evaluated per entry key and put-attempt.
    hang_seconds:
        Stall duration of an injected hang.  Keep it above the engine's
        soft deadline to exercise the watchdog, or below to exercise
        straggler tolerance.
    max_attempt:
        Worker-side faults are never injected on attempts beyond this,
        guaranteeing termination when the retry budget reaches it.
    """

    seed: int
    crash_rate: float = 0.0
    hang_rate: float = 0.0
    transient_rate: float = 0.0
    cache_corrupt_rate: float = 0.0
    cache_truncate_rate: float = 0.0
    disk_full_rate: float = 0.0
    hang_seconds: float = 1.0
    max_attempt: int = 2
    counts: Dict[str, int] = field(default_factory=dict)

    def __post_init__(self) -> None:
        for name in (
            "crash_rate",
            "hang_rate",
            "transient_rate",
            "cache_corrupt_rate",
            "cache_truncate_rate",
            "disk_full_rate",
        ):
            rate = getattr(self, name)
            if not 0.0 <= rate <= 1.0:
                raise ValueError(f"{name} must be in [0, 1], got {rate}")
        if self.hang_seconds < 0:
            raise ValueError(
                f"hang_seconds must be >= 0, got {self.hang_seconds}"
            )
        if self.max_attempt < 1:
            raise ValueError(f"max_attempt must be >= 1, got {self.max_attempt}")

    @classmethod
    def storm(
        cls, seed: int, rate: float = 0.2, hang_seconds: float = 0.0
    ) -> "ChaosPolicy":
        """Every fault class armed at the same ``rate`` (soak-test shape)."""
        return cls(
            seed=seed,
            crash_rate=rate,
            hang_rate=rate if hang_seconds > 0 else 0.0,
            transient_rate=rate,
            cache_corrupt_rate=rate,
            cache_truncate_rate=rate,
            disk_full_rate=rate,
            hang_seconds=hang_seconds,
        )

    # -- decision helpers -------------------------------------------------
    def should(self, kind: str, key: str, attempt: int = 0) -> bool:
        """Would fault ``kind`` fire at site ``key`` on ``attempt``?

        Pure and side-effect free — callable from tests and from both
        sides of the spawn boundary with identical answers.
        """
        rate = getattr(self, f"{kind}_rate")
        if rate <= 0.0:
            return False
        return _decision(self.seed, kind, key, attempt) < rate

    def _note(self, kind: str) -> None:
        self.counts[kind] = self.counts.get(kind, 0) + 1

    # -- worker-side injection -------------------------------------------
    def at_cell_start(self, label: str, attempt: int) -> None:
        """Apply at most one worker-side fault before a cell simulates.

        Called by the worker entry point (and the inline path) with the
        cell's label and 1-based attempt number.  Beyond
        :attr:`max_attempt` this is a no-op, so retries converge.
        """
        if attempt > self.max_attempt:
            return
        if self.should("crash", label, attempt):
            # A crash cannot be tallied or reported from this process;
            # the parent observes it as WorkerCrash and counts the retry.
            os._exit(CHAOS_CRASH_EXIT_CODE)
        if self.should("hang", label, attempt):
            self._note("hang")
            time.sleep(self.hang_seconds)
            return
        if self.should("transient", label, attempt):
            self._note("transient")
            raise ChaosTransientError(
                f"injected transient IPC fault (cell {label}, attempt {attempt})"
            )

    def inline_cell_start(self, label: str, attempt: int) -> None:
        """Inline (``jobs=1``) variant: only the faults that are safe in
        the calling process — a crash would kill the parent and a hang has
        no watchdog, so only transient errors fire."""
        if attempt > self.max_attempt:
            return
        if self.should("transient", label, attempt):
            self._note("transient")
            raise ChaosTransientError(
                f"injected transient fault (cell {label}, attempt {attempt})"
            )

    # -- cache-side injection --------------------------------------------
    def before_cache_put(self, key: str, attempt: int = 1) -> None:
        """Raise ``OSError`` (disk full) for a doomed write, else no-op."""
        if self.should("disk_full", key, attempt):
            self._note("disk_full")
            raise OSError(f"injected disk-full fault (cache entry {key[:12]})")

    def corrupt_cache_entry(self, key: str, path: "os.PathLike[str]") -> Optional[str]:
        """Corrupt or truncate the just-written entry at ``path``.

        Returns the injected fault kind (``"cache_corrupt"`` /
        ``"cache_truncate"``) or ``None``.  Corruption flips one byte in
        the middle of the file; truncation halves it — both torn-write
        shapes the cache's checksum verification must catch.
        """
        kind: Optional[str] = None
        if self.should("cache_corrupt", key):
            kind = "cache_corrupt"
        elif self.should("cache_truncate", key):
            kind = "cache_truncate"
        if kind is None:
            return None
        size = os.path.getsize(path)
        if size == 0:
            return None
        with open(path, "r+b") as fh:
            if kind == "cache_corrupt":
                fh.seek(size // 2)
                byte = fh.read(1)
                fh.seek(size // 2)
                fh.write(bytes([byte[0] ^ 0xFF]) if byte else b"\xff")
            else:
                fh.truncate(max(1, size // 2))
        self._note(kind)
        return kind

    def cache_injections(self) -> int:
        """Parent-side cache faults injected so far (corrupt + truncate).

        The chaos soak compares this against the cache's ``quarantined``
        counter: equality proves zero quarantine false positives.
        """
        return self.counts.get("cache_corrupt", 0) + self.counts.get(
            "cache_truncate", 0
        )
