"""Retry policy: error classification, bounded backoff, seeded jitter.

The engine's original retry loop granted every unsuccessful attempt the
same flat budget, which wastes attempts two ways: a *deterministic*
failure (a bad config, a contract violation) reproduces identically on
every retry, and a *transient* failure (worker crash, IPC hiccup,
chaos-injected fault) retried immediately can land on the same still-sick
resource.  :class:`RetryPolicy` fixes both:

* **Classification.**  Every failure is classified ``"transient"`` or
  ``"deterministic"`` from its exception type (plus an optional
  user-supplied classifier for domain-specific types).  Deterministic
  failures are never retried — the first attempt already proved the
  outcome.  Unknown types default to deterministic: retrying an error we
  cannot argue is transient only duplicates it.
* **Identical-failure cutoff.**  A transient-classified cell that fails
  twice with the *same* exception type and message is treated as
  deterministic in disguise and not retried a third time, regardless of
  remaining budget.  Engine-synthesized infrastructure failures
  (``WorkerCrash``, ``CellTimeout``, ``BrokenProcessPool``) are exempt:
  their messages are constants, so two occurrences carry no evidence of
  determinism — only the attempt budget bounds them.
* **Bounded exponential backoff with seeded jitter.**  Delay before the
  ``n``-th retry is ``base_delay * 2**(n-1)`` capped at ``max_delay``,
  scaled by a jitter factor drawn deterministically from
  ``(seed, cell label, attempt)`` — reproducible across runs, decorrelated
  across cells, and never a hidden RNG stream (the draw is a pure SHA-256
  hash, DET001-clean).

The policy is a frozen dataclass of scalars (plus an optional
*module-level* classifier function), so it pickles across the spawn
boundary unchanged — DET003 checks classifier construction sites the same
way it checks ``CellTask`` factories.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import Callable, Optional, Sequence, Tuple

__all__ = [
    "TRANSIENT",
    "DETERMINISTIC",
    "DEFAULT_TRANSIENT_TYPES",
    "CUTOFF_EXEMPT_TYPES",
    "RetryPolicy",
]

#: Classification labels (also the values carried by ``cell_retry`` /
#: ``cell_abandoned`` events and :attr:`CellFailure.classification`).
TRANSIENT = "transient"
DETERMINISTIC = "deterministic"

#: Exception type names (qualified-name suffixes) presumed transient:
#: infrastructure faults that a fresh attempt on a fresh worker can clear.
#: Everything else — ValueError from a bad cell, a contract violation, a
#: simulator bug — reproduces deterministically and is not retried.
DEFAULT_TRANSIENT_TYPES: Tuple[str, ...] = (
    "WorkerCrash",          # worker process died (pool rebuild)
    "CellTimeout",          # straggler cancelled by the soft-deadline watchdog
    "ChaosTransientError",  # injected IPC/pickling-style fault
    "BrokenProcessPool",
    "PicklingError",
    "UnpicklingError",
    "ConnectionError",
    "ConnectionResetError",
    "BrokenPipeError",
    "TimeoutError",
    "EOFError",
    "OSError",
    "IOError",
)

#: Types exempt from the identical-failure cutoff: engine-synthesized
#: infrastructure failures whose messages are constants, so a verbatim
#: repeat carries no evidence of determinism.  Only the attempt budget
#: bounds these.
CUTOFF_EXEMPT_TYPES: Tuple[str, ...] = (
    "WorkerCrash",
    "CellTimeout",
    "BrokenProcessPool",
)

#: Optional override hook: ``(error_type, message) -> classification or
#: None`` (None falls through to the built-in type table).  Must be a
#: module-level function — the policy crosses the spawn boundary.
Classifier = Callable[[str, str], Optional[str]]


def _uniform_hash(*identity: object) -> float:
    """Deterministic uniform draw in ``[0, 1)`` from an identity tuple.

    A pure function of its arguments — independent of call order, process,
    and ``PYTHONHASHSEED`` — so jitter never consumes or perturbs any
    simulation RNG stream.
    """
    digest = hashlib.sha256(
        ";".join(repr(part) for part in identity).encode()
    ).digest()
    return int.from_bytes(digest[:8], "big") / float(1 << 64)


@dataclass(frozen=True)
class RetryPolicy:
    """When and how the engine re-attempts an unsuccessful cell.

    Attributes
    ----------
    retries:
        Extra attempts granted after the first (``retries + 1`` attempts
        total); transient classification and the identical-failure cutoff
        may stop earlier, never later.
    base_delay:
        Backoff before the first retry, in seconds.  Doubles per retry.
    max_delay:
        Upper bound on any single backoff delay.
    jitter:
        Fractional jitter width: the delay is scaled by a factor drawn
        uniformly from ``[1 - jitter, 1 + jitter]``.
    seed:
        Seed of the deterministic jitter draw.
    transient_types:
        Exception type names (matched against the qualified name's last
        component) classified transient.
    classifier:
        Optional module-level ``(error_type, message) -> classification``
        override consulted first; returning ``None`` falls through to
        ``transient_types``.
    """

    retries: int = 1
    base_delay: float = 0.05
    max_delay: float = 2.0
    jitter: float = 0.5
    seed: int = 0
    transient_types: Tuple[str, ...] = DEFAULT_TRANSIENT_TYPES
    classifier: Optional[Classifier] = None

    def __post_init__(self) -> None:
        if self.retries < 0:
            raise ValueError(f"retries must be >= 0, got {self.retries}")
        if self.base_delay < 0:
            raise ValueError(f"base_delay must be >= 0, got {self.base_delay}")
        if self.max_delay < self.base_delay:
            raise ValueError(
                f"max_delay ({self.max_delay}) must be >= base_delay "
                f"({self.base_delay})"
            )
        if not 0 <= self.jitter <= 1:
            raise ValueError(f"jitter must be in [0, 1], got {self.jitter}")

    def classify(self, error_type: str, message: str) -> str:
        """``"transient"`` or ``"deterministic"`` for one failure record.

        ``error_type`` is a qualified exception name as shipped back by
        the engine (e.g. ``"ValueError"``, ``"WorkerCrash"``,
        ``"chaos.ChaosTransientError"``); matching uses the final dotted
        component so worker- and parent-side spellings agree.
        """
        if self.classifier is not None:
            verdict = self.classifier(error_type, message)
            if verdict is not None:
                if verdict not in (TRANSIENT, DETERMINISTIC):
                    raise ValueError(
                        f"classifier returned {verdict!r}; expected "
                        f"{TRANSIENT!r}, {DETERMINISTIC!r} or None"
                    )
                return verdict
        leaf = error_type.rpartition(".")[2]
        return TRANSIENT if leaf in self.transient_types else DETERMINISTIC

    def should_retry(
        self, attempts: int, history: Sequence[Tuple[str, str]]
    ) -> bool:
        """May a cell with ``attempts`` consumed and ``history`` of
        ``(error_type, message)`` failures have another attempt?

        Three gates, all of which must pass:

        * budget: ``attempts <= retries``;
        * classification: the latest failure must be transient;
        * the identical-failure cutoff: the latest failure must not
          repeat the previous one verbatim (a "transient" error that
          reproduces exactly is deterministic in disguise).
        """
        if attempts > self.retries or not history:
            return attempts <= self.retries and not history
        error_type, message = history[-1]
        if self.classify(error_type, message) != TRANSIENT:
            return False
        if (
            len(history) >= 2
            and history[-1] == history[-2]
            and error_type.rpartition(".")[2] not in CUTOFF_EXEMPT_TYPES
        ):
            return False
        return True

    def delay_before(self, attempt: int, label: str) -> float:
        """Backoff in seconds before re-attempt number ``attempt`` (2-based:
        the delay precedes the second attempt onwards) of cell ``label``."""
        if attempt < 2:
            return 0.0
        raw = min(self.max_delay, self.base_delay * 2.0 ** (attempt - 2))
        if raw <= 0.0:
            return 0.0
        factor = 1.0 - self.jitter + 2.0 * self.jitter * _uniform_hash(
            "retry-jitter", self.seed, label, attempt
        )
        return raw * factor
