"""Content-addressed result cache for experiment cells.

A cell's result is fully determined by its inputs: the
:class:`~repro.manycore.config.SystemConfig` (including technology
constants), the workload's phase content, the controller construction
recipe, the seed, the epoch count, the simulation options, and the code
version.  Hashing all of those into one stable key lets repeated
experiment invocations skip already-computed cells.

Key stability rules
-------------------
* Floats hash by ``float.hex()`` — exact bit patterns, no repr rounding.
* Dataclasses hash field-by-field under their qualified class name, so
  two config types with coincidentally equal fields cannot collide.
* Workloads hash by *content* (every phase's duration/intensities per
  core sequence), not by name — regenerating a workload from the same
  seed yields the same key, while any phase perturbation changes it.
* Controller factories must be *fingerprintable*: a ``functools.partial``
  over a module-level function (what
  :func:`repro.sim.runner.standard_controllers` returns) or a plain
  module-level function.  Closures and lambdas have no stable identity
  across processes and raise :class:`CacheKeyError`.
* :data:`CACHE_SALT` folds the cache format / simulation-code version
  into every key.  Bump it whenever a change makes previously cached
  trajectories stale (simulator physics, controller algorithms, result
  format); stale entries then simply stop being addressed.

Persistence uses :mod:`repro.sim.result_io` (one ``.npz`` per cell,
written atomically via rename), so cached cells are ordinary result files
that can be loaded, diffed, and re-rendered with the standard tooling.

Integrity
---------
The cache trusts nothing it reads off disk.  Every ``put`` records the
entry's SHA-256 content checksum in a sidecar file; every ``get``
re-verifies it (and the entry's loadability) before serving.  An entry
that fails verification — torn write, bit rot, chaos injection — is
*quarantined*: moved to ``<root>/quarantine/`` with ``cache.corrupt`` /
``cache.quarantined`` counters ticked and the miss recomputed, so a
corrupt entry is never silently mis-served and never fatal.  The
``repro cache`` CLI (``stats`` / ``verify`` / ``gc``) audits and prunes
the store offline.

Concurrent writers
------------------
The entry and its checksum sidecar are two separate atomic renames, so
two processes publishing the *same* key concurrently could interleave
them — ``np.savez`` embeds archive metadata, making each writer's bytes
distinct, and entry A + sidecar B reads as a checksum mismatch
(quarantine false positive) even though both writers held a correct
result.  ``put`` therefore takes a per-key lockfile
(``O_CREAT | O_EXCL``): the losing writer skips its write entirely —
results are content-addressed and deterministic, so the winner's bytes
serve every caller (``cache.put_contended`` counts the skips).  Readers
treat a mismatch observed while the key's lock is held as a plain miss
(publication in progress), and re-verify once before quarantining
otherwise, so the get/put window can never false-positive either.
"""

from __future__ import annotations

import dataclasses
import functools
import hashlib
import inspect
import os
import time
from pathlib import Path
from typing import Any, List, Mapping, Optional, Tuple, Union

import numpy as np

from repro.manycore.config import SystemConfig
from repro.obs.metrics import CounterRegistry
from repro.parallel.cells import RunCell
from repro.sim.results import SimulationResult
from repro.workloads.phases import Workload

from repro.parallel.chaos import ChaosPolicy

__all__ = [
    "CACHE_SALT",
    "CacheKeyError",
    "stable_hash",
    "workload_token",
    "controller_fingerprint",
    "cell_key",
    "CacheStats",
    "CacheAuditReport",
    "ResultCache",
]

#: Code-version salt folded into every cell key.  Bump the suffix whenever
#: simulator physics, controller algorithms, or the result format change in
#: a way that invalidates previously cached trajectories.
CACHE_SALT = "repro-cell-cache-v1"


class CacheKeyError(TypeError):
    """An object cannot be folded into a stable cache key."""


def _update(h: "hashlib._Hash", obj: Any) -> None:
    """Fold ``obj`` into hasher ``h`` with an unambiguous type-tagged encoding."""
    if obj is None:
        h.update(b"N;")
    elif isinstance(obj, bool):  # before int: bool is an int subclass
        h.update(b"b1;" if obj else b"b0;")
    elif isinstance(obj, (int, np.integer)):
        h.update(f"i{int(obj)};".encode())
    elif isinstance(obj, (float, np.floating)):
        h.update(f"f{float(obj).hex()};".encode())
    elif isinstance(obj, str):
        raw = obj.encode()
        h.update(f"s{len(raw)}:".encode())
        h.update(raw)
        h.update(b";")
    elif isinstance(obj, bytes):
        h.update(f"y{len(obj)}:".encode())
        h.update(obj)
        h.update(b";")
    elif isinstance(obj, np.ndarray):
        arr = np.ascontiguousarray(obj)
        h.update(f"a{arr.dtype.str}{arr.shape};".encode())
        h.update(arr.tobytes())
    elif dataclasses.is_dataclass(obj) and not isinstance(obj, type):
        cls = type(obj)
        h.update(f"d{cls.__module__}.{cls.__qualname__}(".encode())
        for f in dataclasses.fields(obj):
            _update(h, f.name)
            _update(h, getattr(obj, f.name))
        h.update(b");")
    elif isinstance(obj, Mapping):
        h.update(f"m{len(obj)}(".encode())
        try:
            items = sorted(obj.items())
        except TypeError as exc:
            raise CacheKeyError(
                f"mapping keys must be sortable for a stable key: {exc}"
            ) from exc
        for key, value in items:
            _update(h, key)
            _update(h, value)
        h.update(b");")
    elif isinstance(obj, (list, tuple)):
        h.update(f"l{len(obj)}(".encode())
        for item in obj:
            _update(h, item)
        h.update(b");")
    elif isinstance(obj, (set, frozenset)):
        h.update(f"S{len(obj)}(".encode())
        inner = sorted(stable_hash(item) for item in obj)
        for digest in inner:
            _update(h, digest)
        h.update(b");")
    else:
        raise CacheKeyError(
            f"cannot build a stable cache key from {type(obj).__module__}."
            f"{type(obj).__qualname__}; supported: scalars, str/bytes, "
            "ndarray, dataclasses, mappings, sequences, sets"
        )


def stable_hash(obj: Any) -> str:
    """SHA-256 hex digest of ``obj`` under a canonical, type-tagged encoding.

    Equal values (including structurally equal dataclasses and arrays)
    hash equal across processes and interpreter runs; any field
    perturbation — a different float bit pattern, a reordered tuple, a
    changed dataclass type — produces a different digest.
    """
    h = hashlib.sha256()
    _update(h, obj)
    return h.hexdigest()


def workload_token(workload: Workload) -> Tuple[Any, ...]:
    """Content token of a workload: name plus every phase of every sequence."""
    return (
        "workload",
        workload.name,
        tuple(
            tuple(
                (p.duration, p.mem_intensity, p.compute_intensity)
                for p in seq.phases
            )
            for seq in workload.sequences
        ),
    )


def controller_fingerprint(factory: Any) -> Tuple[Any, ...]:
    """Stable identity of a controller factory, for cache keys.

    Supported shapes:

    * ``functools.partial`` over a module-level function — fingerprinted by
      the function's qualified name plus bound args/kwargs (the shape
      :func:`repro.sim.runner.standard_controllers` produces);
    * a plain module-level function with no closure.

    Raises
    ------
    CacheKeyError
        For lambdas, closures, bound methods and other callables whose
        behaviour is not recoverable from a stable name.
    """
    if isinstance(factory, functools.partial):
        fp = controller_fingerprint(factory.func)
        return (
            "partial",
            fp,
            tuple(factory.args),
            tuple(sorted(factory.keywords.items())),
        )
    if inspect.isfunction(factory):
        qualname = factory.__qualname__
        if "<lambda>" in qualname or "<locals>" in qualname or factory.__closure__:
            raise CacheKeyError(
                f"controller factory {qualname!r} is a lambda/closure and has "
                "no stable cross-process identity; use functools.partial over "
                "a module-level function (as standard_controllers does) to "
                "enable result caching"
            )
        return ("function", factory.__module__, qualname)
    raise CacheKeyError(
        f"cannot fingerprint controller factory of type "
        f"{type(factory).__qualname__}; use functools.partial over a "
        "module-level function to enable result caching"
    )


def cell_key(
    cell: RunCell,
    cfg: SystemConfig,
    workload: Workload,
    factory: Any,
    sim_kwargs: Optional[Mapping[str, Any]] = None,
    salt: str = CACHE_SALT,
) -> str:
    """The content-addressed key of one run cell.

    ``cfg`` must already carry the cell's effective budget (the engine
    applies :attr:`RunCell.budget` before keying).  The key covers: the
    full system config (with technology constants), the workload's phase
    content, the controller fingerprint, the cell's seed/epochs, the
    simulation options, and the code-version ``salt``.
    """
    return stable_hash(
        (
            salt,
            cell,
            cfg,
            workload_token(workload),
            controller_fingerprint(factory),
            dict(sim_kwargs or {}),
        )
    )


def _sha256_file(path: Path) -> str:
    """SHA-256 hex digest of a file's bytes (streamed)."""
    h = hashlib.sha256()
    with open(path, "rb") as fh:
        for chunk in iter(lambda: fh.read(1 << 20), b""):
            h.update(chunk)
    return h.hexdigest()


@dataclasses.dataclass(frozen=True)
class CacheStats:
    """Point-in-time inventory of a cache directory."""

    entries: int
    total_bytes: int
    quarantined_entries: int
    hits: int
    misses: int
    corrupt: int
    quarantined: int


@dataclasses.dataclass(frozen=True)
class CacheAuditReport:
    """Outcome of :meth:`ResultCache.verify` over every entry."""

    checked: int
    ok: int
    quarantined: Tuple[str, ...]
    healed: int

    @property
    def clean(self) -> bool:
        return not self.quarantined


class ResultCache:
    """Directory of cached cell results, addressed by :func:`cell_key`.

    Entries are ``.npz`` files written by
    :func:`repro.sim.result_io.save_result` under a two-level fan-out
    (``root/ab/abcdef….npz``) with a ``.sha256`` content-checksum sidecar.
    Writes are atomic (temp file + rename) so concurrent workers and
    interrupted runs can never leave a torn entry under the final name;
    reads verify the checksum and loadability before serving, and any
    entry failing verification is moved to ``<root>/quarantine/`` — never
    silently mis-served, never deleted without trace, never fatal.

    Parameters
    ----------
    root:
        Cache directory (created if absent).
    metrics:
        Optional shared :class:`~repro.obs.metrics.CounterRegistry`; the
        cache tracks ``cache.hits`` / ``cache.misses`` / ``cache.corrupt``
        / ``cache.quarantined`` / ``cache.put_errors`` in it.
    chaos:
        Optional :class:`~repro.parallel.chaos.ChaosPolicy` injecting
        disk-full and corruption faults into this cache's writes (test
        and soak harness use only).
    """

    #: Subdirectory (under ``root``) quarantined entries are moved to.
    QUARANTINE_DIR = "quarantine"

    #: Age (seconds) past which another writer's put lock is presumed
    #: abandoned (its process died mid-publish) and broken.  Far above any
    #: real publish duration — a put writes one ``.npz`` and one sidecar.
    PUT_LOCK_STALE_SECONDS: float = 300.0

    def __init__(
        self,
        root: Union[str, Path],
        metrics: "CounterRegistry | None" = None,
        chaos: Optional[ChaosPolicy] = None,
    ) -> None:
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)
        self.metrics = metrics if metrics is not None else CounterRegistry()
        self.chaos = chaos
        #: ``(key, reason)`` records of quarantines performed by this
        #: instance, in occurrence order.  The engine drains it to emit
        #: ``cache_quarantine`` events; the CLI renders it after a verify.
        self.quarantine_log: List[Tuple[str, str]] = []
        self.metrics.set_gauge("cache.hits", 0)
        self.metrics.set_gauge("cache.misses", 0)
        self.metrics.set_gauge("cache.corrupt", 0)
        self.metrics.set_gauge("cache.quarantined", 0)
        self.metrics.set_gauge("cache.put_errors", 0)
        self.metrics.set_gauge("cache.put_contended", 0)

    @property
    def hits(self) -> int:
        """Lookups served from disk (compatibility view over ``metrics``)."""
        return int(self.metrics.get("cache.hits"))

    @property
    def misses(self) -> int:
        """Lookups that found no (valid) entry."""
        return int(self.metrics.get("cache.misses"))

    @property
    def corrupt(self) -> int:
        """Entries that failed integrity verification."""
        return int(self.metrics.get("cache.corrupt"))

    @property
    def quarantined(self) -> int:
        """Entries moved to the quarantine directory."""
        return int(self.metrics.get("cache.quarantined"))

    @property
    def put_errors(self) -> int:
        """Writes absorbed by :meth:`put_safe` (disk full etc.)."""
        return int(self.metrics.get("cache.put_errors"))

    @property
    def put_contended(self) -> int:
        """Puts skipped because another writer held the key's lock."""
        return int(self.metrics.get("cache.put_contended"))

    def path_for(self, key: str) -> Path:
        """Filesystem path the entry for ``key`` lives at."""
        return self.root / key[:2] / f"{key}.npz"

    def checksum_path(self, key: str) -> Path:
        """Sidecar path holding the entry's SHA-256 content checksum."""
        return self.root / key[:2] / f"{key}.sha256"

    def lock_path(self, key: str) -> Path:
        """Lockfile path serializing writers of ``key`` (see :meth:`put`)."""
        return self.root / key[:2] / f".{key}.lock"

    @property
    def quarantine_root(self) -> Path:
        return self.root / self.QUARANTINE_DIR

    def iter_entries(self) -> List[Path]:
        """Live entry paths (quarantine excluded), sorted for determinism."""
        return sorted(
            p for p in self.root.glob("??/*.npz") if not p.name.startswith(".")
        )

    # -- integrity ---------------------------------------------------------
    def _quarantine(self, key: str, reason: str) -> None:
        """Move a failed entry (and its sidecar) out of the addressable
        store; counted, logged, and recoverable for post-mortems."""
        self.quarantine_root.mkdir(parents=True, exist_ok=True)
        path = self.path_for(key)
        try:
            os.replace(path, self.quarantine_root / path.name)
        except OSError:
            # Renaming across a sick filesystem may itself fail; removal
            # is the fallback that still un-addresses the bad bytes.
            path.unlink(missing_ok=True)
        self.checksum_path(key).unlink(missing_ok=True)
        self.metrics.inc("cache.corrupt")
        self.metrics.inc("cache.quarantined")
        self.quarantine_log.append((key, reason))

    def _verify_entry(self, key: str) -> Optional[str]:
        """Why the entry for ``key`` is invalid, or ``None`` if it serves.

        Checks the checksum sidecar (when present) and loadability.  Does
        not quarantine — callers decide.
        """
        from repro.sim.result_io import load_result

        path = self.path_for(key)
        digest_path = self.checksum_path(key)
        if digest_path.exists():
            try:
                expected = digest_path.read_text(encoding="utf-8").strip()
            except OSError:
                expected = ""
            if _sha256_file(path) != expected:
                return "checksum-mismatch"
        try:
            load_result(path)
        except Exception:
            # Unreadable/truncated/stale-format: quantified by the caller,
            # never re-raised — a sick entry must cost a recompute, not
            # the run.
            return "unreadable"
        return None

    def get(self, key: str) -> Optional[SimulationResult]:
        """The cached result for ``key``, or ``None`` on a miss.

        A present-but-invalid entry (checksum mismatch, unreadable file)
        is quarantined and reported as a miss: ``cache.corrupt`` and
        ``cache.quarantined`` tick, the bad bytes move to
        ``quarantine/``, and the caller recomputes the cell.
        """
        # Imported lazily: result_io is cheap, but keeping the dependency
        # out of module import keeps cache-key helpers usable standalone.
        from repro.sim.result_io import load_result

        path = self.path_for(key)
        if not path.exists():
            self.metrics.inc("cache.misses")
            return None
        digest_path = self.checksum_path(key)
        if digest_path.exists():
            try:
                expected = digest_path.read_text(encoding="utf-8").strip()
            except OSError:
                expected = ""
            if _sha256_file(path) != expected:
                if self.put_in_progress(key):
                    # A writer is republishing this key right now; the
                    # transient entry/sidecar skew is publication in
                    # progress, not corruption.  Plain miss — the caller
                    # recomputes (or retries) and nothing is quarantined.
                    self.metrics.inc("cache.misses")
                    return None
                # Re-verify once with fresh reads: a writer may have
                # completed between our entry hash and sidecar read.
                # Only a *stable* mismatch is corruption.
                try:
                    expected = digest_path.read_text(encoding="utf-8").strip()
                except OSError:
                    expected = ""
                if not path.exists() or _sha256_file(path) != expected:
                    self._quarantine(key, "checksum-mismatch")
                    self.metrics.inc("cache.misses")
                    return None
        try:
            result = load_result(path)
        except Exception:
            # Torn write or stale format that still checksummed (legacy
            # entries have no sidecar): quarantined, counted, recomputed —
            # never served, never fatal.
            self._quarantine(key, "unreadable")
            self.metrics.inc("cache.misses")
            return None
        self.metrics.inc("cache.hits")
        return result

    # -- writes ------------------------------------------------------------
    def _lock_age(self, key: str) -> Optional[float]:
        """Seconds since the key's put lock was created, or ``None`` when
        no lock exists (or it vanished under us)."""
        try:
            created = self.lock_path(key).stat().st_mtime
        except OSError:
            return None
        # Wall clock by necessity: lockfile mtimes are wall-clock stamps
        # shared across processes, which time.monotonic() cannot compare
        # against.  Operational metadata only — never timing measurement,
        # never part of a cache key.
        return time.time() - created  # noqa: REPRO006

    def _acquire_put_lock(self, key: str) -> Optional[int]:
        """Try to become the key's sole writer; ``None`` when another
        writer holds a live lock.  A lock older than
        :attr:`PUT_LOCK_STALE_SECONDS` is presumed abandoned and broken.
        """
        lock = self.lock_path(key)
        for _ in range(2):
            try:
                return os.open(lock, os.O_CREAT | os.O_EXCL | os.O_WRONLY)
            except FileExistsError:
                age = self._lock_age(key)
                if age is None:
                    # The holder released between our open and stat;
                    # retry once.
                    continue
                if age <= self.PUT_LOCK_STALE_SECONDS:
                    return None
                # Abandoned lock (writer died mid-publish): break it and
                # retry the exclusive create.
                lock.unlink(missing_ok=True)
        return None

    def put_in_progress(self, key: str) -> bool:
        """Whether another writer currently holds the key's put lock."""
        age = self._lock_age(key)
        return age is not None and age <= self.PUT_LOCK_STALE_SECONDS

    def put(self, key: str, result: SimulationResult) -> Path:
        """Persist ``result`` under ``key`` (atomic), returning its path.

        Exactly one concurrent writer per key: the entry and its checksum
        sidecar are two separate renames, so unserialized same-key
        writers could interleave them into a mismatched (quarantine
        false-positive) pair.  The loser of the per-key lockfile race
        skips its write — results are content-addressed, so the winner's
        bytes are equally correct for every caller — and the skip is
        counted in ``cache.put_contended``.

        Raises ``OSError`` on write failure (disk full, permissions);
        callers that must survive storage faults use :meth:`put_safe`.
        """
        from repro.sim.result_io import save_result

        path = self.path_for(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        lock_fd = self._acquire_put_lock(key)
        if lock_fd is None:
            self.metrics.inc("cache.put_contended")
            return path
        try:
            if self.chaos is not None:
                self.chaos.before_cache_put(key)
            # The temp name keeps the .npz suffix: numpy's savez would
            # otherwise append one and the rename source would not exist.
            tmp = path.parent / f".{path.stem}.{os.getpid()}.tmp.npz"
            try:
                save_result(result, tmp)
                digest = _sha256_file(tmp)
                os.replace(tmp, path)
            finally:
                tmp.unlink(missing_ok=True)
            self._write_checksum(key, digest)
            if self.chaos is not None:
                self.chaos.corrupt_cache_entry(key, path)
        finally:
            os.close(lock_fd)
            self.lock_path(key).unlink(missing_ok=True)
        return path

    def _write_checksum(self, key: str, digest: str) -> None:
        digest_path = self.checksum_path(key)
        tmp = digest_path.parent / f".{digest_path.stem}.{os.getpid()}.tmp.sha256"
        try:
            tmp.write_text(digest + "\n", encoding="utf-8")
            os.replace(tmp, digest_path)
        finally:
            tmp.unlink(missing_ok=True)

    def put_safe(self, key: str, result: SimulationResult) -> Optional[Path]:
        """Best-effort :meth:`put`: storage faults are counted
        (``cache.put_errors``) and absorbed, never raised.  A failed cache
        write costs a recompute on the next invocation — not the run."""
        try:
            return self.put(key, result)
        except OSError:
            self.metrics.inc("cache.put_errors")
            return None

    # -- audit / maintenance ----------------------------------------------
    def stats(self) -> CacheStats:
        """Inventory of the store (walks the directory)."""
        entries = self.iter_entries()
        return CacheStats(
            entries=len(entries),
            total_bytes=sum(p.stat().st_size for p in entries),
            quarantined_entries=(
                sum(1 for _ in self.quarantine_root.glob("*.npz"))
                if self.quarantine_root.is_dir()
                else 0
            ),
            hits=self.hits,
            misses=self.misses,
            corrupt=self.corrupt,
            quarantined=self.quarantined,
        )

    def verify(self, heal: bool = True) -> CacheAuditReport:
        """Re-checksum and load-check every entry; quarantine failures.

        Entries predating the checksum sidecar (legacy stores) are
        verified by loadability alone; with ``heal=True`` a sidecar is
        written for them so future verification is byte-exact.
        """
        checked = ok = healed = 0
        bad: List[str] = []
        for path in self.iter_entries():
            key = path.stem
            checked += 1
            reason = self._verify_entry(key)
            if reason is not None:
                self._quarantine(key, reason)
                bad.append(key)
                continue
            ok += 1
            if heal and not self.checksum_path(key).exists():
                self._write_checksum(key, _sha256_file(path))
                healed += 1
        return CacheAuditReport(
            checked=checked, ok=ok, quarantined=tuple(bad), healed=healed
        )

    def gc(
        self,
        max_entries: Optional[int] = None,
        max_bytes: Optional[int] = None,
        purge_quarantine: bool = False,
    ) -> Tuple[int, int]:
        """Prune the store to the given limits, oldest entries first.

        Returns ``(entries_removed, bytes_freed)`` (quarantine purges
        included).  With no limits and ``purge_quarantine=False`` this is
        a no-op.
        """
        removed = freed = 0
        if purge_quarantine and self.quarantine_root.is_dir():
            for path in sorted(self.quarantine_root.iterdir()):
                if path.is_file():
                    freed += path.stat().st_size
                    removed += 1
                    path.unlink()
        if max_entries is None and max_bytes is None:
            return removed, freed
        entries = self.iter_entries()
        # Oldest first: mtime is operational metadata (never part of a
        # cache key), so using it to order eviction is DET004-safe.
        entries.sort(key=lambda p: (p.stat().st_mtime, p.name))
        total = sum(p.stat().st_size for p in entries)
        count = len(entries)
        for path in entries:
            over_entries = max_entries is not None and count > max_entries
            over_bytes = max_bytes is not None and total > max_bytes
            if not over_entries and not over_bytes:
                break
            size = path.stat().st_size
            path.unlink()
            self.checksum_path(path.stem).unlink(missing_ok=True)
            total -= size
            count -= 1
            removed += 1
            freed += size
        return removed, freed

    def __len__(self) -> int:
        return len(self.iter_entries())

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"ResultCache(root={str(self.root)!r}, entries={len(self)}, "
            f"hits={self.hits}, misses={self.misses}, "
            f"quarantined={self.quarantined})"
        )
