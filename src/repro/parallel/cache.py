"""Content-addressed result cache for experiment cells.

A cell's result is fully determined by its inputs: the
:class:`~repro.manycore.config.SystemConfig` (including technology
constants), the workload's phase content, the controller construction
recipe, the seed, the epoch count, the simulation options, and the code
version.  Hashing all of those into one stable key lets repeated
experiment invocations skip already-computed cells.

Key stability rules
-------------------
* Floats hash by ``float.hex()`` — exact bit patterns, no repr rounding.
* Dataclasses hash field-by-field under their qualified class name, so
  two config types with coincidentally equal fields cannot collide.
* Workloads hash by *content* (every phase's duration/intensities per
  core sequence), not by name — regenerating a workload from the same
  seed yields the same key, while any phase perturbation changes it.
* Controller factories must be *fingerprintable*: a ``functools.partial``
  over a module-level function (what
  :func:`repro.sim.runner.standard_controllers` returns) or a plain
  module-level function.  Closures and lambdas have no stable identity
  across processes and raise :class:`CacheKeyError`.
* :data:`CACHE_SALT` folds the cache format / simulation-code version
  into every key.  Bump it whenever a change makes previously cached
  trajectories stale (simulator physics, controller algorithms, result
  format); stale entries then simply stop being addressed.

Persistence uses :mod:`repro.sim.result_io` (one ``.npz`` per cell,
written atomically via rename), so cached cells are ordinary result files
that can be loaded, diffed, and re-rendered with the standard tooling.
"""

from __future__ import annotations

import dataclasses
import functools
import hashlib
import inspect
import os
from pathlib import Path
from typing import Any, Mapping, Optional, Tuple, Union

import numpy as np

from repro.manycore.config import SystemConfig
from repro.obs.metrics import CounterRegistry
from repro.parallel.cells import RunCell
from repro.sim.results import SimulationResult
from repro.workloads.phases import Workload

__all__ = [
    "CACHE_SALT",
    "CacheKeyError",
    "stable_hash",
    "workload_token",
    "controller_fingerprint",
    "cell_key",
    "ResultCache",
]

#: Code-version salt folded into every cell key.  Bump the suffix whenever
#: simulator physics, controller algorithms, or the result format change in
#: a way that invalidates previously cached trajectories.
CACHE_SALT = "repro-cell-cache-v1"


class CacheKeyError(TypeError):
    """An object cannot be folded into a stable cache key."""


def _update(h: "hashlib._Hash", obj: Any) -> None:
    """Fold ``obj`` into hasher ``h`` with an unambiguous type-tagged encoding."""
    if obj is None:
        h.update(b"N;")
    elif isinstance(obj, bool):  # before int: bool is an int subclass
        h.update(b"b1;" if obj else b"b0;")
    elif isinstance(obj, (int, np.integer)):
        h.update(f"i{int(obj)};".encode())
    elif isinstance(obj, (float, np.floating)):
        h.update(f"f{float(obj).hex()};".encode())
    elif isinstance(obj, str):
        raw = obj.encode()
        h.update(f"s{len(raw)}:".encode())
        h.update(raw)
        h.update(b";")
    elif isinstance(obj, bytes):
        h.update(f"y{len(obj)}:".encode())
        h.update(obj)
        h.update(b";")
    elif isinstance(obj, np.ndarray):
        arr = np.ascontiguousarray(obj)
        h.update(f"a{arr.dtype.str}{arr.shape};".encode())
        h.update(arr.tobytes())
    elif dataclasses.is_dataclass(obj) and not isinstance(obj, type):
        cls = type(obj)
        h.update(f"d{cls.__module__}.{cls.__qualname__}(".encode())
        for f in dataclasses.fields(obj):
            _update(h, f.name)
            _update(h, getattr(obj, f.name))
        h.update(b");")
    elif isinstance(obj, Mapping):
        h.update(f"m{len(obj)}(".encode())
        try:
            items = sorted(obj.items())
        except TypeError as exc:
            raise CacheKeyError(
                f"mapping keys must be sortable for a stable key: {exc}"
            ) from exc
        for key, value in items:
            _update(h, key)
            _update(h, value)
        h.update(b");")
    elif isinstance(obj, (list, tuple)):
        h.update(f"l{len(obj)}(".encode())
        for item in obj:
            _update(h, item)
        h.update(b");")
    elif isinstance(obj, (set, frozenset)):
        h.update(f"S{len(obj)}(".encode())
        inner = sorted(stable_hash(item) for item in obj)
        for digest in inner:
            _update(h, digest)
        h.update(b");")
    else:
        raise CacheKeyError(
            f"cannot build a stable cache key from {type(obj).__module__}."
            f"{type(obj).__qualname__}; supported: scalars, str/bytes, "
            "ndarray, dataclasses, mappings, sequences, sets"
        )


def stable_hash(obj: Any) -> str:
    """SHA-256 hex digest of ``obj`` under a canonical, type-tagged encoding.

    Equal values (including structurally equal dataclasses and arrays)
    hash equal across processes and interpreter runs; any field
    perturbation — a different float bit pattern, a reordered tuple, a
    changed dataclass type — produces a different digest.
    """
    h = hashlib.sha256()
    _update(h, obj)
    return h.hexdigest()


def workload_token(workload: Workload) -> Tuple[Any, ...]:
    """Content token of a workload: name plus every phase of every sequence."""
    return (
        "workload",
        workload.name,
        tuple(
            tuple(
                (p.duration, p.mem_intensity, p.compute_intensity)
                for p in seq.phases
            )
            for seq in workload.sequences
        ),
    )


def controller_fingerprint(factory: Any) -> Tuple[Any, ...]:
    """Stable identity of a controller factory, for cache keys.

    Supported shapes:

    * ``functools.partial`` over a module-level function — fingerprinted by
      the function's qualified name plus bound args/kwargs (the shape
      :func:`repro.sim.runner.standard_controllers` produces);
    * a plain module-level function with no closure.

    Raises
    ------
    CacheKeyError
        For lambdas, closures, bound methods and other callables whose
        behaviour is not recoverable from a stable name.
    """
    if isinstance(factory, functools.partial):
        fp = controller_fingerprint(factory.func)
        return (
            "partial",
            fp,
            tuple(factory.args),
            tuple(sorted(factory.keywords.items())),
        )
    if inspect.isfunction(factory):
        qualname = factory.__qualname__
        if "<lambda>" in qualname or "<locals>" in qualname or factory.__closure__:
            raise CacheKeyError(
                f"controller factory {qualname!r} is a lambda/closure and has "
                "no stable cross-process identity; use functools.partial over "
                "a module-level function (as standard_controllers does) to "
                "enable result caching"
            )
        return ("function", factory.__module__, qualname)
    raise CacheKeyError(
        f"cannot fingerprint controller factory of type "
        f"{type(factory).__qualname__}; use functools.partial over a "
        "module-level function to enable result caching"
    )


def cell_key(
    cell: RunCell,
    cfg: SystemConfig,
    workload: Workload,
    factory: Any,
    sim_kwargs: Optional[Mapping[str, Any]] = None,
    salt: str = CACHE_SALT,
) -> str:
    """The content-addressed key of one run cell.

    ``cfg`` must already carry the cell's effective budget (the engine
    applies :attr:`RunCell.budget` before keying).  The key covers: the
    full system config (with technology constants), the workload's phase
    content, the controller fingerprint, the cell's seed/epochs, the
    simulation options, and the code-version ``salt``.
    """
    return stable_hash(
        (
            salt,
            cell,
            cfg,
            workload_token(workload),
            controller_fingerprint(factory),
            dict(sim_kwargs or {}),
        )
    )


class ResultCache:
    """Directory of cached cell results, addressed by :func:`cell_key`.

    Entries are ``.npz`` files written by
    :func:`repro.sim.result_io.save_result` under a two-level fan-out
    (``root/ab/abcdef….npz``).  Writes are atomic (temp file + rename) so
    concurrent workers and interrupted runs can never leave a torn entry;
    unreadable entries are treated as misses and deleted.
    """

    def __init__(
        self, root: Union[str, Path], metrics: "CounterRegistry | None" = None
    ) -> None:
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)
        self.metrics = metrics if metrics is not None else CounterRegistry()
        self.metrics.set_gauge("cache.hits", 0)
        self.metrics.set_gauge("cache.misses", 0)

    @property
    def hits(self) -> int:
        """Lookups served from disk (compatibility view over ``metrics``)."""
        return int(self.metrics.get("cache.hits"))

    @property
    def misses(self) -> int:
        """Lookups that found no (readable) entry."""
        return int(self.metrics.get("cache.misses"))

    def path_for(self, key: str) -> Path:
        """Filesystem path the entry for ``key`` lives at."""
        return self.root / key[:2] / f"{key}.npz"

    def get(self, key: str) -> Optional[SimulationResult]:
        """The cached result for ``key``, or ``None`` on a miss."""
        # Imported lazily: result_io is cheap, but keeping the dependency
        # out of module import keeps cache-key helpers usable standalone.
        from repro.sim.result_io import load_result

        path = self.path_for(key)
        if not path.exists():
            self.metrics.inc("cache.misses")
            return None
        try:
            result = load_result(path)
        except Exception:
            # A torn or stale-format entry is a miss, not an error: drop it
            # so the slot is recomputed and rewritten cleanly.
            path.unlink(missing_ok=True)
            self.metrics.inc("cache.misses")
            return None
        self.metrics.inc("cache.hits")
        return result

    def put(self, key: str, result: SimulationResult) -> Path:
        """Persist ``result`` under ``key`` (atomic), returning its path."""
        from repro.sim.result_io import save_result

        path = self.path_for(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        # The temp name keeps the .npz suffix: numpy's savez would otherwise
        # append one and the rename source would not exist.
        tmp = path.parent / f".{path.stem}.{os.getpid()}.tmp.npz"
        try:
            save_result(result, tmp)
            os.replace(tmp, path)
        finally:
            tmp.unlink(missing_ok=True)
        return path

    def __len__(self) -> int:
        return sum(1 for _ in self.root.glob("*/*.npz"))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"ResultCache(root={str(self.root)!r}, entries={len(self)}, "
            f"hits={self.hits}, misses={self.misses})"
        )
