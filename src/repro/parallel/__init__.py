"""Parallel sharded execution of experiment grids, with result caching.

Public surface of the ``repro.parallel`` package:

* :class:`~repro.parallel.cells.RunCell` and the plan/merge/shard helpers
  — the pure grid bookkeeping;
* :func:`~repro.parallel.cache.cell_key`, :func:`~repro.parallel.cache.stable_hash`
  and :class:`~repro.parallel.cache.ResultCache` — content-addressed
  persistence of cell results;
* :func:`~repro.parallel.engine.execute_cells` /
  :func:`~repro.parallel.engine.execute_cells_report` with
  :class:`~repro.parallel.engine.CellTask` /
  :class:`~repro.parallel.engine.CellFailure` /
  :class:`~repro.parallel.engine.ExecutionReport` — the process-pool
  engine, with partial-results mode;
* :class:`~repro.parallel.retry.RetryPolicy` — transient/deterministic
  error classification and bounded, seeded backoff;
* :class:`~repro.parallel.chaos.ChaosPolicy` — seeded, deterministic
  infrastructure fault injection (worker crash/hang/transient errors,
  cache corruption, disk-full);
* :class:`~repro.parallel.journal.CampaignJournal` — append-only
  checkpoint log giving campaigns kill-and-resume;
* :func:`~repro.parallel.compare.trace_equal` /
  :func:`~repro.parallel.compare.assert_trace_equal` — the bit-level
  equality the determinism guarantee is stated in.

Most callers never touch these directly: :func:`repro.sim.runner.run_suite`
and :func:`repro.sim.runner.run_budget_sweep` accept ``jobs=`` / ``cache=``
and route through this package.  See ``docs/parallel.md``.
"""

from repro.parallel.cache import (
    CACHE_SALT,
    CacheAuditReport,
    CacheKeyError,
    CacheStats,
    ResultCache,
    cell_key,
    controller_fingerprint,
    stable_hash,
    workload_token,
)
from repro.parallel.chaos import ChaosPolicy, ChaosTransientError
from repro.parallel.cells import (
    RunCell,
    merge_shards,
    merge_suite,
    merge_sweep,
    plan_suite,
    plan_sweep,
    split_shards,
)
from repro.parallel.compare import assert_trace_equal, trace_equal
from repro.parallel.engine import (
    CellFailure,
    CellTask,
    ExecutionReport,
    ParallelExecutionError,
    execute_cells,
    execute_cells_report,
)
from repro.parallel.journal import CampaignJournal, JournalError, campaign_id
from repro.parallel.retry import (
    DETERMINISTIC,
    TRANSIENT,
    RetryPolicy,
)

__all__ = [
    "CACHE_SALT",
    "CacheAuditReport",
    "CacheKeyError",
    "CacheStats",
    "CampaignJournal",
    "CellFailure",
    "CellTask",
    "ChaosPolicy",
    "ChaosTransientError",
    "DETERMINISTIC",
    "ExecutionReport",
    "JournalError",
    "ParallelExecutionError",
    "ResultCache",
    "RetryPolicy",
    "RunCell",
    "TRANSIENT",
    "assert_trace_equal",
    "campaign_id",
    "cell_key",
    "controller_fingerprint",
    "execute_cells",
    "execute_cells_report",
    "merge_shards",
    "merge_suite",
    "merge_sweep",
    "plan_suite",
    "plan_sweep",
    "split_shards",
    "stable_hash",
    "trace_equal",
    "workload_token",
]
