"""Parallel sharded execution of experiment grids, with result caching.

Public surface of the ``repro.parallel`` package:

* :class:`~repro.parallel.cells.RunCell` and the plan/merge/shard helpers
  — the pure grid bookkeeping;
* :func:`~repro.parallel.cache.cell_key`, :func:`~repro.parallel.cache.stable_hash`
  and :class:`~repro.parallel.cache.ResultCache` — content-addressed
  persistence of cell results;
* :func:`~repro.parallel.engine.execute_cells` with
  :class:`~repro.parallel.engine.CellTask` /
  :class:`~repro.parallel.engine.CellFailure` — the process-pool engine;
* :func:`~repro.parallel.compare.trace_equal` /
  :func:`~repro.parallel.compare.assert_trace_equal` — the bit-level
  equality the determinism guarantee is stated in.

Most callers never touch these directly: :func:`repro.sim.runner.run_suite`
and :func:`repro.sim.runner.run_budget_sweep` accept ``jobs=`` / ``cache=``
and route through this package.  See ``docs/parallel.md``.
"""

from repro.parallel.cache import (
    CACHE_SALT,
    CacheKeyError,
    ResultCache,
    cell_key,
    controller_fingerprint,
    stable_hash,
    workload_token,
)
from repro.parallel.cells import (
    RunCell,
    merge_shards,
    merge_suite,
    merge_sweep,
    plan_suite,
    plan_sweep,
    split_shards,
)
from repro.parallel.compare import assert_trace_equal, trace_equal
from repro.parallel.engine import (
    CellFailure,
    CellTask,
    ParallelExecutionError,
    execute_cells,
)

__all__ = [
    "CACHE_SALT",
    "CacheKeyError",
    "CellFailure",
    "CellTask",
    "ParallelExecutionError",
    "ResultCache",
    "RunCell",
    "assert_trace_equal",
    "cell_key",
    "controller_fingerprint",
    "execute_cells",
    "merge_shards",
    "merge_suite",
    "merge_sweep",
    "plan_suite",
    "plan_sweep",
    "split_shards",
    "stable_hash",
    "trace_equal",
    "workload_token",
]
