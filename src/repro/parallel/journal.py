"""Campaign journal: checkpoint/resume for sharded experiment campaigns.

A *campaign* is one planned grid of run cells (a suite or budget sweep).
The journal is an append-only JSONL file recording the campaign's
identity and every cell's settlement, flushed line-by-line so a killed
process loses at most the in-flight cells.  On restart with the same
journal (and the campaign's result cache), the engine completes only the
missing cells — and because every cell is deterministic and the cache is
content-addressed, the resumed campaign's results are bit-identical to an
uninterrupted run.

Design rules
------------
* **The journal is bookkeeping, never a source of results.**  Cell
  results live in the :class:`~repro.parallel.cache.ResultCache`; a
  journal entry saying "done" is advisory, and a cell whose cache entry
  has meanwhile been lost or quarantined is simply recomputed.  Journal
  loss therefore costs recomputation, never correctness.
* **Campaign identity is content-addressed.**  The campaign id is the
  :func:`~repro.parallel.cache.stable_hash` of the ordered cell-key list,
  so a journal can never silently resume a *different* campaign: any
  change to the grid, config, workloads, code salt, or simulation options
  changes every cell key and with it the campaign id.
* **Torn tails are expected.**  A crash can truncate the final line; the
  reader discards any trailing partial record instead of failing, which
  is exactly the at-most-one-cell loss the flush discipline promises.
* **No wall clock.**  Journal records carry no timestamps, so two
  journals of the same campaign are diffable and replay order is the only
  nondeterminism (records land in completion order).
"""

from __future__ import annotations

import json
import os
from pathlib import Path
from typing import IO, Any, Dict, List, Optional, Sequence, Set, Union

from repro.parallel.cache import stable_hash

__all__ = ["JOURNAL_SCHEMA_VERSION", "JournalError", "CampaignJournal", "campaign_id"]

#: Bump on any backwards-incompatible change to journal records.
JOURNAL_SCHEMA_VERSION = 1


class JournalError(RuntimeError):
    """The journal cannot serve this campaign (mismatch or malformed head)."""


def campaign_id(cell_keys: Sequence[str]) -> str:
    """Content-addressed identity of one planned campaign.

    A pure function of the ordered cell-key list — and therefore of
    everything a cell key covers (config, workloads, controller recipes,
    seeds, epochs, simulation options, code salt).
    """
    return stable_hash(("campaign", tuple(cell_keys)))


class CampaignJournal:
    """Append-only JSONL checkpoint log of one campaign's cell settlements.

    Lifecycle: construct over a path, :meth:`begin` with the planned
    campaign id (reads any prior state, validates identity, opens for
    append), then :meth:`record_done` / :meth:`record_failed` as cells
    settle, then :meth:`close` (or use as a context manager).  The engine
    drives all of this when ``execute_cells(journal=...)`` is given.
    """

    def __init__(self, path: Union[str, Path]) -> None:
        self.path = Path(path)
        self._fh: Optional[IO[str]] = None
        self.completed: Set[str] = set()
        self.failed: Set[str] = set()
        self.campaign: Optional[str] = None

    # -- reading -----------------------------------------------------------
    def _read_existing(self) -> List[Dict[str, Any]]:
        """Parse prior records, tolerating a torn final line."""
        records: List[Dict[str, Any]] = []
        try:
            raw = self.path.read_text(encoding="utf-8")
        except FileNotFoundError:
            return records
        lines = raw.split("\n")
        # A file not ending in a newline has a torn tail: the final chunk
        # was mid-write when the process died.  Drop it silently — that is
        # the one-cell loss the flush discipline budgets for.
        if lines and lines[-1] != "":
            lines = lines[:-1]
        for lineno, line in enumerate(lines, start=1):
            if not line.strip():
                continue
            try:
                record = json.loads(line)
            except json.JSONDecodeError:
                if lineno == len(lines):
                    break  # torn tail that happened to end in a newline
                raise JournalError(
                    f"{self.path}:{lineno}: malformed journal record"
                ) from None
            records.append(record)
        return records

    def begin(self, campaign: str, n_cells: int) -> Set[str]:
        """Open the journal for ``campaign``; return already-completed keys.

        A fresh file gains a ``campaign_start`` head record.  An existing
        file must belong to the same campaign — resuming a journal against
        a different plan raises :class:`JournalError` instead of silently
        mixing results.
        """
        records = self._read_existing()
        fresh = not records
        if records:
            head = records[0]
            if head.get("kind") != "campaign_start":
                raise JournalError(
                    f"{self.path}: first record is not campaign_start"
                )
            if head.get("campaign") != campaign:
                raise JournalError(
                    f"{self.path}: journal belongs to campaign "
                    f"{str(head.get('campaign'))[:12]}…, not "
                    f"{campaign[:12]}… — refusing to mix campaigns "
                    "(use a fresh journal path)"
                )
            for record in records[1:]:
                kind = record.get("kind")
                key = record.get("key")
                if not isinstance(key, str):
                    continue
                if kind == "cell_done":
                    self.completed.add(key)
                    self.failed.discard(key)
                elif kind == "cell_failed":
                    self.failed.add(key)
        self.campaign = campaign
        self._fh = open(self.path, "a", encoding="utf-8")
        if fresh:
            self._append(
                {
                    "kind": "campaign_start",
                    "schema": JOURNAL_SCHEMA_VERSION,
                    "campaign": campaign,
                    "n_cells": int(n_cells),
                }
            )
        return set(self.completed)

    # -- writing -----------------------------------------------------------
    def _append(self, record: Dict[str, Any]) -> None:
        if self._fh is None:
            raise JournalError(f"{self.path}: journal is not open (call begin)")
        self._fh.write(json.dumps(record, sort_keys=True) + "\n")
        # Flush to the OS per record: a killed process then loses only
        # cells still in flight, which is the resume contract.
        self._fh.flush()
        os.fsync(self._fh.fileno())

    def record_done(self, index: int, key: str, cached: bool = False) -> None:
        """Checkpoint one settled cell (idempotent per key)."""
        if key in self.completed:
            return
        self.completed.add(key)
        self.failed.discard(key)
        self._append(
            {
                "kind": "cell_done",
                "index": int(index),
                "key": key,
                "cached": bool(cached),
            }
        )

    def record_failed(
        self, index: int, key: str, error_type: str, attempts: int
    ) -> None:
        """Record a cell that exhausted its attempts; it stays pending for
        the next resume (failure records never block re-execution)."""
        self.failed.add(key)
        self._append(
            {
                "kind": "cell_failed",
                "index": int(index),
                "key": key,
                "error_type": error_type,
                "attempts": int(attempts),
            }
        )

    def close(self) -> None:
        if self._fh is not None:
            self._fh.close()
            self._fh = None

    def __enter__(self) -> "CampaignJournal":
        return self

    def __exit__(self, *exc: Any) -> None:
        self.close()
