"""Cell decomposition of experiment grids.

A sweep such as :func:`repro.sim.runner.run_suite` is a dense grid —
controller × workload (× budget) × epochs — whose cells are mutually
independent closed-loop runs.  This module gives that grid an explicit,
hashable unit of work, :class:`RunCell`, plus the pure bookkeeping around
it: planning a grid into an ordered cell list, splitting the list into
balanced shards for workers, and merging per-cell results back into the
exact nested-dict shapes the serial runner returns.

Everything here is deliberately free of process machinery (that lives in
:mod:`repro.parallel.engine`) so planning and merging can be property
tested in isolation: for any grid shape, ``merge_shards(split_shards(...))``
round-trips, and plan → merge reproduces the serial dict layout.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, TypeVar

from repro.sim.results import SimulationResult

__all__ = [
    "RunCell",
    "plan_suite",
    "plan_sweep",
    "merge_suite",
    "merge_sweep",
    "split_shards",
    "merge_shards",
]

_T = TypeVar("_T")


@dataclass(frozen=True)
class RunCell:
    """One independent simulation run inside a sweep grid.

    Attributes
    ----------
    controller:
        Controller name (the key of the controller mapping given to the
        runner; for the standard lineup, e.g. ``"od-rl"``).
    workload:
        Workload name (the key of the workload mapping, or the single
        workload's own name in a budget sweep).
    budget:
        Absolute power budget override in watts, or ``None`` to run at the
        budget already carried by the sweep's :class:`SystemConfig`
        (suite mode).
    seed:
        The seed the cell's controller was derived from (``0`` when the
        factory carries no recoverable seed).  Recorded so cache keys and
        failure reports identify the RNG stream.
    n_epochs:
        Number of control epochs the cell simulates.
    """

    controller: str
    workload: str
    budget: Optional[float]
    seed: int
    n_epochs: int

    def __post_init__(self) -> None:
        if self.n_epochs <= 0:
            raise ValueError(f"n_epochs must be positive, got {self.n_epochs}")
        if self.budget is not None and self.budget <= 0:
            raise ValueError(f"budget must be positive watts, got {self.budget}")

    def label(self) -> str:
        """Human-readable cell identifier for logs and failure reports."""
        budget = "" if self.budget is None else f"@{self.budget:.3g}W"
        return (
            f"{self.controller}/{self.workload}{budget}"
            f"[seed={self.seed},epochs={self.n_epochs}]"
        )


def plan_suite(
    controllers: Sequence[str],
    workloads: Sequence[str],
    n_epochs: int,
    seeds: Optional[Dict[str, int]] = None,
) -> List[RunCell]:
    """Decompose a controller × workload suite into an ordered cell list.

    The order is controller-major, matching the serial runner's nested
    loops, so ``merge_suite`` restores the identical dict layout.
    """
    seed_of = seeds or {}
    return [
        RunCell(c, w, None, seed_of.get(c, 0), n_epochs)
        for c in controllers
        for w in workloads
    ]


def plan_sweep(
    controllers: Sequence[str],
    workload: str,
    budgets: Sequence[float],
    n_epochs: int,
    seeds: Optional[Dict[str, int]] = None,
) -> List[RunCell]:
    """Decompose a controller × budget sweep over one workload into cells."""
    seed_of = seeds or {}
    return [
        RunCell(c, workload, float(b), seed_of.get(c, 0), n_epochs)
        for c in controllers
        for b in budgets
    ]


def merge_suite(
    cells: Sequence[RunCell], results: Sequence[SimulationResult]
) -> Dict[str, Dict[str, SimulationResult]]:
    """Merge per-cell results into ``{controller: {workload: result}}``.

    Insertion order follows the cell order, so a plan produced by
    :func:`plan_suite` reproduces the serial runner's dict layout exactly.
    """
    if len(cells) != len(results):
        raise ValueError(f"{len(cells)} cells but {len(results)} results")
    merged: Dict[str, Dict[str, SimulationResult]] = {}
    for cell, result in zip(cells, results):
        merged.setdefault(cell.controller, {})[cell.workload] = result
    return merged


def merge_sweep(
    cells: Sequence[RunCell], results: Sequence[SimulationResult]
) -> Dict[str, Dict[float, SimulationResult]]:
    """Merge per-cell results into ``{controller: {budget: result}}``."""
    if len(cells) != len(results):
        raise ValueError(f"{len(cells)} cells but {len(results)} results")
    merged: Dict[str, Dict[float, SimulationResult]] = {}
    for cell, result in zip(cells, results):
        if cell.budget is None:
            raise ValueError(f"sweep cell {cell.label()} has no budget")
        merged.setdefault(cell.controller, {})[cell.budget] = result
    return merged


def split_shards(items: Sequence[_T], n_shards: int) -> List[List[_T]]:
    """Split ``items`` into ``n_shards`` contiguous, balanced shards.

    Shard sizes differ by at most one (the first ``len % n_shards`` shards
    get the extra item); empty shards are returned when there are more
    shards than items, so the count is always exactly ``n_shards``.
    """
    if n_shards <= 0:
        raise ValueError(f"n_shards must be positive, got {n_shards}")
    base, extra = divmod(len(items), n_shards)
    shards: List[List[_T]] = []
    start = 0
    for i in range(n_shards):
        size = base + (1 if i < extra else 0)
        shards.append(list(items[start : start + size]))
        start += size
    return shards


def merge_shards(shards: Sequence[Sequence[_T]]) -> List[_T]:
    """Concatenate shards back into one list (inverse of :func:`split_shards`)."""
    merged: List[_T] = []
    for shard in shards:
        merged.extend(shard)
    return merged
