"""E15 (extension) — fault resilience and graceful degradation.

Not in the original paper, but the deployment question its thesis invites:
a distributed learner on a thousand-core die will, in practice, face dead
cores, wedged voltage regulators, blacked-out telemetry and the occasional
controller crash.  E15 measures what those faults cost each policy and what
the degradation layer (telemetry sanitizer + safe-state reflex +
watchdog/checkpointing, see ``docs/robustness.md``) buys back.

Two studies:

1. **Fault-rate sweep** — the same seeded campaigns (core deaths, actuator
   drop/stuck faults, telemetry blackouts) at increasing densities, run
   against OD-RL with the degradation layer, OD-RL with raw telemetry
   ("od-rl-raw", the ablation), and the greedy-ascent and PID baselines.
   Every controller runs under the watchdog, so differences come from how
   each policy digests faulty telemetry, not from crash handling.
2. **Crash/restart study** — controller crashes only, comparing a
   checkpointing restart against a cold restart and the no-crash
   reference, scored on steady-state (tail) throughput.

E15 deliberately stresses the telemetry path: the budget is tight enough
(default 45 % of peak) that cores genuinely press their shares, and the
power meters suffer heavy per-sample dropout/stuck faults on top of the
campaign.  Under those conditions raw OD-RL reads dropout zeros as "far
under budget", learns to push levels up, and both overshoots and loses
more throughput to the resulting policy churn than the sanitized arm does.

Campaigns are drawn with :meth:`repro.faults.campaign.FaultCampaign.random`
from seeds derived deterministically from ``seed``: identical arguments
give bit-for-bit identical runs.
"""

from __future__ import annotations

from functools import partial
from typing import Callable, Dict, Optional, Sequence

import numpy as np

from repro.experiments.base import ExperimentResult
from repro.faults.campaign import FaultCampaign
from repro.manycore.config import SystemConfig, default_system
from repro.manycore.sensors import SensorSpec, SensorSuite
from repro.metrics.perf_metrics import throughput_bips
from repro.metrics.power_metrics import over_budget_energy
from repro.metrics.report import format_table
from repro.sim.interface import Controller
from repro.sim.simulator import run_controller
from repro.workloads.suite import mixed_workload

__all__ = ["run_e15"]

#: steady-state scoring window for the crash study (fraction of the run)
_TAIL_FRACTION = 0.25

#: the power-meter error model E15 stresses the controllers with: RAPL-like
#: noise/quantization plus heavy per-sample dropout and stuck registers
_POWER_SENSOR = SensorSpec(
    relative_noise=0.02, quantum=0.1, dropout_rate=0.10, stuck_rate=0.02
)


def _sensors(seed: int) -> SensorSuite:
    """A fresh, deterministically seeded sensor suite for one run."""
    return SensorSuite(np.random.default_rng(seed + 123), power_spec=_POWER_SENSOR)


def _od_rl(seed: int, cfg: SystemConfig) -> Controller:
    from repro.core import ODRLController

    return ODRLController(cfg, seed=seed)


def _od_rl_raw(seed: int, cfg: SystemConfig) -> Controller:
    from repro.core import ODRLController

    controller = ODRLController(cfg, degradation=False, seed=seed)
    controller.name = "od-rl-raw"
    return controller


def _lineup(seed: int) -> Dict[str, Callable[[SystemConfig], Controller]]:
    """E15's controller arms: OD-RL with/without degradation + baselines.

    Every factory is a module-level callable (bound via ``partial``) so a
    lineup entry can ride inside a ``CellTask`` through the spawn pool.
    """
    from repro.baselines import GreedyAscentController, PIDCappingController

    return {
        "od-rl": partial(_od_rl, seed),
        "od-rl-raw": partial(_od_rl_raw, seed),
        "greedy-ascent": GreedyAscentController,
        "pid": PIDCappingController,
    }


def _rate_label(rate: float) -> str:
    return f"{100 * rate:g}%"


def run_e15(
    n_cores: int = 64,
    n_epochs: int = 600,
    budget_fraction: float = 0.45,
    fault_rates: Sequence[float] = (0.0, 0.02, 0.05, 0.10),
    checkpoint_period: int = 50,
    n_crashes: int = 3,
    controllers: Optional[Sequence[str]] = None,
    seed: int = 0,
) -> ExperimentResult:
    """Run E15: fault-rate sweep plus crash/restart recovery study.

    Parameters
    ----------
    n_cores, n_epochs, budget_fraction:
        System size, run length in control epochs, and the power budget as
        a fraction of the uncapped peak.
    fault_rates:
        Target fraction of (core, epoch) samples affected per fault class
        in the sweep campaigns.
    checkpoint_period:
        Watchdog checkpoint cadence in epochs for the crash study's
        checkpointing arm.
    n_crashes:
        Scheduled controller crashes in the crash study.
    controllers:
        Subset of the lineup to run (default: all four arms); must include
        ``"od-rl"`` and ``"od-rl-raw"`` — the sweep exists to compare them.
    seed:
        Seeds workload, campaigns and learners; same seed, same bits.

    ``data['bips']`` and ``data['obe']`` map
    ``controller -> {rate_label: value}``; ``data['loss']`` holds each
    controller's throughput loss relative to its own run at the first
    (reference) fault rate; ``data['crash']`` maps ``arm -> tail BIPS``
    with ``data['crash_recovery_ratio']`` the checkpointing arm's tail
    throughput relative to the no-crash reference.
    """
    if n_epochs < 2:
        raise ValueError(f"n_epochs must be >= 2, got {n_epochs}")
    if any(not (0 <= r < 1) for r in fault_rates):
        raise ValueError(f"fault rates must be in [0, 1), got {fault_rates!r}")
    lineup = _lineup(seed)
    names = list(controllers) if controllers else list(lineup)
    for required in ("od-rl", "od-rl-raw"):
        if required not in names:
            raise ValueError(f"E15 requires {required!r} among the controllers")
    unknown = [n for n in names if n not in lineup]
    if unknown:
        raise ValueError(f"unknown controllers {unknown!r}; choose from {list(lineup)}")

    cfg = default_system(n_cores=n_cores, budget_fraction=budget_fraction)
    workload = mixed_workload(n_cores, seed=seed)

    bips: Dict[str, Dict[str, float]] = {name: {} for name in names}
    obe: Dict[str, Dict[str, float]] = {name: {} for name in names}
    rate_labels = [_rate_label(rate) for rate in fault_rates]
    for i, rate in enumerate(fault_rates):
        campaign = FaultCampaign.random(
            n_cores, n_epochs, rate=rate, seed=seed + 1000 * (i + 1)
        )
        for name in names:
            result = run_controller(
                cfg,
                workload,
                lineup[name](cfg),
                n_epochs,
                sensors=_sensors(seed),
                faults=campaign,
                watchdog=True,
            )
            bips[name][_rate_label(rate)] = throughput_bips(result)
            obe[name][_rate_label(rate)] = over_budget_energy(result)

    reference = rate_labels[0]
    loss: Dict[str, Dict[str, float]] = {
        name: {
            label: bips[name][reference] - bips[name][label]
            for label in rate_labels
        }
        for name in names
    }

    crash_campaign = FaultCampaign.random(
        n_cores, n_epochs, rate=0.0, seed=seed + 7, n_crashes=n_crashes
    )
    crash_arms = {
        "no-crash": (FaultCampaign.none(n_cores), checkpoint_period),
        "crash+checkpoint": (crash_campaign, checkpoint_period),
        "crash+cold-restart": (crash_campaign, 0),
    }
    crash_bips: Dict[str, float] = {}
    for arm, (campaign, period) in crash_arms.items():
        result = run_controller(
            cfg,
            workload,
            lineup["od-rl"](cfg),
            n_epochs,
            sensors=_sensors(seed),
            faults=campaign,
            watchdog=True,
            checkpoint_period=period,
        )
        crash_bips[arm] = throughput_bips(result.tail(_TAIL_FRACTION))
    recovery_ratio = crash_bips["crash+checkpoint"] / max(
        crash_bips["no-crash"], 1e-12
    )

    report = "\n\n".join(
        [
            format_table(
                bips,
                rate_labels,
                title=(
                    f"E15: throughput (BIPS) vs combined fault rate, "
                    f"{n_cores} cores, {n_epochs} epochs (all controllers "
                    f"under the watchdog)"
                ),
                fmt="{:.2f}",
                row_header="controller",
            ),
            format_table(
                loss,
                rate_labels,
                title=(
                    f"E15: throughput lost to faults (BIPS, vs each "
                    f"controller's own {reference} run)"
                ),
                fmt="{:.3f}",
                row_header="controller",
            ),
            format_table(
                obe,
                rate_labels,
                title="E15: over-budget energy (J) vs combined fault rate",
                fmt="{:.4f}",
                row_header="controller",
            ),
            format_table(
                {"od-rl tail BIPS": crash_bips},
                list(crash_arms),
                title=(
                    f"E15: crash/restart study — steady-state (last "
                    f"{int(100 * _TAIL_FRACTION)}%) throughput with "
                    f"{n_crashes} scheduled crashes; checkpoint recovery "
                    f"ratio {recovery_ratio:.3f} of no-crash"
                ),
                fmt="{:.2f}",
            ),
        ]
    )
    return ExperimentResult(
        experiment_id="E15",
        title="Fault resilience and graceful degradation (extension)",
        report=report,
        data={
            "bips": bips,
            "obe": obe,
            "loss": loss,
            "fault_rates": list(fault_rates),
            "crash": crash_bips,
            "crash_recovery_ratio": recovery_ratio,
            "checkpoint_period": checkpoint_period,
        },
    )
