"""E10 (extension) — thermally-safe OD-RL.

The paper controls power against TDP; the obvious extension (its future
work direction) is controlling *temperature* directly.  This experiment
runs OD-RL with and without a per-core thermal limit on a loose power
budget — loose enough that power capping alone lets hot spots form — and
compares peak temperatures, limit violations, and the throughput cost of
staying cool.
"""

from __future__ import annotations

from typing import Dict

import numpy as np

from repro.core import ODRLController
from repro.experiments.base import ExperimentResult
from repro.manycore.config import default_system
from repro.metrics.perf_metrics import throughput_bips
from repro.metrics.report import format_table
from repro.sim.simulator import run_controller
from repro.workloads.suite import mixed_workload

__all__ = ["run_e10"]


def run_e10(
    n_cores: int = 64,
    n_epochs: int = 2500,
    budget_fraction: float = 0.9,
    thermal_limit: float = 331.0,
    seed: int = 0,
) -> ExperimentResult:
    """Run E10: OD-RL with vs. without the thermal limit.

    The default budget is loose (90 % of peak) so power capping alone lets
    the die run hot, and the default limit sits a few kelvin below the
    resulting hot-spot temperature — i.e. the limit binds.

    ``data['metrics'][variant]`` holds peak temperature (K), the mean
    excess of the hottest core above the limit (K), and throughput (BIPS);
    the steady state (last half) is scored so the DTM reflex's learning
    transient is excluded.
    """
    if thermal_limit <= 0:
        raise ValueError(f"thermal_limit must be positive kelvin, got {thermal_limit}")
    cfg = default_system(n_cores=n_cores, budget_fraction=budget_fraction)
    workload = mixed_workload(n_cores, seed=seed)

    variants = {
        "power-only": ODRLController(cfg, seed=seed),
        "thermal-limited": ODRLController(cfg, thermal_limit=thermal_limit, seed=seed),
    }
    metrics: Dict[str, Dict[str, float]] = {}
    for label, controller in variants.items():
        result = run_controller(cfg, workload, controller, n_epochs)
        steady = result.tail(0.5)
        metrics[label] = {
            "peak_T_K": float(np.max(steady.max_temperature)),
            "mean_excess_K": float(
                np.mean(np.maximum(steady.max_temperature - thermal_limit, 0.0))
            ),
            "bips": throughput_bips(steady),
        }

    report = format_table(
        metrics,
        ["peak_T_K", "mean_excess_K", "bips"],
        title=(
            f"E10: thermally-safe OD-RL (limit {thermal_limit:.0f} K, budget "
            f"{cfg.power_budget:.1f} W, {n_cores} cores, steady state)"
        ),
        fmt="{:.4g}",
    )
    return ExperimentResult(
        experiment_id="E10",
        title="Thermal-limit extension",
        report=report,
        data={"metrics": metrics, "thermal_limit": thermal_limit},
    )
