"""E5 — controller-runtime scalability with core count (claim C3).

Reconstructs the scalability figure: mean per-decision wall-clock time of
each controller as the chip grows from tens to hundreds of cores.  The
abstract claims "two orders of magnitude speedup over state-of-the-art
techniques for systems with hundreds of cores" — here measured as the
ratio of the centralized optimizer's (MaxBIPS-DP) decision time to
OD-RL's at the largest core count.
"""

from __future__ import annotations

import tempfile
import time
from contextlib import ExitStack
from pathlib import Path
from typing import Any, Dict, List, Optional, Sequence

from repro.experiments.base import ExperimentResult, GridOptions
from repro.manycore.config import default_system
from repro.metrics.perf_metrics import mean_decision_time
from repro.metrics.report import format_series
from repro.obs import TimingBreakdown
from repro.sim.runner import run_suite, standard_controllers
from repro.workloads.suite import make_benchmark, mixed_workload

__all__ = ["run_e5"]

_DEFAULT_CONTROLLERS = (
    "od-rl",
    "pid",
    "greedy-ascent",
    "steepest-drop",
    "max-swap",
    "maxbips",
)
_DEFAULT_CORE_COUNTS = (16, 64, 144, 256)


def run_e5(
    core_counts: Optional[Sequence[int]] = None,
    n_epochs: int = 60,
    warmup_epochs: int = 10,
    budget_fraction: float = 0.6,
    controllers: Optional[Sequence[str]] = None,
    seed: int = 0,
    grid: Optional[GridOptions] = None,
) -> ExperimentResult:
    """Run E5: per-decision latency vs. core count.

    Parameters
    ----------
    core_counts:
        Chip sizes to sweep (ascending).
    n_epochs:
        Epochs simulated per point (decision time is averaged over them).
    warmup_epochs:
        Leading epochs dropped from the timing average (interpreter and
        cache warm-up would otherwise inflate the first decisions).
    grid:
        Parallel-execution options.  The latency sweep itself always runs
        serially — co-scheduling workers would contaminate the
        per-decision wall-clock measurement — but with ``grid.jobs > 1``
        the experiment additionally benchmarks the sharded engine on a
        64-core suite grid: serial vs. parallel wall-clock, plus a
        cold-cache vs. warm-cache re-run (see ``data["parallel"]``).
        ``grid.profile`` / ``grid.recorder`` thread the observability
        switches through the sweep; profiling adds a decide-vs-plant
        wall-clock section (see ``data["timing"]``).  The ``decide``
        phase reuses the C3 ``decision_time`` measurement, so profiling
        does not perturb the latency numbers themselves.
    """
    counts = list(core_counts) if core_counts else list(_DEFAULT_CORE_COUNTS)
    if sorted(counts) != counts or len(set(counts)) != len(counts):
        raise ValueError(f"core_counts must be strictly ascending, got {counts}")
    if warmup_epochs >= n_epochs:
        raise ValueError("warmup_epochs must be smaller than n_epochs")
    names = list(controllers) if controllers else list(_DEFAULT_CONTROLLERS)
    if "od-rl" not in names or "maxbips" not in names:
        raise ValueError("E5 requires 'od-rl' and 'maxbips' for the speedup ratio")
    lineup = standard_controllers(seed=seed)
    chosen = {n: lineup[n] for n in names}

    recorder = grid.recorder if grid is not None else None
    profile = bool(grid.profile) if grid is not None else False
    latency: Dict[str, List[float]] = {n: [] for n in names}
    timing: Dict[str, List[Dict[str, Any]]] = {n: [] for n in names}
    for n_cores in counts:
        cfg = default_system(n_cores=n_cores, budget_fraction=budget_fraction)
        workload = mixed_workload(n_cores, seed=seed)
        results = run_suite(
            cfg, {"mixed": workload}, chosen, n_epochs,
            recorder=recorder, profile=profile,
        )
        for name in names:
            full = results[name]["mixed"]
            trimmed = full.tail(1.0 - warmup_epochs / n_epochs)
            latency[name].append(mean_decision_time(trimmed))
            if profile:
                timing[name].append(full.extras["timing"])

    speedups = [
        latency["maxbips"][i] / latency["od-rl"][i] for i in range(len(counts))
    ]
    speedup_at_max = speedups[-1]
    series = {name: [v * 1e6 for v in vals] for name, vals in latency.items()}
    sections = [
        format_series(
            [float(c) for c in counts],
            series,
            x_label="cores",
            title="E5: mean decision latency (us) vs core count",
        ),
        format_series(
            [float(c) for c in counts],
            {"maxbips/od-rl speedup": speedups},
            x_label="cores",
            title=(
                "E5: OD-RL speedup over the centralized optimizer "
                f"(paper claim C3: ~100x at hundreds of cores — measured "
                f"{speedup_at_max:.0f}x at {counts[-1]} cores)"
            ),
        ),
    ]
    data: Dict[str, Any] = {
        "core_counts": counts,
        "latency": latency,
        "speedups": speedups,
        "speedup_at_max_cores": speedup_at_max,
    }
    if profile:
        data["timing"] = timing
        sections.append(_timing_section(counts, names, timing))
    if grid is not None and grid.jobs > 1:
        parallel = _parallel_engine_benchmark(
            grid, n_epochs=n_epochs, seed=seed
        )
        data["parallel"] = parallel
        sections.append(
            "E5: sharded engine on the {n}-core suite grid "
            "({cells} cells, jobs={jobs})\n"
            "  serial       {t_serial_s:8.2f} s\n"
            "  parallel     {t_parallel_s:8.2f} s  ({engine_speedup:.2f}x)\n"
            "  warm cache   {t_warm_s:8.2f} s  ({warm_fraction:.1%} of cold "
            "parallel time)".format(
                n=parallel["n_cores"],
                cells=parallel["n_cells"],
                jobs=parallel["jobs"],
                t_serial_s=parallel["t_serial_s"],
                t_parallel_s=parallel["t_parallel_s"],
                engine_speedup=parallel["engine_speedup"],
                t_warm_s=parallel["t_warm_s"],
                warm_fraction=parallel["warm_fraction"],
            )
        )
    return ExperimentResult(
        experiment_id="E5",
        title="Controller runtime scalability",
        report="\n\n".join(sections),
        data=data,
    )


def _timing_section(
    counts: Sequence[int],
    names: Sequence[str],
    timing: Dict[str, List[Dict[str, Any]]],
) -> str:
    """Decide-vs-plant wall-clock table from the profiled sweep.

    The latency figure above answers "how fast is the controller"; this
    section answers "where does the *experiment's* wall clock go" — how
    much of each epoch is controller decision versus plant (power /
    thermal / performance model) integration, per core count.
    """
    lines = [
        "E5: decide vs plant wall clock per epoch (profiled)",
        f"  {'controller':<16} {'cores':>6} {'decide us':>10} "
        f"{'plant us':>10} {'decide share':>13}",
    ]
    for name in names:
        for i, n_cores in enumerate(counts):
            breakdown = TimingBreakdown.from_dict(timing[name][i])
            decide = breakdown.mean("decide")
            plant = breakdown.mean("plant")
            loop = decide + plant + breakdown.mean("contracts")
            share = 100.0 * decide / loop if loop > 0 else 0.0
            lines.append(
                f"  {name:<16} {n_cores:>6d} {decide * 1e6:>10.1f} "
                f"{plant * 1e6:>10.1f} {share:>12.1f}%"
            )
    return "\n".join(lines)


_SPEEDUP_GRID_CONTROLLERS = ("od-rl", "pid", "greedy-ascent", "static-uniform")
_SPEEDUP_GRID_BENCHMARKS = ("fft", "ocean", "barnes", "x264")


def _parallel_engine_benchmark(
    grid: GridOptions,
    n_epochs: int,
    seed: int,
    n_cores: int = 64,
) -> Dict[str, Any]:
    """Wall-clock the sharded engine against the serial loop.

    Runs a 64-core controller × benchmark suite grid three ways: serial
    (``jobs=1``, no cache), parallel cold (``grid.jobs``, empty cache),
    and parallel warm (same cache, second invocation — every cell should
    hit).  Wall-clock only; the trajectories themselves are bit-identical
    by the determinism tests, so only the timings are interesting here.
    """
    lineup = standard_controllers(seed=seed)
    chosen = {name: lineup[name] for name in _SPEEDUP_GRID_CONTROLLERS}
    workloads = {
        b: make_benchmark(b, n_cores, seed=seed) for b in _SPEEDUP_GRID_BENCHMARKS
    }
    cfg = default_system(n_cores=n_cores, budget_fraction=0.6)

    with ExitStack() as stack:
        if grid.cache is None:
            cache_dir: Any = Path(
                stack.enter_context(tempfile.TemporaryDirectory(prefix="e5-cache-"))
            )
        else:
            cache_dir = grid.cache

        t0_s = time.perf_counter()
        run_suite(cfg, workloads, chosen, n_epochs)
        t1_s = time.perf_counter()
        run_suite(cfg, workloads, chosen, n_epochs, jobs=grid.jobs, cache=cache_dir)
        t2_s = time.perf_counter()
        run_suite(cfg, workloads, chosen, n_epochs, jobs=grid.jobs, cache=cache_dir)
        t3_s = time.perf_counter()

    t_serial_s = t1_s - t0_s
    t_parallel_s = t2_s - t1_s
    t_warm_s = t3_s - t2_s
    return {
        "n_cores": n_cores,
        "n_epochs": n_epochs,
        "jobs": grid.jobs,
        "n_cells": len(chosen) * len(workloads),
        "t_serial_s": t_serial_s,
        "t_parallel_s": t_parallel_s,
        "t_warm_s": t_warm_s,
        "engine_speedup": t_serial_s / t_parallel_s,
        "warm_fraction": t_warm_s / t_parallel_s,
    }
