"""E5 — controller-runtime scalability with core count (claim C3).

Reconstructs the scalability figure: mean per-decision wall-clock time of
each controller as the chip grows from tens to hundreds of cores.  The
abstract claims "two orders of magnitude speedup over state-of-the-art
techniques for systems with hundreds of cores" — here measured as the
ratio of the centralized optimizer's (MaxBIPS-DP) decision time to
OD-RL's at the largest core count.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro.experiments.base import ExperimentResult
from repro.manycore.config import default_system
from repro.metrics.perf_metrics import mean_decision_time
from repro.metrics.report import format_series
from repro.sim.runner import run_suite, standard_controllers
from repro.workloads.suite import mixed_workload

__all__ = ["run_e5"]

_DEFAULT_CONTROLLERS = (
    "od-rl",
    "pid",
    "greedy-ascent",
    "steepest-drop",
    "max-swap",
    "maxbips",
)
_DEFAULT_CORE_COUNTS = (16, 64, 144, 256)


def run_e5(
    core_counts: Optional[Sequence[int]] = None,
    n_epochs: int = 60,
    warmup_epochs: int = 10,
    budget_fraction: float = 0.6,
    controllers: Optional[Sequence[str]] = None,
    seed: int = 0,
) -> ExperimentResult:
    """Run E5: per-decision latency vs. core count.

    Parameters
    ----------
    core_counts:
        Chip sizes to sweep (ascending).
    n_epochs:
        Epochs simulated per point (decision time is averaged over them).
    warmup_epochs:
        Leading epochs dropped from the timing average (interpreter and
        cache warm-up would otherwise inflate the first decisions).
    """
    counts = list(core_counts) if core_counts else list(_DEFAULT_CORE_COUNTS)
    if sorted(counts) != counts or len(set(counts)) != len(counts):
        raise ValueError(f"core_counts must be strictly ascending, got {counts}")
    if warmup_epochs >= n_epochs:
        raise ValueError("warmup_epochs must be smaller than n_epochs")
    names = list(controllers) if controllers else list(_DEFAULT_CONTROLLERS)
    if "od-rl" not in names or "maxbips" not in names:
        raise ValueError("E5 requires 'od-rl' and 'maxbips' for the speedup ratio")
    lineup = standard_controllers(seed=seed)
    chosen = {n: lineup[n] for n in names}

    latency: Dict[str, List[float]] = {n: [] for n in names}
    for n_cores in counts:
        cfg = default_system(n_cores=n_cores, budget_fraction=budget_fraction)
        workload = mixed_workload(n_cores, seed=seed)
        results = run_suite(cfg, {"mixed": workload}, chosen, n_epochs)
        for name in names:
            trimmed = results[name]["mixed"]
            trimmed = trimmed.tail(1.0 - warmup_epochs / n_epochs)
            latency[name].append(mean_decision_time(trimmed))

    speedups = [
        latency["maxbips"][i] / latency["od-rl"][i] for i in range(len(counts))
    ]
    speedup_at_max = speedups[-1]
    series = {name: [v * 1e6 for v in vals] for name, vals in latency.items()}
    report = "\n\n".join(
        [
            format_series(
                [float(c) for c in counts],
                series,
                x_label="cores",
                title="E5: mean decision latency (us) vs core count",
            ),
            format_series(
                [float(c) for c in counts],
                {"maxbips/od-rl speedup": speedups},
                x_label="cores",
                title=(
                    "E5: OD-RL speedup over the centralized optimizer "
                    f"(paper claim C3: ~100x at hundreds of cores — measured "
                    f"{speedup_at_max:.0f}x at {counts[-1]} cores)"
                ),
            ),
        ]
    )
    return ExperimentResult(
        experiment_id="E5",
        title="Controller runtime scalability",
        report=report,
        data={
            "core_counts": counts,
            "latency": latency,
            "speedups": speedups,
            "speedup_at_max_cores": speedup_at_max,
        },
    )
