"""E16 — offline-RL warm start vs on-line cold start (extension).

The on-line OD-RL learner pays for its policy in overshoot during the
exploration transient (E6 measures that transient).  This experiment asks
whether the offline pipeline (:mod:`repro.offline`) recovers that cost
from logged data alone: harvest traces from on-line runs at *different*
seeds, train an offline policy, and race a warm-started controller
against the cold learner on a held-out workload seed.

Two headline numbers, both in ``data['summary']``:

* ``epochs_ratio`` — windowed-BIPS epochs-to-converged-band of the warm
  start over the cold start (the claim is ≤ 0.5);
* over-budget energy accumulated while the cold learner is still
  learning, for both controllers (the warm start should overshoot less
  during that phase).

Everything is in-memory (``BufferRecorder``) and deterministic in
``seed`` — the bench suite publishes the measured numbers to
``BENCH_E16.json``.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.core import ODRLController
from repro.experiments.base import ExperimentResult
from repro.manycore.config import SystemConfig, default_system
from repro.metrics.report import format_series
from repro.obs.recorder import BufferRecorder
from repro.sim.simulator import run_controller
from repro.workloads.suite import mixed_workload

__all__ = ["run_e16"]


def _windowed(
    result: "object", cfg: SystemConfig, n_windows: int, n_epochs: int
) -> Tuple[List[float], List[float]]:
    """(windowed BIPS, windowed over-budget energy in J) for one run."""
    block = n_epochs // n_windows
    n_used = block * n_windows
    power = np.asarray(getattr(result, "chip_power"))[:n_used].reshape(
        n_windows, block
    )
    instr = np.asarray(getattr(result, "chip_instructions"))[:n_used].reshape(
        n_windows, block
    )
    window_time = block * cfg.epoch_time
    bips = (instr.sum(axis=1) / window_time / 1e9).tolist()
    obe = (
        np.maximum(power - cfg.power_budget, 0.0).sum(axis=1) * cfg.epoch_time
    ).tolist()
    return bips, obe


def _epochs_to_band(bips: List[float], band: float, block: int) -> int:
    """Epochs until the running-average BIPS enters ``band``.

    The running (prefix) mean of the windowed series smooths out
    single-window workload dips that both controllers share, so it
    isolates the learning transient: a cold learner drags its average
    down while exploring, a converged policy enters the band in the
    first window.  Returns the full run length if the average never
    reaches the band.
    """
    running = np.cumsum(bips) / np.arange(1, len(bips) + 1)
    inside = np.nonzero(running >= band)[0]
    if inside.size == 0:
        return len(bips) * block
    return int(inside[0] + 1) * block


def run_e16(
    n_cores: int = 32,
    n_epochs: int = 1000,
    budget_fraction: float = 0.6,
    n_windows: int = 20,
    seed: int = 0,
    harvest_epochs: Optional[int] = None,
    harvest_seeds: Tuple[int, ...] = (101, 202),
    trainer: str = "cql",
    band_tolerance: float = 0.05,
) -> ExperimentResult:
    """Run E16: offline warm start vs on-line cold start.

    Harvest runs use ``seed + s`` for each ``s`` in ``harvest_seeds`` so
    the evaluation workload/learning seed is held out of the training
    data.  ``data['summary']`` carries the convergence-epochs ratio and
    the over-budget energy both controllers accumulate during the cold
    learner's learning phase.
    """
    from repro.offline import (
        buffer_from_events,
        build_warm_controller,
        policy_from_training,
        train,
    )

    if n_windows < 2:
        raise ValueError(f"n_windows must be >= 2, got {n_windows}")
    if n_epochs < n_windows:
        raise ValueError("n_epochs must be at least n_windows")
    if harvest_epochs is None:
        harvest_epochs = n_epochs
    cfg = default_system(n_cores=n_cores, budget_fraction=budget_fraction)

    # Phase 1 — harvest: on-line learners at held-out seeds, recorded.
    streams = []
    for offset in harvest_seeds:
        hseed = seed + offset
        workload = mixed_workload(n_cores, seed=hseed)
        learner = ODRLController(cfg, seed=hseed)
        rec = BufferRecorder()
        run_controller(
            cfg, workload, learner, harvest_epochs, recorder=rec, harvest=True
        )
        streams.append(rec.events)
    buffer = buffer_from_events(streams)

    # Phase 2 — train offline, export through policy_io v3.
    trained = train(buffer, trainer=trainer, seed=seed)
    policy = policy_from_training(trained, cfg)

    # Phase 3 — race on the held-out seed.
    workload = mixed_workload(n_cores, seed=seed)
    cold = ODRLController(cfg, seed=seed)
    cold_result = run_controller(cfg, workload, cold, n_epochs)
    warm = build_warm_controller(cfg, policy, seed=seed)
    warm_result = run_controller(cfg, workload, warm, n_epochs)

    block = n_epochs // n_windows
    cold_bips, cold_obe = _windowed(cold_result, cfg, n_windows, n_epochs)
    warm_bips, warm_obe = _windowed(warm_result, cfg, n_windows, n_epochs)

    # Converged band: the cold learner's steady-state tail defines the
    # target both controllers must reach and hold.
    quarter = max(1, n_windows // 4)
    target = float(np.mean(cold_bips[-quarter:]))
    band = (1.0 - band_tolerance) * target
    cold_epochs = _epochs_to_band(cold_bips, band, block)
    warm_epochs = _epochs_to_band(warm_bips, band, block)
    ratio = warm_epochs / cold_epochs if cold_epochs > 0 else float("inf")

    # Overshoot during learning: over-budget energy accumulated while the
    # cold learner had not yet settled into the band.
    learn_windows = max(1, cold_epochs // block)
    cold_obe_learning = float(np.sum(cold_obe[:learn_windows]))
    warm_obe_learning = float(np.sum(warm_obe[:learn_windows]))

    summary: Dict[str, float] = {
        "target_bips": target,
        "band_bips": band,
        "cold_epochs_to_band": float(cold_epochs),
        "warm_epochs_to_band": float(warm_epochs),
        "epochs_ratio": float(ratio),
        "cold_obe_learning_J": cold_obe_learning,
        "warm_obe_learning_J": warm_obe_learning,
        "cold_obe_total_J": float(np.sum(cold_obe)),
        "warm_obe_total_J": float(np.sum(warm_obe)),
        "dataset_transitions": float(len(buffer)),
    }
    epochs_axis = [float((i + 1) * block) for i in range(n_windows)]
    report = format_series(
        epochs_axis,
        {
            "cold_bips": cold_bips,
            "warm_bips": warm_bips,
            "cold_obe_J": cold_obe,
            "warm_obe_J": warm_obe,
        },
        x_label="epoch",
        title=(
            f"E16: offline warm start ({trainer}, "
            f"{len(buffer)} transitions) vs cold start, {n_cores} cores, "
            f"budget {cfg.power_budget:.1f} W — band {band:.3g} BIPS "
            f"reached in {warm_epochs} vs {cold_epochs} epochs "
            f"(ratio {ratio:.2f}); learning-phase overshoot "
            f"{warm_obe_learning:.3g} vs {cold_obe_learning:.3g} J"
        ),
    )
    return ExperimentResult(
        experiment_id="E16",
        title="Offline-RL warm start vs on-line cold start",
        report=report,
        data={
            "epochs": epochs_axis,
            "cold_bips": cold_bips,
            "warm_bips": warm_bips,
            "cold_obe": cold_obe,
            "warm_obe": warm_obe,
            "summary": summary,
            "dataset_digest": buffer.digest,
            "trainer": trainer,
            "cold_result": cold_result,
            "warm_result": warm_result,
        },
    )
