"""E14 (extension) — the energy/performance frontier.

The paper's objective is performance-maximal under TDP, indifferent to
energy once compliant.  Adding an energy-consciousness weight (``eta``) to
the reward lets the same learner trade throughput for efficiency — the
knob a battery-powered or operating-cost-driven deployment turns.  This
experiment sweeps ``eta`` and maps out the frontier: throughput (BIPS)
versus energy efficiency (instructions/J), with budget compliance along
the whole curve.
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence

from repro.core import ODRLController, RewardParams
from repro.experiments.base import ExperimentResult
from repro.manycore.config import default_system
from repro.metrics.perf_metrics import energy_efficiency, throughput_bips
from repro.metrics.power_metrics import budget_utilization, over_budget_energy
from repro.metrics.report import format_table
from repro.sim.simulator import run_controller
from repro.workloads.suite import mixed_workload

__all__ = ["run_e14"]

_DEFAULT_ETAS = (0.0, 0.1, 0.2, 0.4, 0.8)


def run_e14(
    n_cores: int = 64,
    n_epochs: int = 2000,
    budget_fraction: float = 0.6,
    etas: Optional[Sequence[float]] = None,
    seed: int = 0,
) -> ExperimentResult:
    """Run E14: sweep the energy weight and report the frontier.

    ``data['frontier'][eta]`` holds bips / instr_per_J / utilization /
    obe_J at steady state for each energy weight.
    """
    weights = list(etas) if etas is not None else list(_DEFAULT_ETAS)
    if any(w < 0 for w in weights):
        raise ValueError(f"energy weights must be >= 0, got {weights}")
    if 0.0 not in weights:
        weights = [0.0] + weights  # always anchor at the paper's objective
    cfg = default_system(n_cores=n_cores, budget_fraction=budget_fraction)
    workload = mixed_workload(n_cores, seed=seed)

    frontier: Dict[float, Dict[str, float]] = {}
    for eta in weights:
        controller = ODRLController(
            cfg,
            reward_params=RewardParams(energy_weight=eta),
            seed=seed,
        )
        result = run_controller(cfg, workload, controller, n_epochs)
        steady = result.tail(0.5)
        frontier[eta] = {
            "bips": throughput_bips(steady),
            "instr_per_J": energy_efficiency(steady),
            "utilization": budget_utilization(steady),
            "obe_J": over_budget_energy(steady),
        }

    rows = {f"eta={eta:g}": metrics for eta, metrics in frontier.items()}
    report = format_table(
        rows,
        ["bips", "instr_per_J", "utilization", "obe_J"],
        title=(
            f"E14: energy/performance frontier of OD-RL, {n_cores} cores, "
            f"budget {cfg.power_budget:.1f} W (steady state)"
        ),
        fmt="{:.4g}",
    )
    return ExperimentResult(
        experiment_id="E14",
        title="Energy/performance frontier (extension)",
        report=report,
        data={"frontier": frontier, "etas": weights},
    )
