"""E6 — on-line learning convergence.

Reconstructs the learning-behaviour figure: windowed mean reward proxy,
budget overshoot, and throughput of OD-RL over the course of one long run,
showing the controller converging from cold start without any offline
training phase — the "on-line" in OD-RL.
"""

from __future__ import annotations

from typing import Dict, List

import numpy as np

from repro.experiments.base import ExperimentResult
from repro.core import ODRLController
from repro.manycore.config import default_system
from repro.metrics.report import format_series
from repro.sim.simulator import run_controller
from repro.workloads.suite import mixed_workload

__all__ = ["run_e6"]


def run_e6(
    n_cores: int = 64,
    n_epochs: int = 4000,
    budget_fraction: float = 0.6,
    n_windows: int = 20,
    seed: int = 0,
) -> ExperimentResult:
    """Run E6: OD-RL convergence trajectory on the mixed workload.

    Returns windowed series of throughput (BIPS), over-budget energy per
    window (J) and budget utilization.  ``data['converged']`` compares the
    last quarter against the first quarter.
    """
    if n_windows < 2:
        raise ValueError(f"n_windows must be >= 2, got {n_windows}")
    if n_epochs < n_windows:
        raise ValueError("n_epochs must be at least n_windows")
    cfg = default_system(n_cores=n_cores, budget_fraction=budget_fraction)
    workload = mixed_workload(n_cores, seed=seed)
    controller = ODRLController(cfg, seed=seed)
    result = run_controller(cfg, workload, controller, n_epochs)

    block = n_epochs // n_windows
    n_used = block * n_windows
    power = result.chip_power[:n_used].reshape(n_windows, block)
    instr = result.chip_instructions[:n_used].reshape(n_windows, block)
    window_time = block * cfg.epoch_time
    bips: List[float] = (instr.sum(axis=1) / window_time / 1e9).tolist()
    obe: List[float] = (
        np.maximum(power - cfg.power_budget, 0.0).sum(axis=1) * cfg.epoch_time
    ).tolist()
    util: List[float] = (power.mean(axis=1) / cfg.power_budget).tolist()
    epochs_axis = [float((i + 1) * block) for i in range(n_windows)]

    quarter = max(1, n_windows // 4)
    from repro.metrics.convergence import epochs_to_converge

    settle = epochs_to_converge(result.chip_power, window=block, tolerance=0.05)
    converged: Dict[str, float] = {
        "bips_first_quarter": float(np.mean(bips[:quarter])),
        "bips_last_quarter": float(np.mean(bips[-quarter:])),
        "obe_first_quarter": float(np.sum(obe[:quarter])),
        "obe_last_quarter": float(np.sum(obe[-quarter:])),
        "util_last_quarter": float(np.mean(util[-quarter:])),
        "epochs_to_settle": float(settle if settle is not None else -1),
    }
    settle_note = (
        f"chip power settles within 5% of steady state after "
        f"{converged['epochs_to_settle']:.0f} epochs"
        if settle is not None
        else "chip power did not settle within the run"
    )
    report = format_series(
        epochs_axis,
        {"bips": bips, "obe_J": obe, "utilization": util},
        x_label="epoch",
        title=(
            f"E6: OD-RL on-line convergence, {n_cores} cores, "
            f"budget {cfg.power_budget:.1f} W (windows of {block} epochs; "
            f"{settle_note})"
        ),
    )
    return ExperimentResult(
        experiment_id="E6",
        title="On-line learning convergence",
        report=report,
        data={
            "epochs": epochs_axis,
            "bips": bips,
            "obe": obe,
            "utilization": util,
            "converged": converged,
            "result": result,
        },
    )
