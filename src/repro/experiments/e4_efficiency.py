"""E4 — energy efficiency (claim C2b).

Reconstructs the energy-efficiency comparison: instructions per joule for
every controller across the suite.  The abstract claims OD-RL achieves "up
to 23 % higher energy efficiency" than the baselines.
"""

from __future__ import annotations

from typing import Dict, Mapping, Optional, Sequence

from repro.experiments.base import ExperimentResult, GridOptions
from repro.experiments.e2_overshoot import DEFAULT_BENCHMARKS, DEFAULT_CONTROLLERS
from repro.manycore.config import default_system
from repro.metrics.perf_metrics import energy_efficiency, throughput_bips
from repro.metrics.report import format_table
from repro.sim.results import SimulationResult
from repro.sim.runner import run_suite, standard_controllers
from repro.workloads.suite import make_benchmark

__all__ = ["run_e4"]


def run_e4(
    n_cores: int = 64,
    n_epochs: int = 1500,
    budget_fraction: float = 0.6,
    benchmarks: Optional[Sequence[str]] = None,
    controllers: Optional[Sequence[str]] = None,
    seed: int = 0,
    results: Optional[Mapping[str, Mapping[str, SimulationResult]]] = None,
    grid: Optional[GridOptions] = None,
) -> ExperimentResult:
    """Run E4: energy efficiency (instructions/joule) across the suite."""
    bench = list(benchmarks) if benchmarks else list(DEFAULT_BENCHMARKS)
    names = list(controllers) if controllers else list(DEFAULT_CONTROLLERS)
    if "od-rl" not in names:
        raise ValueError("E4 requires 'od-rl' among the controllers")
    cfg = default_system(n_cores=n_cores, budget_fraction=budget_fraction)
    if results is None:
        workloads = {b: make_benchmark(b, n_cores, seed=seed) for b in bench}
        lineup = standard_controllers(seed=seed)
        chosen = {n: lineup[n] for n in names}
        results = run_suite(
            cfg, workloads, chosen, n_epochs,
            **(grid or GridOptions()).runner_kwargs(),
        )

    eff: Dict[str, Dict[str, float]] = {
        ctrl: {b: energy_efficiency(results[ctrl][b]) for b in bench}
        for ctrl in names
    }
    bips: Dict[str, Dict[str, float]] = {
        ctrl: {b: throughput_bips(results[ctrl][b]) for b in bench}
        for ctrl in names
    }
    baselines = [n for n in names if n != "od-rl"]
    gain_vs: Dict[str, Dict[str, float]] = {
        c: {b: 100.0 * (eff["od-rl"][b] / eff[c][b] - 1.0) for b in bench}
        for c in baselines
    }
    gain: Dict[str, float] = {
        b: min(gain_vs[c][b] for c in baselines) for b in bench
    }
    max_gain = max(v for row in gain_vs.values() for v in row.values())

    report = "\n\n".join(
        [
            format_table(
                eff,
                bench,
                title=(
                    f"E4: energy efficiency (instructions/J), {n_cores} cores, "
                    f"budget {cfg.power_budget:.1f} W"
                ),
                fmt="{:.3e}",
            ),
            format_table(
                bips,
                bench,
                title="E4 (aux): mean throughput (BIPS)",
                fmt="{:.2f}",
            ),
            format_table(
                gain_vs,
                bench,
                title=(
                    "E4: OD-RL efficiency gain % vs each baseline "
                    f"(paper claim C2b: up to 23% — measured max {max_gain:.1f}%)"
                ),
                fmt="{:.1f}",
            ),
        ]
    )
    return ExperimentResult(
        experiment_id="E4",
        title="Energy efficiency",
        report=report,
        data={
            "efficiency": eff,
            "bips": bips,
            "gain_vs_baseline": gain_vs,
            "gain_vs_best_baseline": gain,
            "max_gain": max_gain,
            "results": results,
        },
    )
