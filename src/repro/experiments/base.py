"""Common experiment plumbing.

Every reconstructed experiment (E1–E8, see DESIGN.md) returns an
:class:`ExperimentResult`: a machine-readable ``data`` payload for tests
plus a rendered ``report`` string with the same rows/series the paper's
table or figure presents.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, Optional, Union

from repro.obs import Recorder

__all__ = ["ExperimentResult", "GridOptions"]


@dataclass(frozen=True)
class GridOptions:
    """How an experiment executes its simulation grid.

    Threaded from the CLI's ``--jobs`` / ``--cache`` / ``--trace`` /
    ``--profile`` flags into every experiment that sweeps a grid through
    :func:`repro.sim.runner.run_suite` / ``run_budget_sweep``.  The
    default (``jobs=1``, no cache, no observability) reproduces the
    historical serial behaviour byte-for-byte.

    Attributes
    ----------
    jobs:
        Worker process count for grid cells (``1`` = in-process serial).
    cache:
        Result-cache directory (or a
        :class:`repro.parallel.ResultCache`); ``None`` disables caching.
    recorder:
        Optional :class:`repro.obs.Recorder` receiving the run's typed
        event stream (the CLI passes a ``JsonlRecorder`` for ``--trace``).
    profile:
        Collect the per-epoch phase timing breakdown into
        ``result.extras["timing"]`` (wall clock only; never affects the
        simulated trajectories).
    batch:
        Stack compatible grid cells into tensor batches (the
        :mod:`repro.batch` backend, CLI ``--batch``): ``False`` disables,
        ``True`` batches each compatible group whole, an integer caps the
        stack size.  Bit-identical to the serial loop; incompatible cells
        fall back per cell with a recorded reason.
    journal:
        Campaign journal path (CLI ``--journal``): checkpoints every
        completed grid cell so a killed campaign resumes where it left
        off, recomputing only the missing cells.  ``None`` disables.
    timeout:
        Per-cell soft deadline in seconds (CLI ``--timeout``): a cell
        still running past it is cancelled, charged an attempt, and
        retried within the attempt budget.  ``None`` disables the
        watchdog.  The clock includes worker spawn/import time, so keep
        it comfortably above pool spin-up (~seconds).
    """

    jobs: int = 1
    cache: Optional[Union[str, Path, Any]] = None
    recorder: Optional[Recorder] = None
    profile: bool = False
    batch: Union[bool, int] = False
    journal: Optional[Union[str, Path, Any]] = None
    timeout: Optional[float] = None

    def __post_init__(self) -> None:
        if self.jobs < 1:
            raise ValueError(f"jobs must be >= 1, got {self.jobs}")
        if self.batch is not True and self.batch is not False and int(self.batch) < 1:
            raise ValueError(
                f"batch must be a bool or a positive int, got {self.batch}"
            )
        if self.timeout is not None and self.timeout <= 0:
            raise ValueError(f"timeout must be positive, got {self.timeout}")

    def runner_kwargs(self) -> Dict[str, Any]:
        """Keyword arguments for ``run_suite`` / ``run_budget_sweep``."""
        return {
            "jobs": self.jobs,
            "cache": self.cache,
            "recorder": self.recorder,
            "profile": self.profile,
            "batch": self.batch,
            "journal": self.journal,
            "timeout": self.timeout,
        }


@dataclass
class ExperimentResult:
    """Output of one experiment run.

    Attributes
    ----------
    experiment_id:
        "E1" … "E8".
    title:
        Human-readable description of the reconstructed table/figure.
    report:
        Rendered plain-text table(s)/series — what the bench harness
        prints.
    data:
        Structured values for programmatic checks (tests assert the
        paper-shape claims on these, e.g. "OD-RL's overshoot is the
        smallest column").
    """

    experiment_id: str
    title: str
    report: str
    data: Dict[str, Any] = field(default_factory=dict)

    def __str__(self) -> str:
        return f"[{self.experiment_id}] {self.title}\n{self.report}"
