"""Common experiment plumbing.

Every reconstructed experiment (E1–E8, see DESIGN.md) returns an
:class:`ExperimentResult`: a machine-readable ``data`` payload for tests
plus a rendered ``report`` string with the same rows/series the paper's
table or figure presents.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict

__all__ = ["ExperimentResult"]


@dataclass
class ExperimentResult:
    """Output of one experiment run.

    Attributes
    ----------
    experiment_id:
        "E1" … "E8".
    title:
        Human-readable description of the reconstructed table/figure.
    report:
        Rendered plain-text table(s)/series — what the bench harness
        prints.
    data:
        Structured values for programmatic checks (tests assert the
        paper-shape claims on these, e.g. "OD-RL's overshoot is the
        smallest column").
    """

    experiment_id: str
    title: str
    report: str
    data: Dict[str, Any] = field(default_factory=dict)

    def __str__(self) -> str:
        return f"[{self.experiment_id}] {self.title}\n{self.report}"
