"""E12 (extension) — VFI granularity study.

How much of OD-RL's benefit needs per-core voltage regulators?  The
experiment runs OD-RL behind :class:`~repro.sim.islands.IslandedController`
at island sizes from 1 (per-core) to chip-wide and reports the
throughput / compliance / efficiency at each granularity — the data a chip
architect needs to decide how many regulators to pay for.
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence

from repro.experiments.base import ExperimentResult
from repro.manycore.config import default_system
from repro.metrics.perf_metrics import energy_efficiency, throughput_bips
from repro.metrics.power_metrics import budget_utilization, over_budget_energy
from repro.metrics.report import format_table
from repro.sim.islands import IslandedController
from repro.sim.simulator import run_controller
from repro.workloads.suite import mixed_workload

__all__ = ["run_e12"]

_DEFAULT_SIZES = (1, 2, 4, 8, 16)


def run_e12(
    n_cores: int = 64,
    n_epochs: int = 2000,
    budget_fraction: float = 0.6,
    island_sizes: Optional[Sequence[int]] = None,
    seed: int = 0,
) -> ExperimentResult:
    """Run E12: OD-RL at several VFI granularities plus chip-wide.

    ``data['metrics'][island_size]`` holds bips / utilization / obe_J /
    instr_per_J at steady state.
    """
    sizes = list(island_sizes) if island_sizes else list(_DEFAULT_SIZES)
    if any(s <= 0 for s in sizes):
        raise ValueError(f"island sizes must be positive, got {sizes}")
    if n_cores not in sizes:
        sizes = sizes + [n_cores]  # always include chip-wide
    sizes = [s for s in sizes if s <= n_cores]
    cfg = default_system(n_cores=n_cores, budget_fraction=budget_fraction)
    workload = mixed_workload(n_cores, seed=seed)

    metrics: Dict[str, Dict[str, float]] = {}
    bips_by_size: Dict[int, float] = {}
    for size in sizes:
        controller = IslandedController(cfg, island_size=size)
        result = run_controller(cfg, workload, controller, n_epochs)
        steady = result.tail(0.5)
        label = f"island={size}" + (" (chip-wide)" if size == n_cores else "")
        metrics[label] = {
            "bips": throughput_bips(steady),
            "utilization": budget_utilization(steady),
            "obe_J": over_budget_energy(steady),
            "instr_per_J": energy_efficiency(steady),
        }
        bips_by_size[size] = metrics[label]["bips"]

    report = format_table(
        metrics,
        ["bips", "utilization", "obe_J", "instr_per_J"],
        title=(
            f"E12: OD-RL vs VFI granularity, {n_cores} cores, budget "
            f"{cfg.power_budget:.1f} W (steady state)"
        ),
        fmt="{:.4g}",
    )
    return ExperimentResult(
        experiment_id="E12",
        title="VFI granularity (extension)",
        report=report,
        data={"metrics": metrics, "bips_by_size": bips_by_size, "sizes": sizes},
    )
