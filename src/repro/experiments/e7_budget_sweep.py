"""E7 — sensitivity to the budget level.

Reconstructs the budget-sweep figure: throughput, over-budget energy and
utilization of each controller as the TDP varies from tight to loose
(fractions of worst-case peak power).  Shows where each policy's behaviour
crosses over — e.g. static provisioning catches up at loose budgets while
reactive schemes dominate at tight ones.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro.experiments.base import ExperimentResult, GridOptions
from repro.manycore.config import default_system
from repro.manycore.power import peak_chip_power
from repro.metrics.perf_metrics import throughput_bips
from repro.metrics.power_metrics import budget_utilization, over_budget_energy
from repro.metrics.report import format_series
from repro.sim.runner import run_budget_sweep, standard_controllers
from repro.workloads.suite import mixed_workload

__all__ = ["run_e7"]

_DEFAULT_CONTROLLERS = ("od-rl", "pid", "greedy-ascent", "static-uniform")
_DEFAULT_FRACTIONS = (0.4, 0.5, 0.6, 0.75, 0.9)


def run_e7(
    n_cores: int = 64,
    n_epochs: int = 1200,
    budget_fractions: Optional[Sequence[float]] = None,
    controllers: Optional[Sequence[str]] = None,
    seed: int = 0,
    grid: Optional[GridOptions] = None,
) -> ExperimentResult:
    """Run E7: metric curves vs. budget fraction of peak power."""
    fractions = (
        list(budget_fractions) if budget_fractions else list(_DEFAULT_FRACTIONS)
    )
    if any(not (0 < f <= 1) for f in fractions):
        raise ValueError(f"budget fractions must be in (0, 1], got {fractions}")
    names = list(controllers) if controllers else list(_DEFAULT_CONTROLLERS)
    cfg = default_system(n_cores=n_cores, budget_fraction=fractions[0])
    peak = peak_chip_power(cfg)
    budgets = [f * peak for f in fractions]
    workload = mixed_workload(n_cores, seed=seed)
    lineup = standard_controllers(seed=seed)
    chosen = {n: lineup[n] for n in names}
    results = run_budget_sweep(
        cfg, budgets, workload, chosen, n_epochs,
        **(grid or GridOptions()).runner_kwargs(),
    )

    bips: Dict[str, List[float]] = {}
    obe: Dict[str, List[float]] = {}
    util: Dict[str, List[float]] = {}
    for name in names:
        bips[name] = [throughput_bips(results[name][b]) for b in budgets]
        obe[name] = [over_budget_energy(results[name][b]) for b in budgets]
        util[name] = [budget_utilization(results[name][b]) for b in budgets]

    report = "\n\n".join(
        [
            format_series(
                fractions, bips, x_label="budget_frac",
                title=f"E7: throughput (BIPS) vs budget fraction, {n_cores} cores",
            ),
            format_series(
                fractions, obe, x_label="budget_frac",
                title="E7: over-budget energy (J) vs budget fraction",
            ),
            format_series(
                fractions, util, x_label="budget_frac",
                title="E7: budget utilization vs budget fraction",
            ),
        ]
    )
    return ExperimentResult(
        experiment_id="E7",
        title="Budget-level sensitivity",
        report=report,
        data={
            "fractions": fractions,
            "budgets": budgets,
            "bips": bips,
            "obe": obe,
            "utilization": util,
            "results": results,
        },
    )
