"""E13 (extension) — heterogeneous (big.LITTLE) chips.

On a chip mixing big and little cores the budget question changes shape:
a watt on a big core buys more absolute throughput, but a watt on a little
core is often cheaper per instruction.  The experiment runs the controller
lineup on a 50/50 big.LITTLE chip (each controller given the core-type map,
which is platform knowledge) and reports throughput / compliance /
efficiency plus where OD-RL's reallocator sends the watts per core type.
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence

import numpy as np

from repro.baselines import (
    GreedyAscentController,
    MaxBIPSController,
    PIDCappingController,
)
from repro.core import ODRLController
from repro.experiments.base import ExperimentResult
from repro.manycore.config import default_system
from repro.manycore.hetero import big_little_map
from repro.metrics.perf_metrics import energy_efficiency, throughput_bips
from repro.metrics.power_metrics import budget_utilization, over_budget_energy
from repro.metrics.report import format_table
from repro.sim.simulator import run_controller
from repro.workloads.suite import mixed_workload

__all__ = ["run_e13"]


def run_e13(
    n_cores: int = 64,
    n_epochs: int = 2000,
    budget_fraction: float = 0.35,
    big_fraction: float = 0.5,
    seed: int = 0,
) -> ExperimentResult:
    """Run E13: the controller lineup on a big.LITTLE chip.

    ``data['metrics'][controller]`` holds bips / utilization / obe_J /
    instr_per_J; ``data['allocation_by_type']`` records OD-RL's final mean
    budget share per core type.
    """
    if not (0 < big_fraction < 1):
        raise ValueError(f"big_fraction must be in (0, 1), got {big_fraction}")
    cfg = default_system(n_cores=n_cores, budget_fraction=budget_fraction)
    hetero = big_little_map(n_cores, big_fraction=big_fraction)
    workload = mixed_workload(n_cores, seed=seed)

    odrl = ODRLController(cfg, hetero=hetero, seed=seed)
    lineup = {
        "od-rl": odrl,
        "pid": PIDCappingController(cfg),
        "greedy-ascent": GreedyAscentController(cfg, hetero=hetero),
        "maxbips": MaxBIPSController(cfg, hetero=hetero),
    }
    metrics: Dict[str, Dict[str, float]] = {}
    for name, controller in lineup.items():
        result = run_controller(
            cfg, workload, controller, n_epochs, hetero=hetero
        )
        steady = result.tail(0.5)
        metrics[name] = {
            "bips": throughput_bips(steady),
            "utilization": budget_utilization(steady),
            "obe_J": over_budget_energy(steady),
            "instr_per_J": energy_efficiency(steady),
        }

    idx = hetero.type_indices()
    allocation_by_type = {
        type_name: float(np.mean(odrl.allocation[cores]))
        for type_name, cores in idx.items()
    }

    report = "\n\n".join(
        [
            format_table(
                metrics,
                ["bips", "utilization", "obe_J", "instr_per_J"],
                title=(
                    f"E13: big.LITTLE chip ({big_fraction:.0%} big), {n_cores} "
                    f"cores, budget {cfg.power_budget:.1f} W (steady state)"
                ),
                fmt="{:.4g}",
            ),
            format_table(
                {"od-rl mean share (W)": allocation_by_type},
                sorted(allocation_by_type),
                title="E13: OD-RL budget share per core type",
                fmt="{:.2f}",
            ),
        ]
    )
    return ExperimentResult(
        experiment_id="E13",
        title="Heterogeneous big.LITTLE chip (extension)",
        report=report,
        data={"metrics": metrics, "allocation_by_type": allocation_by_type},
    )
