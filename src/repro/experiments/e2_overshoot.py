"""E2 — budget overshoot per benchmark and controller (claim C1).

Reconstructs the overshoot bar chart: over-budget energy for every
controller on every benchmark, plus OD-RL's reduction relative to the
baselines.  The abstract's claim is "up to 98 % less budget overshoot".
"""

from __future__ import annotations

from typing import Dict, Mapping, Optional, Sequence

from repro.experiments.base import ExperimentResult, GridOptions
from repro.manycore.config import default_system
from repro.metrics.power_metrics import over_budget_energy, overshoot_fraction
from repro.metrics.report import format_table
from repro.sim.results import SimulationResult
from repro.sim.runner import run_suite, standard_controllers
from repro.workloads.suite import benchmark_names, make_benchmark

__all__ = ["run_e2", "DEFAULT_BENCHMARKS", "DEFAULT_CONTROLLERS"]

DEFAULT_BENCHMARKS = (
    "barnes",
    "ocean",
    "fft",
    "blackscholes",
    "canneal",
    "fluidanimate",
)
DEFAULT_CONTROLLERS = ("od-rl", "pid", "greedy-ascent", "steepest-drop", "maxbips")


def run_e2(
    n_cores: int = 64,
    n_epochs: int = 1500,
    budget_fraction: float = 0.6,
    benchmarks: Optional[Sequence[str]] = None,
    controllers: Optional[Sequence[str]] = None,
    seed: int = 0,
    results: Optional[Mapping[str, Mapping[str, SimulationResult]]] = None,
    grid: Optional[GridOptions] = None,
) -> ExperimentResult:
    """Run E2: over-budget energy across the suite.

    Returns an :class:`ExperimentResult` whose ``data`` contains:

    * ``obe[controller][benchmark]`` — over-budget energy in joules,
    * ``reduction_vs_baseline[baseline][benchmark]`` — OD-RL's overshoot
      reduction versus each baseline,
    * ``reduction_vs_best_baseline`` — versus the lowest-overshoot baseline,
    * ``max_reduction`` — the headline "up to X % less" number.

    Parameters
    ----------
    results:
        Optionally reuse a matching simulation sweep (same parameters)
        instead of re-simulating; E3/E4 accept the same mapping.
    """
    bench = list(benchmarks) if benchmarks else list(DEFAULT_BENCHMARKS)
    names = list(controllers) if controllers else list(DEFAULT_CONTROLLERS)
    unknown = set(bench) - set(benchmark_names())
    if unknown:
        raise KeyError(f"unknown benchmarks: {sorted(unknown)}")
    if "od-rl" not in names:
        raise ValueError("E2 requires 'od-rl' among the controllers")
    cfg = default_system(n_cores=n_cores, budget_fraction=budget_fraction)
    if results is None:
        workloads = {b: make_benchmark(b, n_cores, seed=seed) for b in bench}
        lineup = standard_controllers(seed=seed)
        chosen = {n: lineup[n] for n in names}
        results = run_suite(
            cfg, workloads, chosen, n_epochs,
            **(grid or GridOptions()).runner_kwargs(),
        )

    obe: Dict[str, Dict[str, float]] = {}
    ofrac: Dict[str, Dict[str, float]] = {}
    for ctrl in names:
        obe[ctrl] = {b: over_budget_energy(results[ctrl][b]) for b in bench}
        ofrac[ctrl] = {b: overshoot_fraction(results[ctrl][b]) for b in bench}

    baselines = [n for n in names if n != "od-rl"]

    def _reduction(ours: float, theirs: float) -> float:
        if theirs <= 0:
            return 0.0 if ours <= 0 else -float("inf")
        return 100.0 * (1.0 - ours / theirs)

    # Reduction of OD-RL's overshoot versus every baseline individually
    # ("up to X% less than state-of-the-art algorithms" is a max over both
    # benchmarks and baselines), plus versus the best baseline per
    # benchmark (the conservative comparison).
    reduction_vs: Dict[str, Dict[str, float]] = {
        c: {b: _reduction(obe["od-rl"][b], obe[c][b]) for b in bench}
        for c in baselines
    }
    reduction: Dict[str, float] = {
        b: _reduction(obe["od-rl"][b], min(obe[c][b] for c in baselines))
        for b in bench
    }
    max_reduction = max(
        v for row in reduction_vs.values() for v in row.values()
    )

    report = "\n\n".join(
        [
            format_table(
                obe,
                bench,
                title=(
                    f"E2: over-budget energy (J), {n_cores} cores, "
                    f"budget {cfg.power_budget:.1f} W, {n_epochs} epochs"
                ),
                fmt="{:.4f}",
            ),
            format_table(
                ofrac,
                bench,
                title="E2 (aux): fraction of epochs over budget",
                fmt="{:.3f}",
            ),
            format_table(
                reduction_vs,
                bench,
                title=(
                    "E2: OD-RL overshoot reduction % vs each baseline "
                    f"(paper claim C1: up to 98% less — measured max {max_reduction:.1f}%)"
                ),
                fmt="{:.1f}",
            ),
        ]
    )
    return ExperimentResult(
        experiment_id="E2",
        title="Budget overshoot per benchmark",
        report=report,
        data={
            "obe": obe,
            "overshoot_fraction": ofrac,
            "reduction_vs_baseline": reduction_vs,
            "reduction_vs_best_baseline": reduction,
            "max_reduction": max_reduction,
            "results": results,
        },
    )
