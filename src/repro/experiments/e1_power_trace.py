"""E1 — chip power vs. time under the budget, per controller.

Reconstructs the power-trace tracking figure: run every controller on the
heterogeneous mixed workload and report the chip power trace (downsampled),
showing how each policy converges to / hunts around / ignores the TDP line.
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence

import numpy as np

from repro.experiments.base import ExperimentResult, GridOptions
from repro.manycore.config import default_system
from repro.metrics.report import format_series
from repro.sim.runner import run_suite, standard_controllers
from repro.workloads.suite import mixed_workload

__all__ = ["run_e1"]

_DEFAULT_CONTROLLERS = ("od-rl", "pid", "greedy-ascent", "maxbips", "uncapped")


def run_e1(
    n_cores: int = 64,
    n_epochs: int = 1500,
    budget_fraction: float = 0.6,
    controllers: Optional[Sequence[str]] = None,
    n_points: int = 30,
    seed: int = 0,
    grid: Optional[GridOptions] = None,
) -> ExperimentResult:
    """Run E1 and return the power-trace series.

    Parameters
    ----------
    n_cores, n_epochs, budget_fraction:
        System scale of the run.
    controllers:
        Names from :func:`~repro.sim.runner.standard_controllers` to
        include; defaults to the representative five.
    n_points:
        Downsampled trace length in the report.
    seed:
        Workload and learning seed.
    grid:
        Parallel-execution / caching options for the simulation grid.
    """
    if n_points < 2:
        raise ValueError(f"n_points must be >= 2, got {n_points}")
    names = list(controllers) if controllers else list(_DEFAULT_CONTROLLERS)
    cfg = default_system(n_cores=n_cores, budget_fraction=budget_fraction)
    workload = mixed_workload(n_cores, seed=seed)
    lineup = standard_controllers(seed=seed)
    missing = [n for n in names if n not in lineup]
    if missing:
        raise KeyError(f"unknown controller names: {missing}")
    chosen = {n: lineup[n] for n in names}
    results = run_suite(
        cfg, {"mixed": workload}, chosen, n_epochs,
        **(grid or GridOptions()).runner_kwargs(),
    )

    # Downsample by block-averaging so short excursions still register.
    block = max(1, n_epochs // n_points)
    n_blocks = n_epochs // block
    times = (np.arange(n_blocks) + 0.5) * block * cfg.epoch_time
    traces: Dict[str, np.ndarray] = {}
    for name in names:
        p = results[name]["mixed"].chip_power[: n_blocks * block]
        traces[name] = p.reshape(n_blocks, block).mean(axis=1)
    series = {name: traces[name].tolist() for name in names}
    series["budget"] = [cfg.power_budget] * n_blocks

    report = format_series(
        times.tolist(),
        series,
        x_label="time_s",
        title=(
            f"E1: chip power trace (W), {n_cores} cores, "
            f"budget {cfg.power_budget:.1f} W"
        ),
    )
    return ExperimentResult(
        experiment_id="E1",
        title="Chip power vs. time under TDP",
        report=report,
        data={
            "budget": cfg.power_budget,
            "times": times,
            "traces": traces,
            "results": results,
        },
    )
