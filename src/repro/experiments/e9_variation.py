"""E9 (extension) — robustness to manufacturing process variation.

Not in the original paper, but the natural stress test of its thesis:
does OD-RL's budget compliance survive a die whose cores differ in leakage
by 2–3x?  The experiment runs the same controllers on a nominal die and on
a varied die (same workload, same seeds) and compares over-budget energy
and throughput across the two.

Honest finding from this substrate: *static* variation is largely absorbed
by any controller that recalibrates from per-epoch telemetry — the greedy
and MaxBIPS estimators re-fit each core's power every epoch, so their
per-core model errors stay local and small.  What E9 therefore establishes
is (a) OD-RL's compliance and throughput are essentially unchanged on a
varied die (the contribution is variation-robust), and (b) no baseline
collapses either — the variation argument for model-free control bites
against *offline-calibrated* models, not against on-line-refit ones.
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence

import numpy as np

from repro.experiments.base import ExperimentResult
from repro.manycore.config import default_system
from repro.manycore.variation import VariationParams, sample_variation
from repro.metrics.perf_metrics import throughput_bips
from repro.metrics.power_metrics import over_budget_energy
from repro.metrics.report import format_table
from repro.sim.runner import standard_controllers
from repro.sim.simulator import run_controller
from repro.workloads.suite import mixed_workload

__all__ = ["run_e9"]

_DEFAULT_CONTROLLERS = ("od-rl", "pid", "greedy-ascent", "maxbips")


def run_e9(
    n_cores: int = 64,
    n_epochs: int = 1500,
    budget_fraction: float = 0.6,
    leak_sigma: float = 0.35,
    controllers: Optional[Sequence[str]] = None,
    seed: int = 0,
) -> ExperimentResult:
    """Run E9: nominal die vs. varied die, same controllers and workload.

    ``data['obe']`` and ``data['bips']`` map
    ``controller -> {'nominal': x, 'varied': y}``;
    ``data['degradation']`` holds each controller's over-budget-energy
    increase (varied minus nominal, joules).
    """
    if leak_sigma < 0:
        raise ValueError(f"leak_sigma must be >= 0, got {leak_sigma}")
    names = list(controllers) if controllers else list(_DEFAULT_CONTROLLERS)
    if "od-rl" not in names:
        raise ValueError("E9 requires 'od-rl' among the controllers")
    cfg = default_system(n_cores=n_cores, budget_fraction=budget_fraction)
    workload = mixed_workload(n_cores, seed=seed)
    variation = sample_variation(
        cfg,
        VariationParams(leak_sigma=leak_sigma),
        rng=np.random.default_rng(seed + 1),
    )
    lineup = standard_controllers(seed=seed)
    chosen = {n: lineup[n] for n in names}

    obe: Dict[str, Dict[str, float]] = {}
    bips: Dict[str, Dict[str, float]] = {}
    for name, factory in chosen.items():
        nominal = run_controller(cfg, workload, factory(cfg), n_epochs)
        varied = run_controller(
            cfg, workload, factory(cfg), n_epochs, variation=variation
        )
        obe[name] = {
            "nominal": over_budget_energy(nominal),
            "varied": over_budget_energy(varied),
        }
        bips[name] = {
            "nominal": throughput_bips(nominal),
            "varied": throughput_bips(varied),
        }

    degradation = {name: obe[name]["varied"] - obe[name]["nominal"] for name in names}
    report = "\n\n".join(
        [
            format_table(
                obe,
                ["nominal", "varied"],
                title=(
                    f"E9: over-budget energy (J), nominal vs varied die "
                    f"(leak sigma {leak_sigma}), {n_cores} cores"
                ),
                fmt="{:.4f}",
            ),
            format_table(
                bips,
                ["nominal", "varied"],
                title="E9 (aux): throughput (BIPS), nominal vs varied die",
                fmt="{:.2f}",
            ),
            format_table(
                {"OBE increase (J)": degradation},
                names,
                title=(
                    "E9: over-budget-energy increase under variation (all "
                    "on-line controllers recalibrate from telemetry, so "
                    "increases are small; OD-RL stays among the lowest)"
                ),
                fmt="{:.4f}",
            ),
        ]
    )
    return ExperimentResult(
        experiment_id="E9",
        title="Process-variation robustness (extension)",
        report=report,
        data={
            "obe": obe,
            "bips": bips,
            "degradation": degradation,
            "leak_sigma": leak_sigma,
        },
    )
