"""E11 (extension) — shared-memory bandwidth contention.

With a bandwidth-limited memory system, cores interact: memory-heavy cores
inflate everyone's effective latency.  The watts spent clocking a
memory-bound core high are now doubly wasted — they buy little throughput
*and* they slow other cores down.  The coarse level of OD-RL should
therefore matter more under contention: moving budget from memory-bound to
compute-bound cores both raises the recipients' throughput and relieves
the queueing everyone suffers.

The experiment measures the throughput gain of OD-RL's global reallocation
(on vs. off) with and without a contended memory system.
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.core import ODRLController
from repro.experiments.base import ExperimentResult
from repro.manycore.config import default_system
from repro.manycore.memory import MemorySystem, MemorySystemParams
from repro.metrics.perf_metrics import throughput_bips
from repro.metrics.report import format_table
from repro.sim.simulator import run_controller
from repro.workloads.suite import mixed_workload

__all__ = ["run_e11"]


def run_e11(
    n_cores: int = 64,
    n_epochs: int = 2000,
    budget_fraction: float = 0.6,
    per_core_bandwidth: float = 5e6,
    seed: int = 0,
) -> ExperimentResult:
    """Run E11: reallocation gain, contended vs. uncontended memory.

    ``data['bips'][memory_regime][variant]`` holds steady-state throughput;
    ``data['realloc_gain']`` maps regime -> relative gain of reallocation.
    """
    if per_core_bandwidth <= 0:
        raise ValueError(
            f"per_core_bandwidth must be positive, got {per_core_bandwidth}"
        )
    cfg = default_system(n_cores=n_cores, budget_fraction=budget_fraction)
    workload = mixed_workload(n_cores, seed=seed)

    def memory_for(regime: str) -> Optional[MemorySystem]:
        if regime == "uncontended":
            return None
        return MemorySystem(
            MemorySystemParams(bandwidth=per_core_bandwidth * n_cores)
        )

    bips: Dict[str, Dict[str, float]] = {}
    for regime in ("uncontended", "contended"):
        bips[regime] = {}
        for variant, period in (("realloc", 10), ("no-realloc", 0)):
            controller = ODRLController(cfg, realloc_period=period, seed=seed)
            result = run_controller(
                cfg, workload, controller, n_epochs, memory_system=memory_for(regime)
            )
            bips[regime][variant] = throughput_bips(result.tail(0.5))

    realloc_gain = {
        regime: bips[regime]["realloc"] / bips[regime]["no-realloc"] - 1.0
        for regime in bips
    }
    report = "\n\n".join(
        [
            format_table(
                bips,
                ["realloc", "no-realloc"],
                title=(
                    f"E11: OD-RL steady throughput (BIPS) with/without global "
                    f"reallocation, {n_cores} cores, "
                    f"{per_core_bandwidth:.0e} accesses/s/core memory bandwidth"
                ),
                fmt="{:.2f}",
            ),
            format_table(
                {"realloc gain": {k: 100 * v for k, v in realloc_gain.items()}},
                ["uncontended", "contended"],
                title=(
                    "E11: reallocation gain (%) — contention should raise the "
                    "value of moving watts between cores"
                ),
                fmt="{:.1f}",
            ),
        ]
    )
    return ExperimentResult(
        experiment_id="E11",
        title="Memory-bandwidth contention (extension)",
        report=report,
        data={"bips": bips, "realloc_gain": realloc_gain},
    )
