"""Reconstructed evaluation experiments (see DESIGN.md for the E* index)."""

from typing import Callable, Dict

from repro.experiments.base import ExperimentResult
from repro.experiments.e10_thermal import run_e10
from repro.experiments.e11_contention import run_e11
from repro.experiments.e12_granularity import run_e12
from repro.experiments.e13_biglittle import run_e13
from repro.experiments.e14_energy_frontier import run_e14
from repro.experiments.e15_fault_resilience import run_e15
from repro.experiments.e16_offline import run_e16
from repro.experiments.e1_power_trace import run_e1
from repro.experiments.e2_overshoot import run_e2
from repro.experiments.e3_tpobe import run_e3
from repro.experiments.e4_efficiency import run_e4
from repro.experiments.e5_scalability import run_e5
from repro.experiments.e6_convergence import run_e6
from repro.experiments.e7_budget_sweep import run_e7
from repro.experiments.e8_ablation import run_e8
from repro.experiments.e9_variation import run_e9

__all__ = [
    "ExperimentResult",
    "run_e1",
    "run_e2",
    "run_e3",
    "run_e4",
    "run_e5",
    "run_e6",
    "run_e7",
    "run_e8",
    "run_e9",
    "run_e10",
    "run_e11",
    "run_e12",
    "run_e13",
    "run_e14",
    "run_e15",
    "run_e16",
    "EXPERIMENTS",
]

#: registry: experiment id -> zero-arg-callable default run.  E1–E8
#: reconstruct the paper's evaluation; E9–E16 are extension studies
#: (variation robustness, thermal limit, memory contention, VFI
#: granularity, big.LITTLE heterogeneity, energy/performance frontier,
#: fault resilience, offline-RL warm start).
EXPERIMENTS: Dict[str, Callable[..., ExperimentResult]] = {
    "E1": run_e1,
    "E2": run_e2,
    "E3": run_e3,
    "E4": run_e4,
    "E5": run_e5,
    "E6": run_e6,
    "E7": run_e7,
    "E8": run_e8,
    "E9": run_e9,
    "E10": run_e10,
    "E11": run_e11,
    "E12": run_e12,
    "E13": run_e13,
    "E14": run_e14,
    "E15": run_e15,
    "E16": run_e16,
}
