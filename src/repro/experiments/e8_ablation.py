"""E8 — ablations of OD-RL's design choices.

Three axes, called out in DESIGN.md:

1. **Global reallocation period** — off (0) vs fast (10) vs slow (50)
   epochs.  Tests how much of OD-RL's win comes from the coarse level.
2. **State encoding** — slack-only vs slack+IPC vs slack+IPC+level.
3. **Overshoot penalty weight** (lambda) and **action mode**
   (relative vs absolute) — the compliance/utilization trade-off.
4. **TD rule** — off-policy Q-learning vs on-policy SARSA.
"""

from __future__ import annotations

from typing import Dict

from repro.core import ODRLController, RewardParams, StateEncoder
from repro.experiments.base import ExperimentResult
from repro.manycore.config import SystemConfig, default_system
from repro.metrics.perf_metrics import energy_efficiency, throughput_bips
from repro.metrics.power_metrics import budget_utilization, over_budget_energy
from repro.metrics.report import format_table
from repro.sim.simulator import run_controller
from repro.workloads.suite import mixed_workload

__all__ = ["run_e8", "ablation_variants"]

_METRIC_COLUMNS = ("bips", "obe_J", "utilization", "instr_per_J")


def ablation_variants(cfg: SystemConfig, seed: int = 0) -> Dict[str, ODRLController]:
    """All OD-RL variants evaluated in E8, keyed by a descriptive label."""
    return {
        "default (realloc=10, slack_ipc, rel, lam=1)": ODRLController(cfg, seed=seed),
        "no-realloc": ODRLController(cfg, realloc_period=0, seed=seed),
        "realloc=50": ODRLController(cfg, realloc_period=50, seed=seed),
        "state=slack": ODRLController(
            cfg, encoder=StateEncoder.variant("slack", cfg.n_levels), seed=seed
        ),
        "state=slack_ipc_level": ODRLController(
            cfg,
            encoder=StateEncoder.variant("slack_ipc_level", cfg.n_levels),
            seed=seed,
        ),
        "actions=absolute": ODRLController(cfg, action_mode="absolute", seed=seed),
        "td=sarsa": ODRLController(cfg, td_rule="sarsa", seed=seed),
        "lam=0.5": ODRLController(
            cfg, reward_params=RewardParams(overshoot_weight=0.5), seed=seed
        ),
        "lam=4": ODRLController(
            cfg, reward_params=RewardParams(overshoot_weight=4.0), seed=seed
        ),
    }


def run_e8(
    n_cores: int = 64,
    n_epochs: int = 2000,
    budget_fraction: float = 0.6,
    seed: int = 0,
) -> ExperimentResult:
    """Run E8: every ablation variant on the mixed workload.

    ``data['metrics'][variant]`` holds bips / obe_J / utilization /
    instr_per_J; steady-state values are computed on the last half of the
    run so learning transients do not blur the comparison.
    """
    cfg = default_system(n_cores=n_cores, budget_fraction=budget_fraction)
    workload = mixed_workload(n_cores, seed=seed)
    variants = ablation_variants(cfg, seed=seed)

    metrics: Dict[str, Dict[str, float]] = {}
    for label, controller in variants.items():
        result = run_controller(cfg, workload, controller, n_epochs)
        steady = result.tail(0.5)
        metrics[label] = {
            "bips": throughput_bips(steady),
            "obe_J": over_budget_energy(steady),
            "utilization": budget_utilization(steady),
            "instr_per_J": energy_efficiency(steady),
        }

    report = format_table(
        metrics,
        _METRIC_COLUMNS,
        title=(
            f"E8: OD-RL ablations (steady-state, last half of {n_epochs} epochs), "
            f"{n_cores} cores, budget {cfg.power_budget:.1f} W"
        ),
        fmt="{:.4g}",
    )
    return ExperimentResult(
        experiment_id="E8",
        title="OD-RL design ablations",
        report=report,
        data={"metrics": metrics},
    )
