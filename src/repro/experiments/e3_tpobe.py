"""E3 — throughput per over-the-budget energy (claim C2a).

Reconstructs the paper's headline ratio figure: how much work each
controller delivers per joule it spends violating the budget.  The abstract
claims OD-RL achieves "up to 44.3x better throughput per over-the-budget
energy" than the baselines.
"""

from __future__ import annotations

from typing import Dict, Mapping, Optional, Sequence

from repro.experiments.base import ExperimentResult, GridOptions
from repro.experiments.e2_overshoot import DEFAULT_BENCHMARKS, DEFAULT_CONTROLLERS
from repro.manycore.config import default_system
from repro.metrics.perf_metrics import OBE_FLOOR, throughput_per_over_budget_energy
from repro.metrics.power_metrics import over_budget_energy
from repro.metrics.report import format_table
from repro.sim.results import SimulationResult
from repro.sim.runner import run_suite, standard_controllers
from repro.workloads.suite import make_benchmark

__all__ = ["run_e3"]


def run_e3(
    n_cores: int = 64,
    n_epochs: int = 1500,
    budget_fraction: float = 0.6,
    benchmarks: Optional[Sequence[str]] = None,
    controllers: Optional[Sequence[str]] = None,
    seed: int = 0,
    results: Optional[Mapping[str, Mapping[str, SimulationResult]]] = None,
    grid: Optional[GridOptions] = None,
) -> ExperimentResult:
    """Run E3: throughput per over-budget energy across the suite.

    Parameters
    ----------
    results:
        Optionally reuse the simulation results of an earlier E2 run with
        matching parameters instead of re-simulating.
    """
    bench = list(benchmarks) if benchmarks else list(DEFAULT_BENCHMARKS)
    names = list(controllers) if controllers else list(DEFAULT_CONTROLLERS)
    if "od-rl" not in names:
        raise ValueError("E3 requires 'od-rl' among the controllers")
    cfg = default_system(n_cores=n_cores, budget_fraction=budget_fraction)
    if results is None:
        workloads = {b: make_benchmark(b, n_cores, seed=seed) for b in bench}
        lineup = standard_controllers(seed=seed)
        chosen = {n: lineup[n] for n in names}
        results = run_suite(
            cfg, workloads, chosen, n_epochs,
            **(grid or GridOptions()).runner_kwargs(),
        )

    tpobe: Dict[str, Dict[str, float]] = {
        ctrl: {
            b: throughput_per_over_budget_energy(results[ctrl][b]) for b in bench
        }
        for ctrl in names
    }
    baselines = [n for n in names if n != "od-rl"]
    advantage_vs: Dict[str, Dict[str, float]] = {
        c: {
            b: (tpobe["od-rl"][b] / tpobe[c][b] if tpobe[c][b] > 0 else float("inf"))
            for b in bench
        }
        for c in baselines
    }
    advantage: Dict[str, float] = {
        b: min(advantage_vs[c][b] for c in baselines) for b in bench
    }
    max_advantage = max(v for row in advantage_vs.values() for v in row.values())
    # Benchmarks where OD-RL's overshoot was exactly zero hit the OBE floor
    # and produce sentinel-scale ratios; the finite headline — comparable to
    # the paper's "up to 44.3x" — is taken over the rest.
    finite_bench = [
        b for b in bench
        if over_budget_energy(results["od-rl"][b]) > OBE_FLOOR
    ]
    finite_values = [
        advantage_vs[c][b] for c in baselines for b in finite_bench
    ]
    max_finite_advantage = max(finite_values) if finite_values else float("inf")

    report = "\n\n".join(
        [
            format_table(
                tpobe,
                bench,
                title=(
                    f"E3: throughput per over-budget energy (instr/J), "
                    f"{n_cores} cores, budget {cfg.power_budget:.1f} W"
                ),
                fmt="{:.3e}",
            ),
            format_table(
                advantage_vs,
                bench,
                title=(
                    "E3: OD-RL advantage (x) over each baseline "
                    "(paper claim C2a: up to 44.3x — measured max "
                    f"{max_finite_advantage:.1f}x on benchmarks where OD-RL "
                    "overshot at all; zero-overshoot benchmarks saturate the ratio)"
                ),
                fmt="{:.2f}",
            ),
        ]
    )
    return ExperimentResult(
        experiment_id="E3",
        title="Throughput per over-the-budget energy",
        report=report,
        data={
            "tpobe": tpobe,
            "advantage_vs_baseline": advantage_vs,
            "advantage_vs_best_baseline": advantage,
            "max_advantage": max_advantage,
            "max_finite_advantage": max_finite_advantage,
            "results": results,
        },
    )
