"""Fault injection and graceful degradation.

Deterministic fault campaigns (:mod:`repro.faults.campaign`), their
runtime application to the plant (:mod:`repro.faults.injector`), the
controller-side telemetry sanitizer (:mod:`repro.faults.sanitizer`), and
the simulator's watchdog wrapper (:mod:`repro.faults.watchdog`).  See
``docs/robustness.md`` for the taxonomy and the degradation policies.
"""

from repro.faults.campaign import (
    SENSOR_CHANNELS,
    ActuatorFault,
    ControllerCrash,
    CoreDeathFault,
    FaultCampaign,
    TelemetryBlackout,
)
from repro.faults.injector import FaultInjector
from repro.faults.sanitizer import (
    SanitizedTelemetry,
    SanitizerPolicy,
    TelemetrySanitizer,
)
from repro.faults.watchdog import WatchdogController

__all__ = [
    "SENSOR_CHANNELS",
    "ActuatorFault",
    "ControllerCrash",
    "CoreDeathFault",
    "FaultCampaign",
    "TelemetryBlackout",
    "FaultInjector",
    "SanitizedTelemetry",
    "SanitizerPolicy",
    "TelemetrySanitizer",
    "WatchdogController",
]
