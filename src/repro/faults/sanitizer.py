"""Controller-side telemetry sanitization: never learn from lies.

Sensors drop samples, black out whole epochs, and — through the chip's
fault campaign — can feed a controller zeros and garbage.  Feeding those
readings straight into reward computation and state encoding poisons the
Q-tables with transitions that never happened.  The sanitizer sits between
the raw observation and the learner and applies a standard firmware
discipline, per core and per epoch:

1. **Reject** readings that cannot be physical: non-finite values, power
   at or below the dropout floor (a live core always draws leakage, so a
   ~0 W reading is a failed transaction, not data), negative instruction
   counts, and temperatures below absolute plausibility.
2. **Hold last good** for up to ``max_staleness_epochs`` epochs — the
   previous accepted reading is the best available estimate over short
   outages.
3. **Fall back to the allocation-neutral estimate** beyond the staleness
   window: assume the core draws exactly its budget share (zero measured
   slack — the estimate that neither rewards nor punishes), retires
   nothing, and sits at the fallback temperature.

Every sanitized core is reported in the ``trusted`` mask so the caller can
exclude it from TD updates — agents only ever learn from samples a sensor
actually produced.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["SanitizerPolicy", "SanitizedTelemetry", "TelemetrySanitizer"]


@dataclass(frozen=True)
class SanitizerPolicy:
    """Tunables of the telemetry sanitizer.

    Attributes
    ----------
    max_staleness_epochs:
        How many consecutive epochs a rejected reading may be bridged by
        holding the last accepted one before falling back to the
        allocation-neutral estimate.
    power_floor_w:
        Readings at or below this many watts are treated as dropouts (a
        powered core always draws leakage, well above this).
    min_temperature_k:
        Temperatures below this are sensor garbage, not data.
    fallback_temperature_k:
        Temperature reported once a core is past the staleness window
        (typically the ambient temperature).
    """

    max_staleness_epochs: int = 5
    power_floor_w: float = 1e-3
    min_temperature_k: float = 100.0
    fallback_temperature_k: float = 318.0

    def __post_init__(self) -> None:
        if self.max_staleness_epochs < 0:
            raise ValueError(
                f"max_staleness_epochs must be >= 0, got {self.max_staleness_epochs}"
            )
        if self.power_floor_w < 0:
            raise ValueError(f"power_floor_w must be >= 0, got {self.power_floor_w}")


@dataclass(frozen=True)
class SanitizedTelemetry:
    """Sanitized per-core readings plus provenance.

    Attributes
    ----------
    power:
        Power estimate per core, watts.
    instructions:
        Instruction-count estimate per core.
    temperature:
        Temperature estimate per core, kelvin.
    trusted:
        True where the raw reading was accepted as-is; False where the
        sanitizer substituted a held or fallback value.  Untrusted cores
        must not drive TD updates.
    staleness:
        Consecutive epochs each core has gone without an accepted reading.
    """

    power: np.ndarray
    instructions: np.ndarray
    temperature: np.ndarray
    trusted: np.ndarray
    staleness: np.ndarray


class TelemetrySanitizer:
    """Per-run stateful sanitizer for one controller's telemetry stream.

    Parameters
    ----------
    n_cores:
        Number of cores (and telemetry lanes).
    policy:
        Rejection/staleness tunables; defaults are conservative.
    """

    def __init__(self, n_cores: int, policy: SanitizerPolicy | None = None) -> None:
        if n_cores < 1:
            raise ValueError(f"n_cores must be >= 1, got {n_cores}")
        self.policy = policy if policy is not None else SanitizerPolicy()
        self.n_cores = n_cores
        self.rejected_samples = 0
        self.fallback_samples = 0
        self._staleness = np.zeros(n_cores, dtype=int)
        self._have_good = np.zeros(n_cores, dtype=bool)
        self._last_power = np.zeros(n_cores)
        self._last_instructions = np.zeros(n_cores)
        self._last_temperature = np.full(n_cores, self.policy.fallback_temperature_k)

    def reset(self) -> None:
        """Forget held readings and counters (start of a fresh run)."""
        self.rejected_samples = 0
        self.fallback_samples = 0
        self._staleness.fill(0)
        self._have_good.fill(False)
        self._last_power.fill(0.0)
        self._last_instructions.fill(0.0)
        self._last_temperature.fill(self.policy.fallback_temperature_k)

    def sanitize(
        self,
        power: np.ndarray,
        instructions: np.ndarray,
        temperature: np.ndarray,
        allocation: np.ndarray,
    ) -> SanitizedTelemetry:
        """Vet one epoch of raw sensor readings.

        Parameters
        ----------
        power:
            Raw sensed per-core power, watts.
        instructions:
            Raw sensed per-core retired-instruction counts.
        temperature:
            Raw sensed per-core temperature, kelvin.
        allocation:
            Current per-core budget shares in watts — the allocation-
            neutral power estimate used beyond the staleness window.
        """
        policy = self.policy
        power = np.asarray(power, dtype=float)
        instructions = np.asarray(instructions, dtype=float)
        temperature = np.asarray(temperature, dtype=float)
        allocation = np.asarray(allocation, dtype=float)
        for name, arr in (
            ("power", power),
            ("instructions", instructions),
            ("temperature", temperature),
            ("allocation", allocation),
        ):
            if arr.shape != (self.n_cores,):
                raise ValueError(
                    f"{name} must have shape ({self.n_cores},), got {arr.shape}"
                )

        valid = (
            np.isfinite(power)
            & np.isfinite(instructions)
            & np.isfinite(temperature)
            & (power > policy.power_floor_w)
            & (instructions >= 0.0)
            & (temperature >= policy.min_temperature_k)
        )
        self.rejected_samples += int(np.sum(~valid))

        # Accepted readings refresh the hold registers.
        self._last_power = np.where(valid, power, self._last_power)
        self._last_instructions = np.where(valid, instructions, self._last_instructions)
        self._last_temperature = np.where(valid, temperature, self._last_temperature)
        self._have_good |= valid
        self._staleness = np.where(valid, 0, self._staleness + 1)

        hold = (
            ~valid
            & self._have_good
            & (self._staleness <= policy.max_staleness_epochs)
        )
        fallback = ~valid & ~hold
        self.fallback_samples += int(np.sum(fallback))

        out_power = np.where(valid, power, self._last_power)
        out_instr = np.where(valid, instructions, self._last_instructions)
        out_temp = np.where(valid, temperature, self._last_temperature)
        # Allocation-neutral estimate: the core draws exactly its share
        # (zero slack), retires nothing, sits at the fallback temperature.
        out_power = np.where(fallback, allocation, out_power)
        out_instr = np.where(fallback, 0.0, out_instr)
        out_temp = np.where(fallback, policy.fallback_temperature_k, out_temp)

        return SanitizedTelemetry(
            power=out_power,
            instructions=out_instr,
            temperature=out_temp,
            trusted=valid,
            staleness=self._staleness.copy(),
        )
