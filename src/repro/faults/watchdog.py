"""Watchdog wrapper: the control loop survives its controller.

Real power-management stacks put the policy behind a watchdog: if the
policy process throws, wedges, or returns garbage, firmware applies a safe
action and the chip keeps running.  :class:`WatchdogController` gives the
simulator the same property.  It wraps any
:class:`~repro.sim.interface.Controller` and, every epoch:

* runs the inner ``decide`` inside a try/except; an exception (or a
  malformed level vector) is **recorded** in ``failure_log`` and the
  fallback action — hold the last applied levels, or the safe bottom
  level before any decision exists — is applied instead;
* after ``max_strikes`` *consecutive* failures, declares the inner
  controller sick, resets it, and (when checkpointing is armed) restores
  the last checkpoint — the safe-state reflex for a policy whose internal
  state went bad;
* simulates scheduled :class:`~repro.faults.campaign.ControllerCrash`
  events: at a crash epoch the inner controller loses all in-memory state
  (``reset``), then resumes from the last checkpoint if one exists;
* checkpoints the inner controller every ``checkpoint_period`` epochs via
  its ``checkpoint()``/``restore()`` methods (any controller without them
  simply restarts cold — the honest behaviour for memoryless baselines).

The wrapper is deterministic: same inner controller, same campaign, same
trajectory, bit for bit.
"""

from __future__ import annotations

import time
from typing import Any, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.manycore.chip import EpochObservation
from repro.sim.interface import Controller

__all__ = ["WatchdogController"]


class WatchdogController(Controller):
    """Fault-tolerant wrapper around another controller.

    Parameters
    ----------
    inner:
        The policy under protection; the wrapper reports the inner
        controller's ``name`` so result tables stay readable.
    max_strikes:
        Consecutive failed ``decide`` calls tolerated before the inner
        controller is reset (and restored from checkpoint, if any).
    crash_epochs:
        Epoch indices at which the inner controller crashes and restarts
        (typically ``campaign.crash_epochs``).
    checkpoint_period:
        Take a checkpoint of the inner controller every this many epochs
        (``0`` disables checkpointing; crashes then restart cold).
    safe_level:
        VF level applied when no previous decision exists to hold;
        defaults to the bottom level, the safest point on the ladder.
    """

    def __init__(
        self,
        inner: Controller,
        max_strikes: int = 3,
        crash_epochs: Sequence[int] = (),
        checkpoint_period: int = 0,
        safe_level: int = 0,
    ) -> None:
        super().__init__(inner.cfg)
        if max_strikes < 1:
            raise ValueError(f"max_strikes must be >= 1, got {max_strikes}")
        if checkpoint_period < 0:
            raise ValueError(
                f"checkpoint_period must be >= 0, got {checkpoint_period}"
            )
        if not (0 <= safe_level < inner.cfg.n_levels):
            raise ValueError(
                f"safe_level {safe_level} outside VF table of {inner.cfg.n_levels}"
            )
        self.inner = inner
        self.name = inner.name
        self.max_strikes = max_strikes
        self.checkpoint_period = checkpoint_period
        self.safe_level = safe_level
        self._crash_epochs = frozenset(int(e) for e in crash_epochs)
        #: optional :class:`repro.obs.PhaseProfiler`; when attached (the
        #: simulator does this under ``profile=True``) the wrapper's own
        #: overhead — everything in ``decide`` except the inner call —
        #: is timed into the ``watchdog`` phase.  Never read back.
        self.profiler = None
        self.reset()

    def reset(self) -> None:
        """Reset wrapper and inner controller for a fresh run."""
        self.inner.reset()
        self.failure_log: List[Tuple[int, str]] = []
        self.recoveries = 0
        self.resets = 0
        self.crashes = 0
        self.checkpoints = 0
        self.restores = 0
        self._strikes = 0
        self._epoch = 0
        self._checkpoint: Optional[Dict[str, np.ndarray]] = None
        self._last_levels: Optional[np.ndarray] = None

    @property
    def stats(self) -> Dict[str, Any]:
        """Counters for :attr:`SimulationResult.extras` reporting."""
        return {
            "recoveries": self.recoveries,
            "resets": self.resets,
            "crashes": self.crashes,
            "checkpoints": self.checkpoints,
            "restores": self.restores,
            "failures": len(self.failure_log),
            "failure_log": list(self.failure_log),
        }

    def _fallback(self) -> np.ndarray:
        if self._last_levels is not None:
            return self._last_levels.copy()
        return self._full(self.safe_level)

    def _coerce(self, proposed: np.ndarray) -> np.ndarray:
        """Validate the inner controller's output; raise on garbage."""
        levels = np.asarray(proposed)
        if levels.shape != (self.n_cores,):
            raise ValueError(
                f"controller returned shape {levels.shape}, expected "
                f"({self.n_cores},)"
            )
        if not np.all(np.isfinite(np.asarray(levels, dtype=float))):
            raise ValueError("controller returned non-finite levels")
        return levels.astype(int)

    def _reinitialize(self) -> None:
        """Safe-state reflex: reset the inner policy, restore a checkpoint."""
        self.inner.reset()
        self._restore_checkpoint()

    def _restore_checkpoint(self) -> None:
        restore = getattr(self.inner, "restore", None)
        if self._checkpoint is not None and callable(restore):
            restore(self._checkpoint)
            self.restores += 1

    def _maybe_checkpoint(self) -> None:
        checkpoint = getattr(self.inner, "checkpoint", None)
        if (
            self.checkpoint_period > 0
            and self._epoch > 0
            and self._epoch % self.checkpoint_period == 0
            and callable(checkpoint)
        ):
            self._checkpoint = checkpoint()
            self.checkpoints += 1

    def decide(self, obs: Optional[EpochObservation]) -> np.ndarray:
        profiler = self.profiler
        t_outer = time.perf_counter() if profiler is not None else 0.0
        inner_seconds = 0.0
        epoch = self._epoch
        if epoch in self._crash_epochs:
            # The controller process died: all in-memory state is gone.
            # Restart resumes from the last checkpoint when one exists.
            self.inner.reset()
            self._restore_checkpoint()
            self.crashes += 1
            self._strikes = 0
        try:
            if profiler is not None:
                t_inner = time.perf_counter()
                proposed = self.inner.decide(obs)
                inner_seconds = time.perf_counter() - t_inner
            else:
                proposed = self.inner.decide(obs)
            levels = self._coerce(proposed)
            self._strikes = 0
            self._maybe_checkpoint()
        except Exception as exc:  # the watchdog's whole job is to survive this
            self.failure_log.append((epoch, repr(exc)))
            self.recoveries += 1
            self._strikes += 1
            levels = self._fallback()
            if self._strikes >= self.max_strikes:
                self._reinitialize()
                self.resets += 1
                self._strikes = 0
        self._last_levels = levels.copy()
        self._epoch += 1
        if profiler is not None:
            # Wrapper overhead only: total decide time minus the inner
            # controller's share (which the ``decide`` phase already
            # covers via the simulator's outer measurement).
            profiler.add(
                "watchdog", time.perf_counter() - t_outer - inner_seconds
            )
        return levels
