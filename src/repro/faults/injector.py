"""Stateful application of a :class:`FaultCampaign` to the plant.

The campaign is a pure schedule; the injector owns the little state that
injection needs — most importantly the level a *stuck* actuator froze at,
which is only known at runtime (it is whatever level was in force when the
fault began).  The :class:`~repro.manycore.chip.ManyCoreChip` consults the
injector every epoch:

1. :meth:`effective_levels` filters the controller's level command through
   the actuator faults (dropped commands leave the level unchanged; stuck
   actuators hold their frozen level);
2. :meth:`dead_mask` marks cores that retire nothing and draw leakage
   only;
3. :meth:`blackout_channels` names the sensor channels blinded this
   epoch.

The injector also keeps per-class counters of affected (core, epoch)
samples so a run can report the *realized* fault density next to the
campaign's target.
"""

from __future__ import annotations

from typing import Dict, FrozenSet

import numpy as np

from repro.faults.campaign import FaultCampaign
from repro.obs.metrics import CounterRegistry

__all__ = ["FaultInjector"]

#: per-class sample counters every injector maintains (registry names are
#: ``faults.<kind>``; the :attr:`FaultInjector.counts` view strips the prefix)
_COUNT_KINDS = ("dead", "dropped", "stuck", "blackout")


class FaultInjector:
    """Applies one campaign to one run; reset between runs.

    Parameters
    ----------
    campaign:
        The fault schedule to apply.
    metrics:
        Optional shared :class:`~repro.obs.metrics.CounterRegistry` to
        tally into (under ``faults.*`` names); by default the injector
        owns a private one.  The legacy :attr:`counts` mapping remains as
        a read-only view over the registry.
    """

    def __init__(
        self, campaign: FaultCampaign, metrics: CounterRegistry | None = None
    ) -> None:
        self.campaign = campaign
        self._stuck_levels = np.full(campaign.n_cores, -1, dtype=int)
        self.metrics = metrics if metrics is not None else CounterRegistry()
        for kind in _COUNT_KINDS:
            self.metrics.set_gauge(f"faults.{kind}", 0)

    @property
    def counts(self) -> Dict[str, int]:
        """Per-class affected-sample tallies (compatibility view over
        :attr:`metrics`): ``{"dead": …, "dropped": …, "stuck": …,
        "blackout": …}``.  Mutating the returned dict has no effect."""
        view = self.metrics.view("faults")
        return {kind: int(view.get(kind, 0)) for kind in _COUNT_KINDS}

    @property
    def n_cores(self) -> int:
        return self.campaign.n_cores

    def reset(self) -> None:
        """Forget runtime state (stuck-level captures, counters)."""
        self._stuck_levels.fill(-1)
        for kind in _COUNT_KINDS:
            self.metrics.set_gauge(f"faults.{kind}", 0)

    def effective_levels(
        self, epoch: int, current: np.ndarray, commanded: np.ndarray
    ) -> np.ndarray:
        """The levels actually applied after actuator faults.

        Parameters
        ----------
        epoch:
            The epoch about to run.
        current:
            Levels in force during the previous epoch.
        commanded:
            The controller's (already clamped) level command.
        """
        dropped = self.campaign.drop_mask(epoch)
        stuck = self.campaign.stuck_mask(epoch)
        effective = np.where(dropped, current, commanded)
        if stuck.any():
            # A newly stuck actuator freezes at the level currently in
            # force; the capture persists while the fault stays active.
            newly = stuck & (self._stuck_levels < 0)
            self._stuck_levels[newly] = current[newly]
            effective = np.where(stuck, self._stuck_levels, effective)
        # A cleared stuck fault releases its capture so a later stuck
        # window re-freezes at the then-current level.
        self._stuck_levels[~stuck] = -1
        self.metrics.inc("faults.dropped", int(np.sum(dropped)))
        self.metrics.inc("faults.stuck", int(np.sum(stuck)))
        return effective.astype(int)

    def dead_mask(self, epoch: int) -> np.ndarray:
        """Cores dead during ``epoch`` (no retirement, leakage only)."""
        mask = self.campaign.dead_mask(epoch)
        self.metrics.inc("faults.dead", int(np.sum(mask)))
        return mask

    def blackout_channels(self, epoch: int) -> FrozenSet[str]:
        """Sensor channels blacked out during ``epoch``."""
        channels = self.campaign.blackout_channels(epoch)
        if channels:
            self.metrics.inc("faults.blackout", self.n_cores * len(channels))
        return channels
