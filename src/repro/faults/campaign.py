"""Deterministic fault campaigns: what breaks, where, and when.

A :class:`FaultCampaign` is a *schedule* — a plain, immutable description
of every fault injected into one run.  Campaigns are either hand-written
(tests pin exact epochs) or drawn from :meth:`FaultCampaign.random` with a
seed, so a fault run is exactly as reproducible as a fault-free one: same
seed, same campaign, bit-for-bit the same trajectory.

Four fault classes cover the failure modes a power-management loop meets
in the field:

* :class:`CoreDeathFault` — the core retires nothing and draws leakage
  only, for a window of epochs or permanently (a hard error, a hung core,
  an OS-offlined CPU).
* :class:`ActuatorFault` — the VF actuator misbehaves: ``"drop"`` loses
  the level command (the level simply stays), ``"stuck"`` freezes the
  level at whatever was in force when the fault began.
* :class:`TelemetryBlackout` — whole-epoch sensor outage on one or more
  channels; every core's reading on that channel is lost (reads zero),
  on top of the per-sample dropout/stuck model in
  :mod:`repro.manycore.sensors`.
* :class:`ControllerCrash` — the controller process dies at a scheduled
  epoch and restarts with empty in-memory state (the watchdog decides
  whether a checkpoint softens the restart).

The campaign answers per-epoch queries (``dead_mask``, ``drop_mask``,
``stuck_mask``, ``blackout_channels``, ``crashes_at``) with plain numpy;
the *stateful* part of injection (capturing the level a stuck actuator
froze at) lives in :class:`repro.faults.injector.FaultInjector`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import FrozenSet, List, Optional, Tuple

import numpy as np

__all__ = [
    "SENSOR_CHANNELS",
    "CoreDeathFault",
    "ActuatorFault",
    "TelemetryBlackout",
    "ControllerCrash",
    "FaultCampaign",
]

#: Telemetry channel names a blackout may cover (the three sensors of
#: :class:`repro.manycore.sensors.SensorSuite`).
SENSOR_CHANNELS: Tuple[str, ...] = ("power", "perf", "temperature")


def _check_window(start_epoch: int, duration: Optional[int]) -> None:
    if start_epoch < 0:
        raise ValueError(f"start_epoch must be >= 0, got {start_epoch}")
    if duration is not None and duration < 1:
        raise ValueError(f"duration must be >= 1 epoch or None, got {duration}")


@dataclass(frozen=True)
class CoreDeathFault:
    """One core stops retiring instructions and draws leakage only.

    Attributes
    ----------
    core:
        Index of the affected core.
    start_epoch:
        First epoch the core is dead.
    duration:
        Width of the dead window in epochs; ``None`` means permanent.
    """

    core: int
    start_epoch: int
    duration: Optional[int] = None

    def __post_init__(self) -> None:
        if self.core < 0:
            raise ValueError(f"core must be >= 0, got {self.core}")
        _check_window(self.start_epoch, self.duration)

    def active(self, epoch: int) -> bool:
        """Is this fault in force at ``epoch``?"""
        if epoch < self.start_epoch:
            return False
        return self.duration is None or epoch < self.start_epoch + self.duration


@dataclass(frozen=True)
class ActuatorFault:
    """One core's VF actuator misbehaves for a window of epochs.

    Attributes
    ----------
    core:
        Index of the affected core.
    start_epoch:
        First epoch the actuator is faulty.
    duration:
        Width of the faulty window in epochs; ``None`` means permanent.
    mode:
        ``"drop"`` — level commands are lost and the level stays whatever
        it was last epoch; ``"stuck"`` — the level freezes at the value in
        force when the fault began, until the fault clears.
    """

    core: int
    start_epoch: int
    duration: Optional[int] = None
    mode: str = "drop"

    def __post_init__(self) -> None:
        if self.core < 0:
            raise ValueError(f"core must be >= 0, got {self.core}")
        _check_window(self.start_epoch, self.duration)
        if self.mode not in ("drop", "stuck"):
            raise ValueError(f"mode must be 'drop' or 'stuck', got {self.mode!r}")

    def active(self, epoch: int) -> bool:
        """Is this fault in force at ``epoch``?"""
        if epoch < self.start_epoch:
            return False
        return self.duration is None or epoch < self.start_epoch + self.duration


@dataclass(frozen=True)
class TelemetryBlackout:
    """Whole-epoch sensor outage: every core's reading on the covered
    channels is lost (reads zero) for the window.

    Attributes
    ----------
    start_epoch:
        First blacked-out epoch.
    duration:
        Width of the outage in epochs (finite — a permanently blind
        controller is a different experiment).
    channels:
        Subset of :data:`SENSOR_CHANNELS` the outage covers.
    """

    start_epoch: int
    duration: int = 1
    channels: Tuple[str, ...] = SENSOR_CHANNELS

    def __post_init__(self) -> None:
        _check_window(self.start_epoch, self.duration)
        bad = set(self.channels) - set(SENSOR_CHANNELS)
        if bad or not self.channels:
            raise ValueError(
                f"channels must be a non-empty subset of {SENSOR_CHANNELS}, "
                f"got {self.channels}"
            )

    def active(self, epoch: int) -> bool:
        """Is this outage in force at ``epoch``?"""
        return self.start_epoch <= epoch < self.start_epoch + self.duration


@dataclass(frozen=True)
class ControllerCrash:
    """The controller process dies (and restarts) at ``epoch``."""

    epoch: int

    def __post_init__(self) -> None:
        if self.epoch < 1:
            raise ValueError(
                f"crash epoch must be >= 1 (a controller that never started "
                f"cannot crash), got {self.epoch}"
            )


@dataclass(frozen=True)
class FaultCampaign:
    """The complete, immutable fault schedule for one run.

    Attributes
    ----------
    n_cores:
        Core count the campaign targets; per-core fault indices must be
        inside ``[0, n_cores)``.
    core_deaths, actuator_faults, blackouts, crashes:
        The scheduled fault events of each class (possibly empty).
    """

    n_cores: int
    core_deaths: Tuple[CoreDeathFault, ...] = ()
    actuator_faults: Tuple[ActuatorFault, ...] = ()
    blackouts: Tuple[TelemetryBlackout, ...] = ()
    crashes: Tuple[ControllerCrash, ...] = ()

    def __post_init__(self) -> None:
        if self.n_cores < 1:
            raise ValueError(f"n_cores must be >= 1, got {self.n_cores}")
        for fault in (*self.core_deaths, *self.actuator_faults):
            if fault.core >= self.n_cores:
                raise ValueError(
                    f"fault targets core {fault.core} but the campaign covers "
                    f"{self.n_cores} cores"
                )

    @property
    def n_events(self) -> int:
        """Total number of scheduled fault events."""
        return (
            len(self.core_deaths)
            + len(self.actuator_faults)
            + len(self.blackouts)
            + len(self.crashes)
        )

    @property
    def crash_epochs(self) -> Tuple[int, ...]:
        """Sorted epochs at which the controller crashes."""
        return tuple(sorted(c.epoch for c in self.crashes))

    # -- per-epoch queries ------------------------------------------------
    def dead_mask(self, epoch: int) -> np.ndarray:
        """Boolean mask of cores dead during ``epoch``."""
        mask = np.zeros(self.n_cores, dtype=bool)
        for death in self.core_deaths:
            if death.active(epoch):
                mask[death.core] = True
        return mask

    def drop_mask(self, epoch: int) -> np.ndarray:
        """Boolean mask of cores whose level command is lost at ``epoch``."""
        mask = np.zeros(self.n_cores, dtype=bool)
        for fault in self.actuator_faults:
            if fault.mode == "drop" and fault.active(epoch):
                mask[fault.core] = True
        return mask

    def stuck_mask(self, epoch: int) -> np.ndarray:
        """Boolean mask of cores whose actuator is stuck at ``epoch``."""
        mask = np.zeros(self.n_cores, dtype=bool)
        for fault in self.actuator_faults:
            if fault.mode == "stuck" and fault.active(epoch):
                mask[fault.core] = True
        return mask

    def blackout_channels(self, epoch: int) -> FrozenSet[str]:
        """The sensor channels blacked out during ``epoch``."""
        covered: set = set()
        for outage in self.blackouts:
            if outage.active(epoch):
                covered.update(outage.channels)
        return frozenset(covered)

    def crashes_at(self, epoch: int) -> bool:
        """Does the controller crash at the start of ``epoch``?"""
        return any(c.epoch == epoch for c in self.crashes)

    # -- constructors -----------------------------------------------------
    @classmethod
    def none(cls, n_cores: int) -> "FaultCampaign":
        """The empty campaign (a fault-free run)."""
        return cls(n_cores=n_cores)

    @classmethod
    def random(
        cls,
        n_cores: int,
        n_epochs: int,
        rate: float,
        seed: int,
        n_crashes: int = 0,
        death_window: Tuple[int, int] = (10, 50),
        actuator_window: Tuple[int, int] = (5, 25),
        blackout_window: Tuple[int, int] = (1, 3),
    ) -> "FaultCampaign":
        """Draw a seeded campaign with a target *combined fault rate*.

        ``rate`` is the expected fraction of (core, epoch) samples affected
        by a plant/telemetry fault, split evenly across the three fault
        classes (core death, actuator fault, telemetry blackout; a blackout
        epoch counts every core).  Event counts are rounded, so the
        realized density is approximate — the campaign itself, given the
        same arguments, is always *exactly* the same.

        Parameters
        ----------
        n_cores, n_epochs:
            Dimensions of the run the campaign is for.
        rate:
            Combined fault density in ``[0, 1)``; ``0`` yields the empty
            campaign (plus any scheduled crashes).
        seed:
            Seeds the campaign draw (independent of workload/learning
            seeds).
        n_crashes:
            Number of controller crash/restart events, spread over the
            middle of the run.
        death_window, actuator_window, blackout_window:
            Inclusive ``(min, max)`` duration ranges, in epochs, for each
            event class.
        """
        if not (0 <= rate < 1):
            raise ValueError(f"rate must be in [0, 1), got {rate}")
        if n_epochs < 1:
            raise ValueError(f"n_epochs must be >= 1, got {n_epochs}")
        if n_crashes < 0:
            raise ValueError(f"n_crashes must be >= 0, got {n_crashes}")
        rng = np.random.default_rng(seed)
        per_class = rate / 3.0

        def _durations(window: Tuple[int, int], count: int) -> np.ndarray:
            lo, hi = window
            if not (1 <= lo <= hi):
                raise ValueError(f"duration window must satisfy 1 <= lo <= hi, got {window}")
            return rng.integers(lo, hi + 1, size=count)

        def _event_count(window: Tuple[int, int], samples: float) -> int:
            mean_duration = 0.5 * (window[0] + window[1])
            return int(round(per_class * samples / mean_duration))

        deaths: List[CoreDeathFault] = []
        n_deaths = _event_count(death_window, n_cores * n_epochs)
        for duration in _durations(death_window, n_deaths):
            deaths.append(
                CoreDeathFault(
                    core=int(rng.integers(n_cores)),
                    start_epoch=int(rng.integers(n_epochs)),
                    duration=int(duration),
                )
            )

        actuators: List[ActuatorFault] = []
        n_actuators = _event_count(actuator_window, n_cores * n_epochs)
        for duration in _durations(actuator_window, n_actuators):
            actuators.append(
                ActuatorFault(
                    core=int(rng.integers(n_cores)),
                    start_epoch=int(rng.integers(n_epochs)),
                    duration=int(duration),
                    mode="drop" if rng.random() < 0.5 else "stuck",
                )
            )

        blackouts: List[TelemetryBlackout] = []
        # A blackout epoch blinds every core, so its density is per-epoch.
        n_blackouts = _event_count(blackout_window, float(n_epochs))
        for duration in _durations(blackout_window, n_blackouts):
            blackouts.append(
                TelemetryBlackout(
                    start_epoch=int(rng.integers(n_epochs)),
                    duration=int(duration),
                )
            )

        crashes: List[ControllerCrash] = []
        if n_crashes:
            # Crashes land in the middle half of the run: late enough that
            # there is learned state to lose, early enough to observe the
            # recovery.
            lo = max(1, n_epochs // 4)
            hi = max(lo + 1, (3 * n_epochs) // 4)
            epochs = rng.choice(np.arange(lo, hi), size=n_crashes, replace=False)
            crashes = [ControllerCrash(epoch=int(e)) for e in sorted(epochs)]

        return cls(
            n_cores=n_cores,
            core_deaths=tuple(deaths),
            actuator_faults=tuple(actuators),
            blackouts=tuple(blackouts),
            crashes=tuple(crashes),
        )
