"""Heterogeneous core types (big.LITTLE-class chips).

Modern many-cores mix core types: wide out-of-order "big" cores and small
efficient "little" ones.  All types share the chip's VF ladder *indices*
(the controller's action space stays uniform) but differ in what a ladder
step means physically:

* ``freq_scale`` — the type's clock at each ladder point relative to the
  nominal table (little cores top out lower);
* ``ceff_scale`` — switched capacitance (big cores toggle more silicon);
* ``cpi_scale`` — base CPI (big cores retire more per cycle: scale < 1).

:class:`HeterogeneousMap` carries the per-core arrays; the chip model and
the baselines' estimator both consume it (a platform's core types are
public knowledge, unlike workload behaviour, so giving the model-based
baselines the map is the fair comparison).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Sequence, Tuple

import numpy as np

__all__ = ["CoreType", "HeterogeneousMap", "BIG", "LITTLE", "big_little_map"]


@dataclass(frozen=True)
class CoreType:
    """One core microarchitecture.

    Attributes
    ----------
    name:
        Identifier used in reports.
    freq_scale:
        Clock multiplier applied to every VF-ladder frequency.
    ceff_scale:
        Dynamic-capacitance multiplier (affects dynamic power).
    cpi_scale:
        Base-CPI multiplier (< 1 = higher IPC microarchitecture).
    leak_scale:
        Leakage multiplier (big cores leak more area).
    """

    name: str
    freq_scale: float = 1.0
    ceff_scale: float = 1.0
    cpi_scale: float = 1.0
    leak_scale: float = 1.0

    def __post_init__(self) -> None:
        for field_name in ("freq_scale", "ceff_scale", "cpi_scale", "leak_scale"):
            value = getattr(self, field_name)
            if value <= 0:
                raise ValueError(f"{field_name} must be positive, got {value}")


#: A performance-oriented out-of-order core (the reference type).
BIG = CoreType(name="big", freq_scale=1.0, ceff_scale=1.0, cpi_scale=1.0, leak_scale=1.0)

#: An efficiency core: ~60% clock, ~35% capacitance, narrower pipeline.
LITTLE = CoreType(
    name="little", freq_scale=0.6, ceff_scale=0.35, cpi_scale=1.4, leak_scale=0.45
)


class HeterogeneousMap:
    """Assignment of a :class:`CoreType` to every core, as flat arrays.

    Parameters
    ----------
    types:
        Per-core sequence of :class:`CoreType` records.
    """

    def __init__(self, types: Sequence[CoreType]) -> None:
        if not types:
            raise ValueError("HeterogeneousMap needs at least one core")
        self.types: Tuple[CoreType, ...] = tuple(types)
        self.freq_scale = np.array([t.freq_scale for t in types])
        self.ceff_scale = np.array([t.ceff_scale for t in types])
        self.cpi_scale = np.array([t.cpi_scale for t in types])
        self.leak_scale = np.array([t.leak_scale for t in types])

    @property
    def n_cores(self) -> int:
        return len(self.types)

    def type_indices(self) -> Dict[str, np.ndarray]:
        """Core indices per type name (for per-type reporting)."""
        out: Dict[str, list] = {}
        for i, t in enumerate(self.types):
            out.setdefault(t.name, []).append(i)
        return {name: np.array(idx) for name, idx in out.items()}

    @classmethod
    def homogeneous(cls, n_cores: int, core_type: CoreType = BIG) -> "HeterogeneousMap":
        """All cores of one type (the default chip)."""
        if n_cores <= 0:
            raise ValueError(f"n_cores must be positive, got {n_cores}")
        return cls([core_type] * n_cores)


def big_little_map(n_cores: int, big_fraction: float = 0.5) -> HeterogeneousMap:
    """A big.LITTLE chip: the first ``round(big_fraction * n)`` cores are
    big, the rest little (contiguous clusters, as real SoCs place them)."""
    if n_cores <= 0:
        raise ValueError(f"n_cores must be positive, got {n_cores}")
    if not (0 <= big_fraction <= 1):
        raise ValueError(f"big_fraction must be in [0, 1], got {big_fraction}")
    n_big = int(round(big_fraction * n_cores))
    return HeterogeneousMap([BIG] * n_big + [LITTLE] * (n_cores - n_big))
