"""RC-grid thermal model of the many-core die.

Each core is one thermal node with a vertical RC path to ambient and lateral
resistances to its mesh neighbours (the standard lumped HotSpot-style
abstraction at core granularity):

    C dT_i/dt = P_i - (T_i - T_amb)/R_v - sum_j (T_i - T_j)/R_l

Integration is forward Euler with automatic sub-stepping so the model stays
stable even when the control epoch is long relative to the thermal time
constant.
"""

from __future__ import annotations

from typing import List, Tuple

import numpy as np

from repro.manycore.config import SystemConfig, TechnologyParams

__all__ = ["ThermalModel", "mesh_neighbors"]


def mesh_neighbors(n_cores: int, mesh_shape: Tuple[int, int]) -> List[Tuple[int, int]]:
    """Undirected neighbour pairs ``(i, j)`` with ``i < j`` for a row-major
    2-D mesh layout of ``n_cores`` cores on a ``rows x cols`` grid.

    The last row may be partial; cores beyond ``n_cores`` simply do not
    exist and contribute no edges.
    """
    rows, cols = mesh_shape
    if rows * cols < n_cores:
        raise ValueError(f"mesh {mesh_shape} too small for {n_cores} cores")
    pairs = []
    for idx in range(n_cores):
        r, c = divmod(idx, cols)
        right = idx + 1
        if c + 1 < cols and right < n_cores:
            pairs.append((idx, right))
        down = idx + cols
        if r + 1 < rows and down < n_cores:
            pairs.append((idx, down))
    return pairs


class ThermalModel:
    """Lumped RC thermal network over the core mesh.

    Parameters
    ----------
    cfg:
        System configuration supplying core count, mesh shape and the
        technology's RC constants.

    Notes
    -----
    The model keeps its own temperature state vector; :meth:`step` advances
    it given the per-core power dissipated over an interval and returns the
    new temperatures.  Use :meth:`reset` between simulation runs.
    """

    #: maximum Euler step as a fraction of the vertical RC time constant
    _MAX_STEP_FRACTION = 0.2

    def __init__(self, cfg: SystemConfig) -> None:
        self._cfg = cfg
        self._tech: TechnologyParams = cfg.technology
        self._n = cfg.n_cores
        self._pairs = mesh_neighbors(self._n, cfg.mesh_shape)
        # Lateral-coupling Laplacian, precomputed once: L[i][j] = 1 for
        # mesh neighbours, L[i][i] = -degree(i), so the per-substep heat
        # exchange sum_j (T_j - T_i) is a single matvec ``L @ T`` instead
        # of a Python loop over per-node neighbour lists.  The grid is
        # small (cores, not FEM nodes) and L is reused every substep of
        # every epoch, so dense is both the fastest and the simplest form.
        laplacian = np.zeros((self._n, self._n), dtype=float)
        for i, j in self._pairs:
            laplacian[i, j] = 1.0
            laplacian[j, i] = 1.0
            laplacian[i, i] -= 1.0
            laplacian[j, j] -= 1.0
        self._laplacian = laplacian
        self.temperatures = np.full(self._n, self._tech.t_ambient, dtype=float)

    @property
    def n_cores(self) -> int:
        return self._n

    def reset(self, temperature: float | None = None) -> None:
        """Reset all nodes to ``temperature`` (ambient when omitted)."""
        t0 = self._tech.t_ambient if temperature is None else float(temperature)
        if t0 <= 0:
            raise ValueError(f"temperature must be positive kelvin, got {t0}")
        self.temperatures = np.full(self._n, t0, dtype=float)

    def step(self, power: np.ndarray, dt: float) -> np.ndarray:
        """Advance temperatures by ``dt`` seconds under per-core ``power``.

        Parameters
        ----------
        power:
            Per-core power in watts, shape ``(n_cores,)``.
        dt:
            Interval in seconds; internally sub-stepped for stability.

        Returns
        -------
        numpy.ndarray
            The updated temperature vector (also stored on the model).
        """
        power = np.asarray(power, dtype=float)
        if power.shape != (self._n,):
            raise ValueError(f"power must have shape ({self._n},), got {power.shape}")
        if dt <= 0:
            raise ValueError(f"dt must be positive, got {dt}")
        tech = self._tech
        tau = tech.r_thermal * tech.c_thermal
        max_h = self._MAX_STEP_FRACTION * tau
        n_sub = max(1, int(np.ceil(dt / max_h)))
        h = dt / n_sub
        temps = self.temperatures
        inv_rv = 1.0 / tech.r_thermal
        inv_rl = 1.0 / tech.r_lateral
        inv_c = 1.0 / tech.c_thermal
        for _ in range(n_sub):
            lateral = (self._laplacian @ temps) * inv_rl
            dT = (power - (temps - tech.t_ambient) * inv_rv + lateral) * inv_c
            temps = temps + h * dT
        self.temperatures = temps
        return temps

    def steady_state(self, power: np.ndarray) -> np.ndarray:
        """Solve the steady-state temperatures for constant ``power``.

        Solves the linear system ``G T = P + G_amb T_amb`` where ``G`` is the
        conductance matrix.  Useful for tests and warm-starting simulations.
        """
        power = np.asarray(power, dtype=float)
        if power.shape != (self._n,):
            raise ValueError(f"power must have shape ({self._n},), got {power.shape}")
        tech = self._tech
        g = np.zeros((self._n, self._n))
        rhs = power + tech.t_ambient / tech.r_thermal
        for i in range(self._n):
            g[i, i] = 1.0 / tech.r_thermal
        inv_rl = 1.0 / tech.r_lateral
        for i, j in self._pairs:
            g[i, i] += inv_rl
            g[j, j] += inv_rl
            g[i, j] -= inv_rl
            g[j, i] -= inv_rl
        return np.linalg.solve(g, rhs)
