"""Per-core and chip-level power model.

Power has the two canonical components:

* **Dynamic** — ``activity * Ceff * V^2 * f``.  Activity is the switching
  factor the workload induces; it is mapped from the workload's compute
  intensity so memory-bound phases draw less dynamic power at a given VF
  point (the core spends cycles stalled).
* **Leakage** — ``V * I_leak(T)`` with ``I_leak`` exponential in
  temperature.  This is what couples the thermal model back into power and
  produces the mild positive feedback real chips exhibit.

All functions are vectorized over cores with numpy so the chip model can
evaluate hundreds of cores per epoch cheaply.
"""

from __future__ import annotations

import numpy as np

from repro.manycore.config import SystemConfig, TechnologyParams

__all__ = [
    "dynamic_power",
    "leakage_power",
    "core_power",
    "peak_chip_power",
    "idle_chip_power",
]


def dynamic_power(
    tech: TechnologyParams,
    voltage: np.ndarray,
    frequency: np.ndarray,
    activity: np.ndarray,
) -> np.ndarray:
    """Dynamic (switching) power per core, in watts.

    Parameters
    ----------
    tech:
        Process parameters supplying the effective capacitance.
    voltage, frequency, activity:
        Per-core arrays (broadcastable) of supply voltage (V), clock
        frequency (Hz), and switching activity factor.
    """
    voltage = np.asarray(voltage, dtype=float)
    frequency = np.asarray(frequency, dtype=float)
    activity = np.asarray(activity, dtype=float)
    if np.any(voltage < 0) or np.any(frequency < 0) or np.any(activity < 0):
        raise ValueError("voltage, frequency and activity must be non-negative")
    return activity * tech.ceff * voltage**2 * frequency


def leakage_power(
    tech: TechnologyParams,
    voltage: np.ndarray,
    temperature: np.ndarray,
) -> np.ndarray:
    """Leakage power per core, in watts, exponential in temperature.

    ``P_leak = V * leak_coeff * exp(leak_temp_sens * (T - t_ref))``
    """
    voltage = np.asarray(voltage, dtype=float)
    temperature = np.asarray(temperature, dtype=float)
    if np.any(voltage < 0):
        raise ValueError("voltage must be non-negative")
    if np.any(temperature <= 0):
        raise ValueError("temperature is absolute (kelvin) and must be positive")
    return voltage * tech.leak_coeff * np.exp(
        tech.leak_temp_sens * (temperature - tech.t_ref)
    )


def core_power(
    tech: TechnologyParams,
    voltage: np.ndarray,
    frequency: np.ndarray,
    activity: np.ndarray,
    temperature: np.ndarray,
) -> np.ndarray:
    """Total per-core power in watts: dynamic plus leakage.

    ``voltage`` is in volts, ``frequency`` in hertz, ``activity`` a
    dimensionless switching factor, ``temperature`` in kelvin.
    """
    return dynamic_power(tech, voltage, frequency, activity) + leakage_power(
        tech, voltage, temperature
    )


def peak_chip_power(cfg: SystemConfig, hot_margin: float = 20.0) -> float:
    """Worst-case chip power used to anchor the TDP.

    All cores at the top VF point, maximum switching activity, and a
    temperature ``hot_margin`` kelvin above ambient (a conservative steady
    hot-spot estimate — exact steady temperature depends on the budget we
    are trying to compute, so a fixed margin keeps this closed-form).
    """
    if not cfg.vf_levels:
        raise ValueError("SystemConfig has an empty VF table")
    f_top, v_top = cfg.vf_levels[-1]
    tech = cfg.technology
    act_hi = cfg.activity_range[1]
    t_hot = tech.t_ambient + hot_margin
    per_core = core_power(
        tech,
        np.array(v_top),
        np.array(f_top),
        np.array(act_hi),
        np.array(t_hot),
    )
    return float(per_core) * cfg.n_cores


def idle_chip_power(cfg: SystemConfig) -> float:
    """Best-case chip power: all cores at the bottom VF point, minimum
    activity, ambient temperature.  Useful for sanity-checking budgets —
    a budget below this value is infeasible for any controller."""
    if not cfg.vf_levels:
        raise ValueError("SystemConfig has an empty VF table")
    f_bot, v_bot = cfg.vf_levels[0]
    tech = cfg.technology
    act_lo = cfg.activity_range[0]
    per_core = core_power(
        tech,
        np.array(v_bot),
        np.array(f_bot),
        np.array(act_lo),
        np.array(tech.t_ambient),
    )
    return float(per_core) * cfg.n_cores
