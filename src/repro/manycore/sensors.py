"""Sensor models: what the controller actually gets to see.

Real power-management firmware reads quantized, noisy telemetry, not the
simulator's ground truth.  The paper's controller is explicitly model-free
partly *because* analytic models calibrated offline drift against such
telemetry.  Each sensor wraps a ground-truth vector with:

* multiplicative Gaussian noise (relative to reading),
* quantization to a fixed step (ADC/firmware register resolution), and
* transient faults: per-sample *dropouts* (the register reads zero — a
  failed I2C/PECI transaction) and *stuck* samples (the register was not
  updated, so the previous reading repeats).

A default-constructed spec makes the sensor exact, which tests rely on.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["SensorSpec", "Sensor", "SensorSuite"]


@dataclass(frozen=True)
class SensorSpec:
    """Noise/quantization description of one telemetry channel.

    Attributes
    ----------
    relative_noise:
        Standard deviation of multiplicative Gaussian noise (0 = exact).
    quantum:
        Quantization step in the channel's unit (0 = continuous).
    floor:
        Readings are clamped below at this value (sensors don't report
        negative power).
    dropout_rate:
        Probability, per core per epoch, that the reading is lost and
        returns zero.
    stuck_rate:
        Probability, per core per epoch, that the reading repeats the
        previous epoch's value instead of updating.
    """

    relative_noise: float = 0.0
    quantum: float = 0.0
    floor: float = 0.0
    dropout_rate: float = 0.0
    stuck_rate: float = 0.0

    def __post_init__(self) -> None:
        if self.relative_noise < 0:
            raise ValueError(f"relative_noise must be >= 0, got {self.relative_noise}")
        if self.quantum < 0:
            raise ValueError(f"quantum must be >= 0, got {self.quantum}")
        if not (0 <= self.dropout_rate <= 1):
            raise ValueError(f"dropout_rate must be in [0, 1], got {self.dropout_rate}")
        if not (0 <= self.stuck_rate <= 1):
            raise ValueError(f"stuck_rate must be in [0, 1], got {self.stuck_rate}")


class Sensor:
    """One telemetry channel with its own RNG stream."""

    def __init__(self, spec: SensorSpec, rng: np.random.Generator | None) -> None:
        stochastic = (
            spec.relative_noise > 0 or spec.dropout_rate > 0 or spec.stuck_rate > 0
        )
        if stochastic and rng is None:
            raise ValueError(
                "a stochastic SensorSpec needs an explicit RNG stream; "
                "pass a seeded generator (rng=None is reserved for exact "
                "sensors, which never draw)"
            )
        self._spec = spec
        self._rng = rng
        self._last: np.ndarray | None = None

    @property
    def spec(self) -> SensorSpec:
        return self._spec

    def read(self, truth: np.ndarray, blackout: bool = False) -> np.ndarray:
        """Produce a reading of ``truth`` through this sensor.

        Parameters
        ----------
        truth:
            Ground-truth vector to observe.
        blackout:
            Whole-epoch outage (see :mod:`repro.faults`): the reading is
            lost — zeros are returned, no RNG is consumed, and the held
            register keeps its previous value, so the sensor's random
            stream and stuck-sample behaviour are unchanged by the outage.
        """
        truth = np.asarray(truth, dtype=float)
        if blackout:
            return np.zeros_like(truth)
        reading = truth
        if self._spec.relative_noise > 0:
            noise = self._rng.normal(1.0, self._spec.relative_noise, size=truth.shape)
            reading = truth * noise
        if self._spec.quantum > 0:
            reading = np.round(reading / self._spec.quantum) * self._spec.quantum
        reading = np.maximum(reading, self._spec.floor)
        if self._spec.stuck_rate > 0 and self._last is not None:
            stuck = self._rng.random(reading.shape) < self._spec.stuck_rate
            reading = np.where(stuck, self._last, reading)
        if self._spec.stuck_rate > 0:
            # Latch the register *before* dropout: a stuck sample next
            # epoch must replay the last real reading, never a dropout
            # zero (a failed transaction does not overwrite the register).
            self._last = reading.copy()
        if self._spec.dropout_rate > 0:
            dropped = self._rng.random(reading.shape) < self._spec.dropout_rate
            reading = np.where(dropped, 0.0, reading)
        return reading


class SensorSuite:
    """The telemetry set a power-management controller reads each epoch:
    per-core power meters, retired-instruction counters, and thermal diodes.

    Instruction counters are architectural and therefore exact by default;
    power meters default to 2 % noise with 0.1 W registers, in line with
    published RAPL error characterizations; thermal diodes default to 1 K
    registers (digital thermal sensors report integer degrees).
    """

    def __init__(
        self,
        rng: np.random.Generator | None,
        power_spec: SensorSpec | None = None,
        perf_spec: SensorSpec | None = None,
        temp_spec: SensorSpec | None = None,
    ) -> None:
        """``power_spec``, ``perf_spec`` and ``temp_spec`` override the
        per-channel error models (power readings in watts, temperature in
        kelvin); ``None`` selects the defaults described on the class."""
        if power_spec is None:
            power_spec = SensorSpec(relative_noise=0.02, quantum=0.1)
        if perf_spec is None:
            perf_spec = SensorSpec()
        if temp_spec is None:
            temp_spec = SensorSpec(quantum=1.0)
        self.power = Sensor(power_spec, rng)
        self.perf = Sensor(perf_spec, rng)
        self.temperature = Sensor(temp_spec, rng)

    @classmethod
    def exact(cls) -> "SensorSuite":
        """A noiseless suite for deterministic tests.

        Exact channels never draw, so no generator exists to leak into a
        measurement — there is no hidden fixed-seed stream here.
        """
        return cls(
            None,
            power_spec=SensorSpec(),
            perf_spec=SensorSpec(),
            temp_spec=SensorSpec(),
        )
