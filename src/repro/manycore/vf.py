"""Voltage/frequency operating-point tables.

Cores expose a discrete ladder of VF points, as commercial DVFS does
(P-states).  Voltage scales roughly linearly with frequency over the
conventional operating range, which makes dynamic power grow close to
cubically with frequency — the property that makes budget allocation a
non-trivial optimization.

The module also models the cost of switching between points: a real PLL/VR
takes on the order of tens of microseconds to relock, during which the core
does no useful work.  Controllers that thrash between levels pay for it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence, Tuple

__all__ = [
    "VFLevel",
    "build_vf_table",
    "transition_penalty",
    "clamp_level",
]

# Conventional operating range loosely modelled on a 22 nm-class part.
_F_MIN = 0.8e9
_F_MAX = 2.4e9
_V_MIN = 0.70
_V_MAX = 1.10

# Re-lock time per VF transition, independent of distance, plus a small
# per-step ramp component (voltage regulators slew V gradually).
_TRANSITION_BASE = 10e-6
_TRANSITION_PER_STEP = 5e-6


@dataclass(frozen=True)
class VFLevel:
    """One operating point: index into the ladder plus its physical values."""

    index: int
    frequency: float
    voltage: float

    def __post_init__(self) -> None:
        if self.index < 0:
            raise ValueError(f"index must be >= 0, got {self.index}")
        if self.frequency <= 0 or self.voltage <= 0:
            raise ValueError("frequency and voltage must be positive")


def build_vf_table(
    n_levels: int = 8,
    f_range: Tuple[float, float] = (_F_MIN, _F_MAX),
    v_range: Tuple[float, float] = (_V_MIN, _V_MAX),
) -> Tuple[Tuple[float, float], ...]:
    """Build an ascending ladder of ``(frequency_hz, voltage_v)`` pairs.

    Frequency is spaced uniformly; voltage follows linearly, which is the
    standard first-order fit to published P-state tables.

    Parameters
    ----------
    n_levels:
        Number of points; must be at least 2 (a single point would make DVFS
        control meaningless).
    f_range, v_range:
        Inclusive ``(min, max)`` ranges for frequency (Hz) and voltage (V).

    Returns
    -------
    tuple of (float, float)
        Sorted ascending by frequency.
    """
    if n_levels < 2:
        raise ValueError(f"n_levels must be >= 2, got {n_levels}")
    f_lo, f_hi = f_range
    v_lo, v_hi = v_range
    if f_lo <= 0 or f_hi <= f_lo:
        raise ValueError(f"invalid frequency range {f_range}")
    if v_lo <= 0 or v_hi < v_lo:
        raise ValueError(f"invalid voltage range {v_range}")
    table = []
    for i in range(n_levels):
        t = i / (n_levels - 1)
        table.append((f_lo + t * (f_hi - f_lo), v_lo + t * (v_hi - v_lo)))
    return tuple(table)


def transition_penalty(old_level: int, new_level: int) -> float:
    """Seconds of stalled execution caused by one VF transition.

    Zero when the level does not change; otherwise a fixed re-lock time plus
    a component proportional to the number of ladder steps traversed (the
    regulator slews voltage through intermediate values).
    """
    if old_level == new_level:
        return 0.0
    steps = abs(new_level - old_level)
    return _TRANSITION_BASE + _TRANSITION_PER_STEP * steps


def clamp_level(level: int, n_levels: int) -> int:
    """Clamp a requested level index into the valid ladder range."""
    if n_levels <= 0:
        raise ValueError(f"n_levels must be positive, got {n_levels}")
    return max(0, min(n_levels - 1, level))


def levels_as_objects(vf_levels: Sequence[Tuple[float, float]]) -> Tuple[VFLevel, ...]:
    """Wrap a raw VF table in :class:`VFLevel` records for typed access."""
    return tuple(VFLevel(i, f, v) for i, (f, v) in enumerate(vf_levels))
