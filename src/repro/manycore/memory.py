"""Shared memory-system contention model.

The base performance model treats main-memory latency as a constant.  On a
real many-core chip the memory system is a shared, bandwidth-limited
resource: when many cores stream simultaneously, requests queue and the
*effective* latency every core sees grows.  This couples the cores — one
core's DVFS decision changes everyone's throughput — which is precisely the
regime where a global budget allocator earns its keep.

The model is a standard single-queue approximation: with chip-wide demand
``D`` (memory accesses per second, summed over cores) against sustainable
bandwidth ``B``, utilization ``u = D / B`` inflates latency by the M/M/1
waiting-time factor

    latency_multiplier = 1 + sensitivity * u / (1 - u)

clamped at ``u_max`` to keep the fixed point finite.  Demand itself depends
on throughput, which depends on latency, so each epoch the chip solves the
one-dimensional fixed point ``m = 1 + s * u(m) / (1 - u(m))``.  Because
``u(m)`` is strictly decreasing in ``m`` (more latency ⇒ less throughput ⇒
less demand), ``g(m) - m`` is strictly decreasing and the root is unique;
:meth:`MemorySystem.solve_latency_multiplier` finds it by bisection, which
— unlike naive fixed-point iteration — cannot oscillate when the memory
system saturates.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.manycore.config import SystemConfig

__all__ = ["MemorySystemParams", "MemorySystem", "default_memory_system"]


@dataclass(frozen=True)
class MemorySystemParams:
    """Shared memory-system description.

    Attributes
    ----------
    bandwidth:
        Sustainable chip-wide memory-access throughput, accesses/second.
    sensitivity:
        Scale of the queueing term; 1.0 is the M/M/1 waiting factor.
    u_max:
        Utilization clamp keeping the multiplier finite under saturation.
    """

    bandwidth: float
    sensitivity: float = 1.0
    u_max: float = 0.95

    def __post_init__(self) -> None:
        if self.bandwidth <= 0:
            raise ValueError(f"bandwidth must be positive, got {self.bandwidth}")
        if self.sensitivity < 0:
            raise ValueError(f"sensitivity must be >= 0, got {self.sensitivity}")
        if not (0 < self.u_max < 1):
            raise ValueError(f"u_max must be in (0, 1), got {self.u_max}")


class MemorySystem:
    """Stateful contention model carried by a :class:`ManyCoreChip`.

    Tracks the last solved multiplier and utilization for telemetry and
    inspection.
    """

    #: bisection iterations; the bracket is fixed so 40 gives ~1e-12 width
    _BISECTION_STEPS = 40

    def __init__(self, params: MemorySystemParams) -> None:
        self.params = params
        self.latency_multiplier = 1.0
        self.utilization = 0.0

    def reset(self) -> None:
        self.latency_multiplier = 1.0
        self.utilization = 0.0

    def _implied_multiplier(
        self,
        cfg: SystemConfig,
        frequency: np.ndarray,
        mem_intensity: np.ndarray,
        m: float,
    ) -> tuple:
        """``(g(m), u(m))``: the multiplier the demand at latency ``m*L``
        would produce, and that demand's utilization."""
        p = self.params
        eff_latency = cfg.mem_latency * m
        cpi = cfg.base_cpi + mem_intensity * eff_latency * frequency
        ips = frequency / cpi
        demand = float(np.sum(ips * mem_intensity))
        u = min(demand / p.bandwidth, p.u_max)
        return 1.0 + p.sensitivity * u / (1.0 - u), u

    def solve_latency_multiplier(
        self,
        cfg: SystemConfig,
        frequency: np.ndarray,
        mem_intensity: np.ndarray,
    ) -> float:
        """Solve the per-epoch latency fixed point by bisection.

        Parameters
        ----------
        cfg:
            System configuration (base CPI and nominal latency).
        frequency:
            Per-core clock frequencies, Hz.
        mem_intensity:
            Per-core memory accesses per instruction.

        Returns
        -------
        float
            Multiplier ``m >= 1`` such that with effective latency
            ``m * cfg.mem_latency`` the implied chip demand reproduces ``m``.
        """
        p = self.params
        lo = 1.0
        hi = 1.0 + p.sensitivity * p.u_max / (1.0 - p.u_max)
        g_lo, u_lo = self._implied_multiplier(cfg, frequency, mem_intensity, lo)
        if g_lo <= lo + 1e-12:
            # Uncontended: demand at nominal latency already implies m ~ 1.
            self.latency_multiplier = g_lo
            self.utilization = u_lo
            return g_lo
        u = u_lo
        for _ in range(self._BISECTION_STEPS):
            mid = 0.5 * (lo + hi)
            g_mid, u = self._implied_multiplier(cfg, frequency, mem_intensity, mid)
            if g_mid > mid:
                lo = mid
            else:
                hi = mid
        m = 0.5 * (lo + hi)
        _, u = self._implied_multiplier(cfg, frequency, mem_intensity, m)
        self.latency_multiplier = m
        self.utilization = u
        return m


def default_memory_system(
    cfg: SystemConfig, per_core_bandwidth: float = 6e6
) -> MemorySystem:
    """A memory system provisioned at ``per_core_bandwidth`` accesses/s per
    core — deliberately less than the cores' aggregate worst-case demand,
    so memory-heavy workloads contend (the realistic provisioning point;
    memory bandwidth scales slower than core count)."""
    if per_core_bandwidth <= 0:
        raise ValueError(
            f"per_core_bandwidth must be positive, got {per_core_bandwidth}"
        )
    return MemorySystem(MemorySystemParams(bandwidth=per_core_bandwidth * cfg.n_cores))
