"""The many-core chip model: the closed-loop plant controllers act on.

:class:`ManyCoreChip` composes the performance, power, and thermal models
with a workload, and advances in control epochs.  Each epoch:

1. the controller supplies a per-core VF-level vector;
2. cores that changed level pay the VF transition stall;
3. the workload is sampled to get each core's current phase;
4. throughput, activity, power, and energy are computed;
5. the thermal model integrates over the epoch;
6. an :class:`EpochObservation` is returned with both ground truth (for
   metrics) and sensor readings (for controllers).

The chip itself enforces nothing about the budget — exceeding TDP is
*observed*, not prevented, exactly as on hardware where the enforcement
loop is firmware.  Budget violation accounting lives in
:mod:`repro.metrics.power_metrics`.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import TYPE_CHECKING, Union

import numpy as np

if TYPE_CHECKING:  # runtime import is lazy: repro.faults imports the
    # sim/controller layers, which import this module.
    from repro.faults.campaign import FaultCampaign
    from repro.faults.injector import FaultInjector

from repro.contracts import (
    check_level_indices,
    check_power_samples,
    validation_enabled,
)
from repro.manycore.config import SystemConfig
from repro.manycore.core import activity_factor, instructions_per_second
from repro.manycore.hetero import HeterogeneousMap
from repro.manycore.memory import MemorySystem
from repro.manycore.power import dynamic_power, leakage_power
from repro.manycore.sensors import SensorSuite
from repro.manycore.thermal import ThermalModel
from repro.manycore.variation import CoreVariation
from repro.manycore.vf import clamp_level, transition_penalty
from repro.workloads.phases import Workload

__all__ = ["EpochObservation", "ManyCoreChip"]


@dataclass(frozen=True)
class EpochObservation:
    """Everything measurable about one elapsed control epoch.

    Ground-truth fields are used by metrics; the ``sensed_*`` fields are
    what controllers should consume.

    Attributes
    ----------
    epoch:
        Zero-based index of the epoch that just elapsed.
    time:
        Simulation time in seconds at the *end* of the epoch.
    levels:
        Per-core VF level indices in force during the epoch.
    power:
        Ground-truth per-core average power over the epoch, watts.
    instructions:
        Ground-truth per-core instructions retired during the epoch.
    temperature:
        Per-core temperature at the end of the epoch, kelvin.
    mem_intensity, compute_intensity:
        The workload phase parameters in force (ground truth; real
        controllers infer these from counters).
    sensed_power, sensed_instructions, sensed_temperature:
        Sensor readings of power, instruction counts and temperature.
    """

    epoch: int
    time: float
    levels: np.ndarray
    power: np.ndarray
    instructions: np.ndarray
    temperature: np.ndarray
    mem_intensity: np.ndarray
    compute_intensity: np.ndarray
    sensed_power: np.ndarray
    sensed_instructions: np.ndarray
    sensed_temperature: np.ndarray

    @property
    def chip_power(self) -> float:
        """Total ground-truth chip power for the epoch, watts."""
        return float(np.sum(self.power))

    @property
    def chip_instructions(self) -> float:
        """Total instructions retired chip-wide during the epoch."""
        return float(np.sum(self.instructions))


class ManyCoreChip:
    """Stateful plant model of an N-core chip executing a workload.

    Parameters
    ----------
    cfg:
        System configuration (cores, VF table, epoch length, TDP).
    workload:
        Phase traces the cores execute.
    sensors:
        Telemetry model; defaults to :meth:`SensorSuite.exact` so that the
        plant is deterministic unless noise is requested explicitly.
    initial_level:
        VF level all cores start at; defaults to the top level (the
        uncontrolled, performance-greedy state the paper's problem begins
        from).
    variation:
        Optional per-core process-variation multipliers; defaults to the
        nominal (variation-free) die.
    memory_system:
        Optional shared-memory contention model; when present, the chip
        solves the per-epoch latency fixed point and all cores see the
        inflated effective memory latency.  ``None`` (default) keeps the
        uncontended constant-latency model.
    hetero:
        Optional per-core :class:`HeterogeneousMap` of core types
        (big.LITTLE-class chips); ``None`` means all cores are the nominal
        type.
    validate:
        Arm the per-epoch runtime invariant contracts (finite non-negative
        power, in-range VF levels — see :mod:`repro.contracts`).  ``None``
        (default) defers to the ``REPRO_VALIDATE`` environment variable;
        the resolved switch is the public ``validate`` attribute.
    faults:
        Optional fault-injection schedule (a
        :class:`~repro.faults.campaign.FaultCampaign`, or a pre-built
        :class:`~repro.faults.injector.FaultInjector`).  Injects core
        death, VF actuator faults, and whole-epoch telemetry blackouts
        into the plant; ``None`` (default) runs fault-free.  Controller
        crashes in the campaign are the simulator's concern (see
        :class:`repro.faults.watchdog.WatchdogController`), not the
        plant's.
    """

    def __init__(
        self,
        cfg: SystemConfig,
        workload: Workload,
        sensors: SensorSuite | None = None,
        initial_level: int | None = None,
        variation: CoreVariation | None = None,
        memory_system: MemorySystem | None = None,
        hetero: HeterogeneousMap | None = None,
        validate: bool | None = None,
        faults: Union["FaultCampaign", "FaultInjector", None] = None,
    ) -> None:
        if not cfg.vf_levels:
            raise ValueError("SystemConfig must carry a non-empty VF table")
        if cfg.power_budget <= 0:
            raise ValueError("SystemConfig.power_budget must be set and positive")
        self.cfg = cfg
        self.workload = workload
        self.sensors = sensors if sensors is not None else SensorSuite.exact()
        self.variation = (
            variation if variation is not None else CoreVariation.nominal(cfg.n_cores)
        )
        if self.variation.n_cores != cfg.n_cores:
            raise ValueError(
                f"variation covers {self.variation.n_cores} cores but the chip "
                f"has {cfg.n_cores}"
            )
        self.memory_system = memory_system
        self.hetero = (
            hetero if hetero is not None else HeterogeneousMap.homogeneous(cfg.n_cores)
        )
        if self.hetero.n_cores != cfg.n_cores:
            raise ValueError(
                f"hetero map covers {self.hetero.n_cores} cores but the chip "
                f"has {cfg.n_cores}"
            )
        self._base_cpi = cfg.base_cpi * self.hetero.cpi_scale
        self.thermal = ThermalModel(cfg)
        start = cfg.n_levels - 1 if initial_level is None else initial_level
        if not (0 <= start < cfg.n_levels):
            raise ValueError(f"initial_level {start} outside VF table of {cfg.n_levels}")
        self._freqs = np.array([f for f, _ in cfg.vf_levels])
        self._volts = np.array([v for _, v in cfg.vf_levels])
        self.levels = np.full(cfg.n_cores, start, dtype=int)
        self.faults = self._build_injector(faults)
        self.validate = validation_enabled(validate)
        #: optional :class:`repro.obs.PhaseProfiler`; when attached (the
        #: simulator does this under ``profile=True``) the chip times its
        #: sensor reads into the ``sensor`` phase.  Write-only telemetry —
        #: nothing in the plant reads it back.
        self.profiler = None
        self.epoch = 0
        self.time = 0.0
        self.total_energy = 0.0
        self.total_instructions = 0.0

    def _build_injector(
        self, faults: Union["FaultCampaign", "FaultInjector", None]
    ) -> "FaultInjector | None":
        if faults is None:
            return None
        # Imported here, not at module level: repro.faults pulls in the
        # simulator/controller layers, which import this module.
        from repro.faults.campaign import FaultCampaign
        from repro.faults.injector import FaultInjector

        injector = FaultInjector(faults) if isinstance(faults, FaultCampaign) else faults
        if injector.n_cores != self.cfg.n_cores:
            raise ValueError(
                f"fault campaign covers {injector.n_cores} cores but the chip "
                f"has {self.cfg.n_cores}"
            )
        return injector

    @property
    def n_cores(self) -> int:
        return self.cfg.n_cores

    @property
    def n_levels(self) -> int:
        return self.cfg.n_levels

    def reset(self) -> None:
        """Return the chip to its initial state (top VF, ambient temps)."""
        self.levels = np.full(self.cfg.n_cores, self.cfg.n_levels - 1, dtype=int)
        self.thermal.reset()
        if self.memory_system is not None:
            self.memory_system.reset()
        if self.faults is not None:
            self.faults.reset()
        self.epoch = 0
        self.time = 0.0
        self.total_energy = 0.0
        self.total_instructions = 0.0

    def step(self, new_levels: np.ndarray) -> EpochObservation:
        """Advance one control epoch with the given per-core VF levels.

        Parameters
        ----------
        new_levels:
            Integer per-core level indices; values outside the VF table are
            clamped (a controller bug should degrade, not crash, the plant —
            matching firmware behaviour).

        Returns
        -------
        EpochObservation
        """
        new_levels = np.asarray(new_levels)
        if new_levels.shape != (self.n_cores,):
            raise ValueError(
                f"levels must have shape ({self.n_cores},), got {new_levels.shape}"
            )
        n_levels = self.n_levels
        clamped = np.array(
            [clamp_level(int(v), n_levels) for v in new_levels], dtype=int
        )
        if self.faults is not None:
            # Actuator faults filter the command: dropped commands leave
            # the level unchanged, stuck actuators hold their frozen
            # level.  Applied before the stall so an unchanged level pays
            # no transition penalty — the command never reached hardware.
            clamped = self.faults.effective_levels(self.epoch, self.levels, clamped)
        # Stall time paid by cores that switched level this epoch.
        stall = np.array(
            [
                transition_penalty(int(old), int(new))
                for old, new in zip(self.levels, clamped)
            ]
        )
        self.levels = clamped

        cfg = self.cfg
        dt = cfg.epoch_time
        mem, comp = self.workload.sample(self.time, self.n_cores)
        freq = self._freqs[clamped] * self.hetero.freq_scale
        volt = self._volts[clamped]

        # Shared-memory contention inflates the effective latency everyone
        # sees; scaling mem_intensity by the multiplier is equivalent to
        # scaling the latency in the CPI model.
        if self.memory_system is not None:
            multiplier = self.memory_system.solve_latency_multiplier(cfg, freq, mem)
            mem = mem * multiplier

        # Throughput: IPS while running, times the fraction of the epoch not
        # lost to the VF transition.
        ips = instructions_per_second(cfg, freq, mem, base_cpi=self._base_cpi)
        run_fraction = np.clip(1.0 - stall / dt, 0.0, 1.0)
        instructions = ips * run_fraction * dt

        # Power: activity from the phase; temperature from the start of the
        # epoch (leakage lags by one epoch, a standard discretization).
        # Process-variation multipliers scale each core's components.
        activity = activity_factor(cfg, freq, mem, comp, base_cpi=self._base_cpi)
        temps = self.thermal.temperatures
        dyn = (
            dynamic_power(cfg.technology, volt, freq, activity)
            * self.variation.ceff_mult
            * self.hetero.ceff_scale
        )
        leak = (
            leakage_power(cfg.technology, volt, temps)
            * self.variation.leak_mult
            * self.hetero.leak_scale
        )
        if self.faults is not None:
            dead = self.faults.dead_mask(self.epoch)
            if dead.any():
                # A dead core retires nothing and draws leakage only.
                instructions = np.where(dead, 0.0, instructions)
                dyn = np.where(dead, 0.0, dyn)
        power = dyn + leak

        if self.validate:
            check_level_indices(clamped, n_levels, epoch=self.epoch)
            check_power_samples(power, epoch=self.epoch)
            check_power_samples(
                self.thermal.temperatures, epoch=self.epoch, quantity="temperature_k"
            )

        self.thermal.step(power, dt)
        self.time += dt
        energy = float(np.sum(power)) * dt
        self.total_energy += energy
        self.total_instructions += float(np.sum(instructions))

        blackout = (
            self.faults.blackout_channels(self.epoch)
            if self.faults is not None
            else frozenset()
        )
        profiler = self.profiler
        t_sense = time.perf_counter() if profiler is not None else 0.0
        sensed_power = self.sensors.power.read(power, blackout="power" in blackout)
        sensed_instructions = self.sensors.perf.read(
            instructions, blackout="perf" in blackout
        )
        sensed_temperature = self.sensors.temperature.read(
            self.thermal.temperatures, blackout="temperature" in blackout
        )
        if profiler is not None:
            profiler.add("sensor", time.perf_counter() - t_sense)
        obs = EpochObservation(
            epoch=self.epoch,
            time=self.time,
            levels=clamped.copy(),
            power=power,
            instructions=instructions,
            temperature=self.thermal.temperatures.copy(),
            mem_intensity=mem,
            compute_intensity=comp,
            sensed_power=sensed_power,
            sensed_instructions=sensed_instructions,
            sensed_temperature=sensed_temperature,
        )
        self.epoch += 1
        return obs
