"""The many-core chip model: the closed-loop plant controllers act on.

:class:`ManyCoreChip` is an ``n_runs=1`` view over the array-native
epoch kernel (:class:`repro.kernel.epoch.EpochKernel`), which owns the
canonical epoch step on ``(n_runs, n_cores)`` state.  The chip validates
its configuration, wraps a single-run kernel, and hands out row views —
so the serial loop, the ``jobs=N`` worker pool, and the batched backend
all execute the same code path.  Each epoch:

1. the controller supplies a per-core VF-level vector;
2. cores that changed level pay the VF transition stall;
3. the workload is sampled to get each core's current phase;
4. throughput, activity, power, and energy are computed;
5. the thermal model integrates over the epoch;
6. an :class:`EpochObservation` is returned with both ground truth (for
   metrics) and sensor readings (for controllers).

The chip itself enforces nothing about the budget — exceeding TDP is
*observed*, not prevented, exactly as on hardware where the enforcement
loop is firmware.  Budget violation accounting lives in
:mod:`repro.metrics.power_metrics`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Optional, Union

import numpy as np

if TYPE_CHECKING:  # runtime imports are lazy: repro.faults imports the
    # sim/controller layers and repro.kernel.epoch imports this module.
    from repro.faults.campaign import FaultCampaign
    from repro.faults.injector import FaultInjector
    from repro.kernel.epoch import EpochKernel

from repro.manycore.config import SystemConfig
from repro.manycore.hetero import HeterogeneousMap
from repro.manycore.memory import MemorySystem
from repro.manycore.sensors import SensorSuite
from repro.manycore.variation import CoreVariation
from repro.workloads.phases import Workload

__all__ = ["EpochObservation", "ManyCoreChip"]


@dataclass(frozen=True)
class EpochObservation:
    """Everything measurable about one elapsed control epoch.

    Ground-truth fields are used by metrics; the ``sensed_*`` fields are
    what controllers should consume.

    Attributes
    ----------
    epoch:
        Zero-based index of the epoch that just elapsed.
    time:
        Simulation time in seconds at the *end* of the epoch.
    levels:
        Per-core VF level indices in force during the epoch.
    power:
        Ground-truth per-core average power over the epoch, watts.
    instructions:
        Ground-truth per-core instructions retired during the epoch.
    temperature:
        Per-core temperature at the end of the epoch, kelvin.
    mem_intensity, compute_intensity:
        The workload phase parameters in force (ground truth; real
        controllers infer these from counters).
    sensed_power, sensed_instructions, sensed_temperature:
        Sensor readings of power, instruction counts and temperature.
    """

    epoch: int
    time: float
    levels: np.ndarray
    power: np.ndarray
    instructions: np.ndarray
    temperature: np.ndarray
    mem_intensity: np.ndarray
    compute_intensity: np.ndarray
    sensed_power: np.ndarray
    sensed_instructions: np.ndarray
    sensed_temperature: np.ndarray

    @property
    def chip_power(self) -> float:
        """Total ground-truth chip power for the epoch, watts."""
        return float(np.sum(self.power))

    @property
    def chip_instructions(self) -> float:
        """Total instructions retired chip-wide during the epoch."""
        return float(np.sum(self.instructions))


class _ThermalView:
    """One run's thermal state, read from the kernel.

    Exposes the :class:`~repro.manycore.thermal.ThermalModel` read surface
    (``temperatures``) over the kernel's ``(n_runs, n_cores)`` state; the
    integration itself lives in the kernel's epoch step.
    """

    def __init__(self, kernel: "EpochKernel", run: int = 0) -> None:
        self._kernel = kernel
        self._run = run

    @property
    def temperatures(self) -> np.ndarray:
        """Current per-core die temperatures, kelvin (row view)."""
        return self._kernel.temperatures[self._run]


class ManyCoreChip:
    """Stateful plant model of an N-core chip executing a workload.

    An ``n_runs=1`` view over :class:`repro.kernel.epoch.EpochKernel`:
    the chip owns no epoch state of its own — levels, temperatures,
    clocks, and totals live in the kernel's ``(1, n_cores)`` arrays, and
    :meth:`step` is a reshape in, row view out.

    Parameters
    ----------
    cfg:
        System configuration (cores, VF table, epoch length, TDP).
    workload:
        Phase traces the cores execute.
    sensors:
        Telemetry model; defaults to :meth:`SensorSuite.exact` so that the
        plant is deterministic unless noise is requested explicitly.
    initial_level:
        VF level all cores start at; defaults to the top level (the
        uncontrolled, performance-greedy state the paper's problem begins
        from).
    variation:
        Optional per-core process-variation multipliers; defaults to the
        nominal (variation-free) die.
    memory_system:
        Optional shared-memory contention model; when present, the chip
        solves the per-epoch latency fixed point and all cores see the
        inflated effective memory latency.  ``None`` (default) keeps the
        uncontended constant-latency model.
    hetero:
        Optional per-core :class:`HeterogeneousMap` of core types
        (big.LITTLE-class chips); ``None`` means all cores are the nominal
        type.
    validate:
        Arm the per-epoch runtime invariant contracts (finite non-negative
        power, in-range VF levels — see :mod:`repro.contracts`).  ``None``
        (default) defers to the ``REPRO_VALIDATE`` environment variable;
        the resolved switch is the public ``validate`` attribute.
    faults:
        Optional fault-injection schedule (a
        :class:`~repro.faults.campaign.FaultCampaign`, or a pre-built
        :class:`~repro.faults.injector.FaultInjector`).  Injects core
        death, VF actuator faults, and whole-epoch telemetry blackouts
        into the plant; ``None`` (default) runs fault-free.  Controller
        crashes in the campaign are the simulator's concern (see
        :class:`repro.faults.watchdog.WatchdogController`), not the
        plant's.
    """

    def __init__(
        self,
        cfg: SystemConfig,
        workload: Workload,
        sensors: SensorSuite | None = None,
        initial_level: int | None = None,
        variation: CoreVariation | None = None,
        memory_system: MemorySystem | None = None,
        hetero: HeterogeneousMap | None = None,
        validate: bool | None = None,
        faults: Union["FaultCampaign", "FaultInjector", None] = None,
    ) -> None:
        if not cfg.vf_levels:
            raise ValueError("SystemConfig must carry a non-empty VF table")
        if cfg.power_budget <= 0:
            raise ValueError("SystemConfig.power_budget must be set and positive")
        self.cfg = cfg
        self.workload = workload
        self.sensors = sensors if sensors is not None else SensorSuite.exact()
        self.variation = (
            variation if variation is not None else CoreVariation.nominal(cfg.n_cores)
        )
        if self.variation.n_cores != cfg.n_cores:
            raise ValueError(
                f"variation covers {self.variation.n_cores} cores but the chip "
                f"has {cfg.n_cores}"
            )
        self.memory_system = memory_system
        self.hetero = (
            hetero if hetero is not None else HeterogeneousMap.homogeneous(cfg.n_cores)
        )
        if self.hetero.n_cores != cfg.n_cores:
            raise ValueError(
                f"hetero map covers {self.hetero.n_cores} cores but the chip "
                f"has {cfg.n_cores}"
            )
        self._base_cpi = cfg.base_cpi * self.hetero.cpi_scale
        start = cfg.n_levels - 1 if initial_level is None else initial_level
        if not (0 <= start < cfg.n_levels):
            raise ValueError(f"initial_level {start} outside VF table of {cfg.n_levels}")
        injector = self._build_injector(faults)
        # Imported here, not at module level: the kernel imports this
        # module (for EpochObservation), so the view binds it lazily.
        from repro.kernel.epoch import EpochKernel

        self._kernel = EpochKernel(
            [cfg],
            [workload],
            n_epochs=None,
            faults=[injector],
            validate=validate,
            sensors=[self.sensors],
            initial_levels=[start],
            variations=[self.variation],
            memory_systems=[memory_system],
            heteros=[self.hetero],
        )
        self.thermal = _ThermalView(self._kernel)
        # The kernel re-exposes variation/hetero through row views of its
        # stacked planes; adopt those so in-place edits to the chip's
        # attributes keep reaching the power math, exactly as they did
        # when the serial chip read the arrays live each step.
        self.variation = self._kernel.variations[0]
        self.hetero = self._kernel.heteros[0]

    def _build_injector(
        self, faults: Union["FaultCampaign", "FaultInjector", None]
    ) -> "FaultInjector | None":
        if faults is None:
            return None
        # Imported here, not at module level: repro.faults pulls in the
        # simulator/controller layers, which import this module.
        from repro.faults.campaign import FaultCampaign
        from repro.faults.injector import FaultInjector

        injector = FaultInjector(faults) if isinstance(faults, FaultCampaign) else faults
        if injector.n_cores != self.cfg.n_cores:
            raise ValueError(
                f"fault campaign covers {injector.n_cores} cores but the chip "
                f"has {self.cfg.n_cores}"
            )
        return injector

    @property
    def n_cores(self) -> int:
        return self.cfg.n_cores

    @property
    def n_levels(self) -> int:
        return self.cfg.n_levels

    @property
    def levels(self) -> np.ndarray:
        """Per-core VF levels currently in force (kernel row view)."""
        return self._kernel.levels[0]

    @property
    def faults(self) -> "FaultInjector | None":
        """This run's fault injector, if a campaign was supplied."""
        return self._kernel.faults[0]

    @property
    def validate(self) -> bool:
        """Whether the per-epoch invariant contracts are armed."""
        return self._kernel.validate

    @validate.setter
    def validate(self, armed: bool) -> None:
        self._kernel.validate = armed

    @property
    def profiler(self) -> Optional[object]:
        """Optional :class:`repro.obs.PhaseProfiler`; when attached (the
        simulator does this under ``profile=True``) sensor reads are timed
        into the ``sensor`` phase.  Write-only telemetry."""
        return self._kernel.profiler

    @profiler.setter
    def profiler(self, profiler: Optional[object]) -> None:
        self._kernel.profiler = profiler

    @property
    def epoch(self) -> int:
        return self._kernel.epoch

    @property
    def time(self) -> float:
        return self._kernel.time

    @property
    def total_energy(self) -> float:
        return float(self._kernel.total_energy[0])

    @property
    def total_instructions(self) -> float:
        return float(self._kernel.total_instructions[0])

    def reset(self) -> None:
        """Return the chip to its initial state (top VF, ambient temps)."""
        self._kernel.reset()

    def step(self, new_levels: np.ndarray) -> EpochObservation:
        """Advance one control epoch with the given per-core VF levels.

        Parameters
        ----------
        new_levels:
            Integer per-core level indices; values outside the VF table are
            clamped (a controller bug should degrade, not crash, the plant —
            matching firmware behaviour).

        Returns
        -------
        EpochObservation
        """
        new_levels = np.asarray(new_levels)
        if new_levels.shape != (self.n_cores,):
            raise ValueError(
                f"levels must have shape ({self.n_cores},), got {new_levels.shape}"
            )
        return self._kernel.step(new_levels.reshape(1, -1)).row(0)
