"""Many-core chip substrate: performance, power, thermal, and sensor models.

This package is the simulated plant standing in for the architectural
simulator the paper ran on.  See DESIGN.md ("Substitutions") for the
fidelity argument.
"""

from repro.manycore.chip import EpochObservation, ManyCoreChip
from repro.manycore.config import (
    SystemConfig,
    TechnologyParams,
    default_system,
    default_technology,
)
from repro.manycore.core import (
    activity_factor,
    compute_fraction,
    instructions_per_second,
)
from repro.manycore.power import (
    core_power,
    dynamic_power,
    idle_chip_power,
    leakage_power,
    peak_chip_power,
)
from repro.manycore.hetero import (
    BIG,
    LITTLE,
    CoreType,
    HeterogeneousMap,
    big_little_map,
)
from repro.manycore.memory import (
    MemorySystem,
    MemorySystemParams,
    default_memory_system,
)
from repro.manycore.sensors import Sensor, SensorSpec, SensorSuite
from repro.manycore.thermal import ThermalModel, mesh_neighbors
from repro.manycore.variation import CoreVariation, VariationParams, sample_variation
from repro.manycore.vf import VFLevel, build_vf_table, clamp_level, transition_penalty

__all__ = [
    "EpochObservation",
    "ManyCoreChip",
    "SystemConfig",
    "TechnologyParams",
    "default_system",
    "default_technology",
    "activity_factor",
    "compute_fraction",
    "instructions_per_second",
    "core_power",
    "dynamic_power",
    "idle_chip_power",
    "leakage_power",
    "peak_chip_power",
    "BIG",
    "LITTLE",
    "CoreType",
    "HeterogeneousMap",
    "big_little_map",
    "MemorySystem",
    "MemorySystemParams",
    "default_memory_system",
    "Sensor",
    "SensorSpec",
    "SensorSuite",
    "ThermalModel",
    "mesh_neighbors",
    "CoreVariation",
    "VariationParams",
    "sample_variation",
    "VFLevel",
    "build_vf_table",
    "clamp_level",
    "transition_penalty",
]
