"""System and technology configuration for the many-core substrate.

The paper evaluates OD-RL on a mesh many-core chip whose cores expose a
discrete set of voltage/frequency (VF) operating points.  This module holds
the two configuration records everything else is parameterized by:

* :class:`TechnologyParams` — the physical constants of the silicon process
  (effective switched capacitance, leakage coefficients, thermal RC values).
* :class:`SystemConfig` — the chip-level description (core count, mesh
  geometry, VF table, control epoch length, TDP).

Both are plain frozen dataclasses so configurations hash, compare, and can be
used as dictionary keys in experiment sweeps.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field, replace
from typing import Tuple

__all__ = [
    "TechnologyParams",
    "SystemConfig",
    "default_technology",
    "default_system",
]


@dataclass(frozen=True)
class TechnologyParams:
    """Physical process parameters used by the power and thermal models.

    The defaults approximate a 22 nm-class high-performance process: a core
    dissipating roughly 4–6 W at the top VF point and under 1 W at the
    bottom, with leakage contributing 20–35 % depending on temperature.

    Attributes
    ----------
    ceff:
        Effective switched capacitance per core in farads.  Dynamic power is
        ``activity * ceff * V^2 * f``.
    leak_coeff:
        Leakage scale in amperes at the reference temperature; leakage power
        is ``V * leak_coeff * exp(leak_temp_sens * (T - t_ref))``.
    leak_temp_sens:
        Exponential temperature sensitivity of leakage in 1/K.  Typical
        published values are 0.01–0.02 per kelvin.
    t_ref:
        Reference temperature in kelvin at which ``leak_coeff`` is quoted.
    t_ambient:
        Ambient (heat-sink) temperature in kelvin.
    r_thermal:
        Vertical thermal resistance core-to-ambient in K/W.
    c_thermal:
        Thermal capacitance per core in J/K.
    r_lateral:
        Lateral thermal resistance between mesh-adjacent cores in K/W.
    """

    ceff: float = 1.1e-9
    leak_coeff: float = 0.45
    leak_temp_sens: float = 0.012
    t_ref: float = 330.0
    t_ambient: float = 318.0
    r_thermal: float = 6.0
    c_thermal: float = 0.03
    r_lateral: float = 18.0

    def __post_init__(self) -> None:
        if self.ceff <= 0:
            raise ValueError(f"ceff must be positive, got {self.ceff}")
        if self.leak_coeff < 0:
            raise ValueError(f"leak_coeff must be >= 0, got {self.leak_coeff}")
        if self.r_thermal <= 0 or self.c_thermal <= 0 or self.r_lateral <= 0:
            raise ValueError("thermal RC parameters must be positive")
        if self.t_ambient <= 0 or self.t_ref <= 0:
            raise ValueError("temperatures are absolute (kelvin) and must be positive")


@dataclass(frozen=True)
class SystemConfig:
    """Chip-level configuration of the simulated many-core system.

    Attributes
    ----------
    n_cores:
        Number of cores.  The mesh is as square as possible; any core count
        is allowed (the last row may be partial).
    vf_levels:
        Tuple of ``(frequency_hz, voltage_v)`` pairs sorted by frequency.
        Built by :func:`repro.manycore.vf.build_vf_table` by default.
    epoch_time:
        Length of one control epoch in seconds.  Per-core RL agents act once
        per epoch; this is also the power/thermal integration step.
    power_budget:
        Chip-level power budget (TDP) in watts.
    base_cpi:
        Cycles per instruction of a core on a pure-compute phase, before
        memory stalls.
    mem_latency:
        Main-memory round-trip latency in seconds; converts a phase's memory
        intensity into frequency-dependent stall cycles.
    activity_range:
        ``(min, max)`` switching-activity factors mapped from workload
        intensity onto the dynamic power model.
    """

    n_cores: int = 64
    vf_levels: Tuple[Tuple[float, float], ...] = ()
    epoch_time: float = 1e-3
    power_budget: float = 0.0
    base_cpi: float = 1.0
    mem_latency: float = 80e-9
    activity_range: Tuple[float, float] = (0.25, 1.0)
    technology: TechnologyParams = field(default_factory=TechnologyParams)

    def __post_init__(self) -> None:
        if self.n_cores <= 0:
            raise ValueError(f"n_cores must be positive, got {self.n_cores}")
        if self.epoch_time <= 0:
            raise ValueError(f"epoch_time must be positive, got {self.epoch_time}")
        if self.base_cpi <= 0:
            raise ValueError(f"base_cpi must be positive, got {self.base_cpi}")
        if self.mem_latency < 0:
            raise ValueError(f"mem_latency must be >= 0, got {self.mem_latency}")
        lo, hi = self.activity_range
        if not (0 < lo <= hi <= 1.5):
            raise ValueError(f"activity_range must satisfy 0 < lo <= hi, got {self.activity_range}")
        if self.vf_levels:
            freqs = [f for f, _ in self.vf_levels]
            if sorted(freqs) != freqs:
                raise ValueError("vf_levels must be sorted by ascending frequency")
            if any(f <= 0 or v <= 0 for f, v in self.vf_levels):
                raise ValueError("vf_levels entries must be positive")

    @property
    def mesh_shape(self) -> Tuple[int, int]:
        """Rows/columns of the (near-)square mesh the cores are laid out on."""
        cols = int(math.ceil(math.sqrt(self.n_cores)))
        rows = int(math.ceil(self.n_cores / cols))
        return rows, cols

    @property
    def n_levels(self) -> int:
        """Number of VF operating points."""
        return len(self.vf_levels)

    def with_budget(self, power_budget: float) -> "SystemConfig":
        """Return a copy with ``power_budget`` (watts) as the chip TDP."""
        if power_budget <= 0:
            raise ValueError(f"power_budget must be positive, got {power_budget}")
        return replace(self, power_budget=power_budget)

    def with_cores(self, n_cores: int) -> "SystemConfig":
        """Return a copy with a different core count (budget unchanged)."""
        return replace(self, n_cores=n_cores)


def default_technology() -> TechnologyParams:
    """The 22 nm-class technology point used throughout the evaluation."""
    return TechnologyParams()


def default_system(
    n_cores: int = 64,
    n_levels: int = 8,
    budget_fraction: float = 0.6,
    epoch_time: float = 1e-3,
) -> SystemConfig:
    """Build the standard evaluation system.

    Parameters
    ----------
    n_cores:
        Core count (the paper sweeps 16 to hundreds).
    n_levels:
        Number of VF operating points per core.
    budget_fraction:
        Chip power budget as a fraction of worst-case peak power (all cores
        at the top VF point, maximum activity, hot leakage).
    epoch_time:
        Control epoch in seconds.

    Returns
    -------
    SystemConfig
        Fully populated configuration with VF table and TDP set.
    """
    # Imported here to avoid a circular import: vf.py needs TechnologyParams.
    from repro.manycore.vf import build_vf_table
    from repro.manycore.power import peak_chip_power

    if not (0 < budget_fraction <= 1):
        raise ValueError(f"budget_fraction must be in (0, 1], got {budget_fraction}")
    tech = default_technology()
    vf = build_vf_table(n_levels=n_levels)
    cfg = SystemConfig(
        n_cores=n_cores,
        vf_levels=vf,
        epoch_time=epoch_time,
        power_budget=1.0,  # placeholder, replaced below
        technology=tech,
    )
    peak = peak_chip_power(cfg)
    return cfg.with_budget(budget_fraction * peak)
