"""Analytic per-core performance model.

The controller in the paper only ever observes two things about a core: how
much power it draws and how many instructions it retires.  What the control
problem hinges on is the *shape* of the throughput-vs-frequency curve, which
is dictated by memory behaviour:

* A compute-bound phase retires instructions at a fixed CPI, so throughput
  scales linearly with frequency — raising the VF level buys performance.
* A memory-bound phase stalls on main memory whose latency is fixed in
  nanoseconds.  In *cycles* the stall grows linearly with frequency, so
  throughput saturates — raising the VF level mostly burns power.

The standard first-order model capturing both regimes is

    CPI(f) = CPI_base + mem_intensity * L_mem * f

where ``mem_intensity`` is long-latency memory accesses per instruction and
``L_mem`` the memory round-trip in seconds.  Throughput is then

    IPS(f) = f / CPI(f)

Switching activity (which drives dynamic power) follows the fraction of
cycles the core does useful work, so memory-bound phases draw less dynamic
power at the same VF point — exactly the coupling that makes global budget
reallocation profitable.
"""

from __future__ import annotations

from typing import Union

import numpy as np

from repro.manycore.config import SystemConfig

__all__ = [
    "instructions_per_second",
    "activity_factor",
    "compute_fraction",
]


def compute_fraction(
    cfg: SystemConfig,
    frequency: np.ndarray,
    mem_intensity: np.ndarray,
    base_cpi: Union[float, np.ndarray, None] = None,
) -> np.ndarray:
    """Fraction of cycles spent on useful work (not memory stalls).

    Equals ``CPI_base / CPI(f)``; 1.0 for a pure-compute phase, approaching
    0 as memory stalls dominate.  ``frequency`` is the per-core clock in
    hertz; ``base_cpi`` (scalar or per-core array) overrides
    ``cfg.base_cpi`` for heterogeneous chips.
    """
    frequency = np.asarray(frequency, dtype=float)
    mem_intensity = np.asarray(mem_intensity, dtype=float)
    if np.any(frequency <= 0):
        raise ValueError("frequency must be positive")
    if np.any(mem_intensity < 0):
        raise ValueError("mem_intensity must be >= 0")
    cpi0 = cfg.base_cpi if base_cpi is None else np.asarray(base_cpi, dtype=float)
    if np.any(np.asarray(cpi0) <= 0):
        raise ValueError("base_cpi must be positive")
    stall_cpi = mem_intensity * cfg.mem_latency * frequency
    return cpi0 / (cpi0 + stall_cpi)


def instructions_per_second(
    cfg: SystemConfig,
    frequency: np.ndarray,
    mem_intensity: np.ndarray,
    base_cpi: Union[float, np.ndarray, None] = None,
) -> np.ndarray:
    """Retired instructions per second at ``frequency`` for a phase with the
    given memory intensity (accesses per instruction).

    Vectorized over cores: all array arguments broadcast.  ``base_cpi``
    (scalar or per-core array) overrides ``cfg.base_cpi`` for heterogeneous
    chips.
    """
    frequency = np.asarray(frequency, dtype=float)
    mem_intensity = np.asarray(mem_intensity, dtype=float)
    if np.any(frequency <= 0):
        raise ValueError("frequency must be positive")
    if np.any(mem_intensity < 0):
        raise ValueError("mem_intensity must be >= 0")
    cpi0 = cfg.base_cpi if base_cpi is None else np.asarray(base_cpi, dtype=float)
    if np.any(np.asarray(cpi0) <= 0):
        raise ValueError("base_cpi must be positive")
    cpi = cpi0 + mem_intensity * cfg.mem_latency * frequency
    return frequency / cpi


def activity_factor(
    cfg: SystemConfig,
    frequency: np.ndarray,
    mem_intensity: np.ndarray,
    compute_intensity: np.ndarray,
    base_cpi: Union[float, np.ndarray, None] = None,
) -> np.ndarray:
    """Switching-activity factor feeding the dynamic power model.

    Activity is the product of two effects:

    * the workload's intrinsic datapath utilisation ``compute_intensity``
      (0–1; e.g. heavy floating-point code toggles more capacitance), and
    * the fraction of cycles not stalled on memory, which depends on the
      current frequency.

    The result is mapped affinely into ``cfg.activity_range`` so even a
    fully stalled core draws its clock-tree/idle dynamic floor.
    """
    compute_intensity = np.asarray(compute_intensity, dtype=float)
    if np.any(compute_intensity < 0) or np.any(compute_intensity > 1):
        raise ValueError("compute_intensity must be within [0, 1]")
    act_lo, act_hi = cfg.activity_range
    busy = compute_fraction(cfg, frequency, mem_intensity, base_cpi=base_cpi)
    utilisation = busy * compute_intensity
    return act_lo + (act_hi - act_lo) * utilisation
