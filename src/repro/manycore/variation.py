"""Manufacturing process variation: core-to-core power variability.

Scaled technologies exhibit within-die parameter variation: nominally
identical cores differ in leakage (dominated by threshold-voltage spread,
lognormally distributed) and in effective switched capacitance.  Variation
is *spatially correlated* — neighbouring cores come from the same region of
the reticle — which the model captures with a distance-weighted mixing of
an i.i.d. Gaussian field over the mesh.

Why it matters here: model-based controllers (MaxBIPS, greedy) predict
power from *nominal* technology constants, so on a varied die their
predictions carry a per-core systematic error; the model-free OD-RL agents
simply learn each core's actual behaviour.  Experiment E9 measures how much
that widens OD-RL's advantage.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.manycore.config import SystemConfig
from repro.manycore.thermal import mesh_neighbors

__all__ = ["VariationParams", "CoreVariation", "sample_variation"]


@dataclass(frozen=True)
class VariationParams:
    """Statistical description of within-die variation.

    Attributes
    ----------
    leak_sigma:
        Sigma of the lognormal leakage multiplier.  0.2–0.4 covers
        published post-45 nm within-die leakage spreads (leakage varies by
        2–3x across a die).
    ceff_sigma:
        Sigma of the (much tighter) lognormal dynamic-capacitance
        multiplier; dynamic power varies far less than leakage.
    spatial_mixing:
        In [0, 1): how strongly each core's variation is mixed with its
        mesh neighbours' per smoothing round.  0 = fully independent cores.
    smoothing_rounds:
        Number of neighbour-mixing rounds; more rounds = longer
        correlation length.
    """

    leak_sigma: float = 0.3
    ceff_sigma: float = 0.05
    spatial_mixing: float = 0.5
    smoothing_rounds: int = 2

    def __post_init__(self) -> None:
        if self.leak_sigma < 0 or self.ceff_sigma < 0:
            raise ValueError("sigmas must be >= 0")
        if not (0 <= self.spatial_mixing < 1):
            raise ValueError(
                f"spatial_mixing must be in [0, 1), got {self.spatial_mixing}"
            )
        if self.smoothing_rounds < 0:
            raise ValueError("smoothing_rounds must be >= 0")


@dataclass(frozen=True)
class CoreVariation:
    """Per-core multipliers applied by the power model.

    ``leak_mult[i]`` scales core *i*'s leakage, ``ceff_mult[i]`` its dynamic
    power.  A value of 1.0 everywhere is the nominal (no-variation) die.
    """

    leak_mult: np.ndarray
    ceff_mult: np.ndarray

    def __post_init__(self) -> None:
        if self.leak_mult.shape != self.ceff_mult.shape:
            raise ValueError("multiplier arrays must have matching shapes")
        if np.any(self.leak_mult <= 0) or np.any(self.ceff_mult <= 0):
            raise ValueError("multipliers must be positive")

    @property
    def n_cores(self) -> int:
        return int(self.leak_mult.shape[0])

    @classmethod
    def nominal(cls, n_cores: int) -> "CoreVariation":
        """The no-variation die."""
        if n_cores <= 0:
            raise ValueError(f"n_cores must be positive, got {n_cores}")
        return cls(np.ones(n_cores), np.ones(n_cores))


def _spatially_smooth(
    field: np.ndarray,
    cfg: SystemConfig,
    mixing: float,
    rounds: int,
) -> np.ndarray:
    """Mix each node's value with its mesh neighbours' mean, ``rounds`` times."""
    if rounds == 0 or mixing == 0:
        return field
    n = field.shape[0]
    adjacency = [[] for _ in range(n)]
    for i, j in mesh_neighbors(n, cfg.mesh_shape):
        adjacency[i].append(j)
        adjacency[j].append(i)
    out = field.astype(float)
    for _ in range(rounds):
        mixed = out.copy()
        for i, nbrs in enumerate(adjacency):
            if nbrs:
                mixed[i] = (1 - mixing) * out[i] + mixing * np.mean(out[nbrs])
        out = mixed
    return out


def sample_variation(
    cfg: SystemConfig,
    params: Optional[VariationParams] = None,
    rng: Optional[np.random.Generator] = None,
) -> CoreVariation:
    """Draw one die's variation map.

    Parameters
    ----------
    cfg:
        System configuration (core count and mesh shape).
    params:
        Variation statistics; defaults to :class:`VariationParams`.
    rng:
        Random generator; pass a seeded one for a reproducible die.
        Required: the old fallback silently returned the *same* die
        (seed 0) on every call, which would make every "across dies"
        experiment a single-die experiment.

    Returns
    -------
    CoreVariation
        Lognormal multipliers, spatially correlated over the mesh, each
        normalized to a population mean of 1.0 so the *expected* chip power
        matches the nominal die (variation redistributes power, it does not
        systematically add it).
    """
    params = params if params is not None else VariationParams()
    if rng is None:
        raise ValueError(
            "sample_variation requires an explicit numpy.random.Generator; "
            "pass np.random.default_rng(seed) so the sampled die is "
            "reproducible and distinct across seeds"
        )
    n = cfg.n_cores

    def lognormal_field(sigma: float) -> np.ndarray:
        gaussian = rng.normal(0.0, 1.0, n)
        gaussian = _spatially_smooth(
            gaussian, cfg, params.spatial_mixing, params.smoothing_rounds
        )
        # Smoothing shrinks variance; restore unit scale before applying sigma.
        std = gaussian.std()
        if std > 0:
            gaussian = gaussian / std
        field = np.exp(sigma * gaussian)
        return field / field.mean()

    return CoreVariation(
        leak_mult=lognormal_field(params.leak_sigma),
        ceff_mult=lognormal_field(params.ceff_sigma),
    )
