"""repro — OD-RL: On-line Distributed Reinforcement Learning for power
limited many-core system performance optimization.

Reproduction of Chen & Marculescu, DATE 2015.  The library has four layers:

* :mod:`repro.manycore` — the simulated chip (power / thermal / performance
  / sensors), standing in for the paper's architectural simulator.
* :mod:`repro.workloads` — synthetic phase traces with SPLASH-2/PARSEC-like
  behaviour.
* :mod:`repro.core` — the contribution: per-core RL DVFS agents plus
  global power-budget reallocation (:class:`~repro.core.ODRLController`).
* :mod:`repro.baselines`, :mod:`repro.sim`, :mod:`repro.metrics`,
  :mod:`repro.experiments` — the comparison controllers, the closed-loop
  simulator, evaluation metrics, and the reconstructed paper experiments.

Quickstart::

    from repro import default_system, mixed_workload, ODRLController, run_controller

    cfg = default_system(n_cores=64, budget_fraction=0.6)
    workload = mixed_workload(64, seed=0)
    controller = ODRLController(cfg, seed=0)
    result = run_controller(cfg, workload, controller, n_epochs=2000)
    print(result.mean_throughput / 1e9, "BIPS")
"""

from repro.contracts import InvariantViolation, validation_enabled

from repro.baselines import (
    CentralizedRLController,
    GreedyAscentController,
    MaxBIPSController,
    PIDCappingController,
    PriorityController,
    SteepestDropController,
    StaticUniformController,
    UncappedController,
)
from repro.core import (
    ODRLController,
    QLearningPopulation,
    RewardParams,
    StateEncoder,
    load_policy,
    reallocate_budget,
    save_policy,
    uniform_allocation,
)
from repro.manycore import (
    CoreVariation,
    EpochObservation,
    ManyCoreChip,
    MemorySystem,
    MemorySystemParams,
    SystemConfig,
    TechnologyParams,
    VariationParams,
    default_memory_system,
    default_system,
    sample_variation,
)
from repro.metrics import (
    budget_utilization,
    energy_efficiency,
    over_budget_energy,
    overshoot_fraction,
    throughput_bips,
    throughput_per_over_budget_energy,
)
from repro.parallel import (
    ParallelExecutionError,
    ResultCache,
    RunCell,
    trace_equal,
)
from repro.sim import (
    Controller,
    SimulationResult,
    derive_controller_seeds,
    run_budget_sweep,
    run_controller,
    run_suite,
    simulate,
    standard_controllers,
)
from repro.workloads import (
    Phase,
    Workload,
    benchmark_names,
    make_benchmark,
    make_suite,
    mixed_workload,
)

__version__ = "1.0.0"

__all__ = [
    "InvariantViolation",
    "validation_enabled",
    "CentralizedRLController",
    "GreedyAscentController",
    "MaxBIPSController",
    "PIDCappingController",
    "PriorityController",
    "SteepestDropController",
    "StaticUniformController",
    "UncappedController",
    "ODRLController",
    "QLearningPopulation",
    "RewardParams",
    "StateEncoder",
    "load_policy",
    "reallocate_budget",
    "save_policy",
    "uniform_allocation",
    "CoreVariation",
    "EpochObservation",
    "ManyCoreChip",
    "MemorySystem",
    "MemorySystemParams",
    "SystemConfig",
    "TechnologyParams",
    "VariationParams",
    "default_memory_system",
    "default_system",
    "sample_variation",
    "budget_utilization",
    "energy_efficiency",
    "over_budget_energy",
    "overshoot_fraction",
    "throughput_bips",
    "throughput_per_over_budget_energy",
    "Controller",
    "ParallelExecutionError",
    "ResultCache",
    "RunCell",
    "SimulationResult",
    "derive_controller_seeds",
    "run_budget_sweep",
    "run_controller",
    "run_suite",
    "simulate",
    "standard_controllers",
    "trace_equal",
    "Phase",
    "Workload",
    "benchmark_names",
    "make_benchmark",
    "make_suite",
    "mixed_workload",
    "__version__",
]
