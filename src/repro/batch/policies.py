"""Batched controller policies — re-exported from :mod:`repro.kernel.policies`.

The implementations moved next to the epoch kernel they drive; this
module keeps the historical ``repro.batch.policies`` import surface.
"""

from repro.kernel.policies import (
    BatchCompatError,
    BatchMaxBIPS,
    BatchODRL,
    BatchPolicy,
    PerRunPolicy,
    build_batch_policy,
)

__all__ = [
    "BatchCompatError",
    "BatchPolicy",
    "PerRunPolicy",
    "BatchODRL",
    "BatchMaxBIPS",
    "build_batch_policy",
]
