"""Batched execution of run-cell groups.

:func:`simulate_batch` is the batched mirror of
:func:`repro.sim.simulator.simulate`: it stacks a group of independent
run cells into one :class:`~repro.batch.chip.BatchChip` plus one
:class:`~repro.batch.policies.BatchPolicy` and advances every run with a
single tensor epoch step, returning one ordinary
:class:`~repro.sim.results.SimulationResult` per cell.  The loop body is
a line-for-line transcription of the serial loop — same contract checks,
same per-epoch reductions (row views of C-contiguous stacks, so NumPy's
pairwise summation order per run is the serial order), same
``result.extras`` gates — which is what the differential suite in
``tests/batch/`` verifies bit for bit.

:func:`batch_unsupported_reason` is the compatibility gate: tasks that
trace, profile, run under a watchdog, or carry plant options the batched
chip does not model fall back to the serial/pool path, with the reason
recorded by the engine.  :func:`plan_batches` groups the remaining tasks
by everything that must be uniform inside one stack (controller recipe
modulo seed, epoch count, config modulo budget, simulation options modulo
fault campaign) — budgets, seeds, workloads and campaigns may differ
between the runs of one batch.
"""

from __future__ import annotations

import time
from typing import TYPE_CHECKING, Any, Dict, List, Mapping, Optional, Sequence

import numpy as np

from repro.batch.chip import BatchChip, BatchObservation
from repro.batch.policies import build_batch_policy
from repro.contracts import (
    check_observation_sane,
    check_power_samples,
    check_time_monotone,
    validation_enabled,
)
from repro.faults.campaign import FaultCampaign
from repro.sim.results import SimulationResult

if TYPE_CHECKING:
    from repro.parallel.engine import CellTask

__all__ = ["batch_unsupported_reason", "plan_batches", "simulate_batch"]

#: ``run_controller`` keyword arguments the batched path understands.
#: Anything else is a new simulator feature the batch backend has not been
#: taught about — fall back rather than silently ignore it.
_KNOWN_KEYS = frozenset(
    {
        "sensors",
        "record_per_core",
        "variation",
        "memory_system",
        "hetero",
        "validate",
        "faults",
        "watchdog",
        "checkpoint_period",
        "max_strikes",
    }
)

#: Plant options the batched chip pins to their defaults (exact sensors,
#: nominal variation, no memory contention, homogeneous cores).  A task
#: that overrides any of these needs the serial plant.
_DEFAULT_ONLY_KEYS = ("sensors", "variation", "memory_system", "hetero")


def batch_unsupported_reason(task: "CellTask") -> Optional[str]:
    """Why ``task`` cannot join a batch, or ``None`` if it can.

    The reasons are stable strings (``"trace"``, ``"watchdog"``,
    ``"faults-instance"``, ``"sim_kwargs:<key>"``) recorded in
    ``cell_fallback`` events and engine counters.
    """
    if task.trace:
        return "trace"
    if task.profile:
        return "profile"
    kwargs = dict(task.sim_kwargs)
    for key in kwargs:
        if key not in _KNOWN_KEYS:
            return f"sim_kwargs:{key}"
    if kwargs.get("watchdog"):
        return "watchdog"
    faults = kwargs.get("faults")
    if faults is not None and not isinstance(faults, FaultCampaign):
        # A pre-built (possibly stateful, possibly shared) injector
        # instance cannot be safely re-seated on the batched chip.
        return "faults-instance"
    for key in _DEFAULT_ONLY_KEYS:
        if kwargs.get(key) is not None:
            return f"sim_kwargs:{key}"
    return None


def _seedless(factory: Any) -> Any:
    """``factory`` with any bound ``seed`` keyword removed, so controllers
    differing only by RNG stream land in the same batch group."""
    import functools

    if isinstance(factory, functools.partial):
        keywords = {k: v for k, v in (factory.keywords or {}).items() if k != "seed"}
        return functools.partial(factory.func, *factory.args, **keywords)
    return factory


def _group_signature(task: "CellTask", index: int) -> str:
    """Hash of everything that must be uniform within one batch group.

    Budgets are stripped from the config and ``faults`` from the options:
    those may vary per run inside a stack.  Factories that cannot be
    fingerprinted (lambdas, closures) get a per-task signature, i.e. a
    singleton group — still batched, just alone.
    """
    from repro.parallel.cache import (
        CacheKeyError,
        controller_fingerprint,
        stable_hash,
    )

    # ``None`` values mean "the default" for every supported option
    # (sensors, validate, …), so they normalize away: a task passing an
    # explicit ``sensors=None`` stacks with one that omits the key.
    options = {
        k: v
        for k, v in dict(task.sim_kwargs).items()
        if k != "faults" and v is not None
    }
    try:
        token = controller_fingerprint(_seedless(task.factory))
        return stable_hash(
            (token, task.cell.n_epochs, task.cfg.with_budget(1.0), options)
        )
    except CacheKeyError:
        return f"<singleton:{index}>"


def plan_batches(tasks: Sequence["CellTask"], max_batch: int) -> List[List[int]]:
    """Group task indices into batch stacks of at most ``max_batch`` runs.

    Groups form in first-appearance order and each group is chunked
    contiguously, so the plan — and therefore every run's batch
    neighbours — is a deterministic function of the task list.
    """
    if max_batch < 1:
        raise ValueError(f"max_batch must be >= 1, got {max_batch}")
    groups: Dict[str, List[int]] = {}
    order: List[str] = []
    for i, task in enumerate(tasks):
        sig = _group_signature(task, i)
        if sig not in groups:
            groups[sig] = []
            order.append(sig)
        groups[sig].append(i)
    plan: List[List[int]] = []
    for sig in order:
        members = groups[sig]
        for start in range(0, len(members), max_batch):
            plan.append(members[start : start + max_batch])
    return plan


def simulate_batch(tasks: Sequence["CellTask"]) -> List[SimulationResult]:
    """Run a batch-compatible task group in one stacked simulation.

    Every task must have passed :func:`batch_unsupported_reason` and the
    group must satisfy the uniformity of :func:`_group_signature` (the
    :class:`BatchChip` re-checks config compatibility).  Results come back
    in task order, each indistinguishable from the serial run of the same
    cell (``assert_trace_equal`` holds bit for bit).
    """
    if not tasks:
        return []
    for task in tasks:
        reason = batch_unsupported_reason(task)
        if reason is not None:
            raise ValueError(
                f"task {task.cell.label()} is not batch-compatible: {reason}"
            )
    kwargs0: Mapping[str, Any] = dict(tasks[0].sim_kwargs)
    record_per_core = bool(kwargs0.get("record_per_core", False))
    validate = kwargs0.get("validate", None)
    n_epochs = tasks[0].cell.n_epochs
    for task in tasks[1:]:
        if task.cell.n_epochs != n_epochs:
            raise ValueError("all runs in a batch must share n_epochs")

    controllers = [task.factory(task.cfg) for task in tasks]
    policy = build_batch_policy(controllers)
    campaigns = [dict(task.sim_kwargs).get("faults") for task in tasks]
    chip = BatchChip(
        [task.cfg for task in tasks],
        [task.workload for task in tasks],
        n_epochs,
        faults=campaigns,
        validate=validate,
    )
    policy.reset()

    n_runs, n_cores = chip.n_runs, chip.n_cores
    validating = validation_enabled(validate)
    chip_power = np.empty((n_epochs, n_runs))
    chip_instructions = np.empty((n_epochs, n_runs))
    max_temperature = np.empty((n_epochs, n_runs))
    decision_time = np.empty((n_epochs, n_runs))
    core_power = (
        np.empty((n_epochs, n_runs, n_cores)) if record_per_core else None
    )
    core_levels = (
        np.empty((n_epochs, n_runs, n_cores), dtype=int)
        if record_per_core
        else None
    )
    core_instructions = (
        np.empty((n_epochs, n_runs, n_cores)) if record_per_core else None
    )

    obs: Optional[BatchObservation] = None
    last_time_s = float("-inf")
    for e in range(n_epochs):
        t0 = time.perf_counter()
        levels = policy.decide(obs)
        t1 = time.perf_counter()
        # One decide advances all runs; the shared wall time is each run's
        # decision_time entry (a wall-clock field, excluded from
        # trace_equal just like the serial measurement jitter).
        decision_time[e, :] = t1 - t0
        obs = chip.step(levels)
        if validating:
            for r in range(n_runs):
                check_power_samples(obs.power[r], epoch=e)
            check_time_monotone(last_time_s, obs.time, epoch=e)
            for r in range(n_runs):
                check_observation_sane(
                    obs.sensed_power[r],
                    obs.sensed_instructions[r],
                    obs.sensed_temperature[r],
                    obs.levels[r],
                    chip.cfg.n_levels,
                    epoch=e,
                )
            last_time_s = obs.time
        for r in range(n_runs):
            chip_power[e, r] = obs.chip_power(r)
            chip_instructions[e, r] = obs.chip_instructions(r)
            max_temperature[e, r] = float(np.max(obs.temperature[r]))
        if record_per_core:
            assert core_power is not None
            assert core_levels is not None
            assert core_instructions is not None
            core_power[e] = obs.power
            core_levels[e] = obs.levels
            core_instructions[e] = obs.instructions

    results: List[SimulationResult] = []
    for r, task in enumerate(tasks):
        extras: dict = {}
        injector = chip.faults[r]
        if injector is not None and injector.campaign.n_events > 0:
            extras["faults"] = {
                "n_events": injector.campaign.n_events,
                **injector.counts,
            }
        degradation = policy.degradation_extras(r)
        if degradation is not None:
            extras["degradation"] = degradation
        results.append(
            SimulationResult(
                cfg=task.cfg,
                controller_name=controllers[r].name,
                workload_name=task.workload.name,
                chip_power=chip_power[:, r].copy(),
                chip_instructions=chip_instructions[:, r].copy(),
                max_temperature=max_temperature[:, r].copy(),
                decision_time=decision_time[:, r].copy(),
                core_power=(
                    core_power[:, r].copy() if core_power is not None else None
                ),
                core_levels=(
                    core_levels[:, r].copy() if core_levels is not None else None
                ),
                core_instructions=(
                    core_instructions[:, r].copy()
                    if core_instructions is not None
                    else None
                ),
                extras=extras,
            )
        )
    return results
