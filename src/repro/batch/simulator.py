"""Batched execution of run-cell groups.

:func:`simulate_batch` is the batched mirror of
:func:`repro.sim.simulator.simulate`: it stacks a group of independent
run cells into one :class:`~repro.batch.chip.BatchChip` (the epoch
kernel) plus one :class:`~repro.batch.policies.BatchPolicy` and advances
every run with a single array epoch step, returning one ordinary
:class:`~repro.sim.results.SimulationResult` per cell.  The loop body is
a line-for-line transcription of the serial loop — same contract checks,
same per-epoch reductions (row views of C-contiguous stacks, so NumPy's
pairwise summation order per run is the serial order), same
``result.extras`` gates — which is what the conformance suite in
``tests/kernel/`` verifies bit for bit.

Runs in one stack may differ in power budget, seed, workload recipe,
fault campaign, and epoch count: a *ragged* group is padded to the
longest run and finished rows are masked out via the kernel's ``active``
row mask, so shorter runs see exactly the operation sequence of a
shorter batch.  Watchdog-supervised cells batch too — each run gets its
own :class:`~repro.faults.watchdog.WatchdogController` wrapper, driven
per run by :class:`~repro.batch.policies.PerRunPolicy`.

:func:`batch_unsupported_reason` is the compatibility gate: tasks that
trace, profile, or carry plant options the batched chip does not model
fall back to the serial/pool path, with the reason recorded by the
engine.  :func:`plan_batches` groups the remaining tasks by everything
that must be uniform inside one stack (controller recipe modulo seed,
config modulo budget, simulation options modulo fault campaign) —
budgets, seeds, workloads, campaigns and epoch counts may differ between
the runs of one batch.
"""

from __future__ import annotations

import time
from typing import TYPE_CHECKING, Any, Dict, List, Mapping, Optional, Sequence

import numpy as np

from repro.batch.chip import BatchChip, BatchObservation
from repro.batch.policies import build_batch_policy
from repro.contracts import (
    check_observation_sane,
    check_power_samples,
    check_time_monotone,
    validation_enabled,
)
from repro.faults.campaign import FaultCampaign
from repro.sim.results import SimulationResult

if TYPE_CHECKING:
    from repro.parallel.engine import CellTask

__all__ = ["batch_unsupported_reason", "plan_batches", "simulate_batch"]

#: ``run_controller`` keyword arguments the batched path understands.
#: Anything else is a new simulator feature the batch backend has not been
#: taught about — fall back rather than silently ignore it.
_KNOWN_KEYS = frozenset(
    {
        "sensors",
        "record_per_core",
        "variation",
        "memory_system",
        "hetero",
        "validate",
        "faults",
        "watchdog",
        "checkpoint_period",
        "max_strikes",
    }
)

#: Plant options the batched chip pins to their defaults (exact sensors,
#: no memory contention).  A task that overrides either needs the serial
#: plant: noisy sensor suites are stateful per-run RNG consumers the
#: vectorized sensor path does not model, and memory contention needs the
#: live phase path.  Variation and hetero maps batch fine — the kernel
#: stacks their multipliers per run.
_DEFAULT_ONLY_KEYS = ("sensors", "memory_system")


def batch_unsupported_reason(task: "CellTask") -> Optional[str]:
    """Why ``task`` cannot join a batch, or ``None`` if it can.

    The reasons are stable strings (``"trace"``, ``"profile"``,
    ``"faults-instance"``, ``"sim_kwargs:<key>"``) recorded in
    ``cell_fallback`` events and engine counters.
    """
    if task.trace:
        return "trace"
    if task.profile:
        return "profile"
    kwargs = dict(task.sim_kwargs)
    for key in kwargs:
        if key not in _KNOWN_KEYS:
            return f"sim_kwargs:{key}"
    faults = kwargs.get("faults")
    if faults is not None and not isinstance(faults, FaultCampaign):
        # A pre-built (possibly stateful, possibly shared) injector
        # instance cannot be safely re-seated on the batched chip.
        return "faults-instance"
    for key in _DEFAULT_ONLY_KEYS:
        if kwargs.get(key) is not None:
            return f"sim_kwargs:{key}"
    return None


def _seedless(factory: Any) -> Any:
    """``factory`` with any bound ``seed`` keyword removed, so controllers
    differing only by RNG stream land in the same batch group."""
    import functools

    if isinstance(factory, functools.partial):
        keywords = {k: v for k, v in (factory.keywords or {}).items() if k != "seed"}
        return functools.partial(factory.func, *factory.args, **keywords)
    return factory


def _option_token(key: str, value: Any) -> Any:
    """A stable-hashable stand-in for one simulation option value.

    :class:`~repro.manycore.hetero.HeterogeneousMap` is a plain class
    (not a dataclass), so :func:`~repro.parallel.cache.stable_hash`
    cannot key it directly; its per-core scale arrays carry its full
    identity, so hash those instead of demoting hetero cells to
    singleton groups.
    """
    from repro.manycore.hetero import HeterogeneousMap

    if isinstance(value, HeterogeneousMap):
        return (
            "hetero-map",
            value.freq_scale,
            value.ceff_scale,
            value.cpi_scale,
            value.leak_scale,
        )
    return value


def _group_signature(task: "CellTask", index: int) -> str:
    """Hash of everything that must be uniform within one batch group.

    Budgets are stripped from the config and ``faults`` from the options:
    those may vary per run inside a stack, as may seeds, workloads, and
    — since the kernel masks finished rows — epoch counts.  Factories
    that cannot be fingerprinted (lambdas, closures) get a per-task
    signature, i.e. a singleton group — still batched, just alone.
    """
    from repro.parallel.cache import (
        CacheKeyError,
        controller_fingerprint,
        stable_hash,
    )

    # ``None`` values mean "the default" for every supported option
    # (sensors, validate, …), so they normalize away: a task passing an
    # explicit ``sensors=None`` stacks with one that omits the key.
    options = {
        k: _option_token(k, v)
        for k, v in dict(task.sim_kwargs).items()
        if k != "faults" and v is not None
    }
    try:
        token = controller_fingerprint(_seedless(task.factory))
        return stable_hash((token, task.cfg.with_budget(1.0), options))
    except CacheKeyError:
        return f"<singleton:{index}>"


def plan_batches(tasks: Sequence["CellTask"], max_batch: int) -> List[List[int]]:
    """Group task indices into batch stacks of at most ``max_batch`` runs.

    Groups form in first-appearance order and each group is chunked
    contiguously, so the plan — and therefore every run's batch
    neighbours — is a deterministic function of the task list.
    """
    if max_batch < 1:
        raise ValueError(f"max_batch must be >= 1, got {max_batch}")
    groups: Dict[str, List[int]] = {}
    order: List[str] = []
    for i, task in enumerate(tasks):
        sig = _group_signature(task, i)
        if sig not in groups:
            groups[sig] = []
            order.append(sig)
        groups[sig].append(i)
    plan: List[List[int]] = []
    for sig in order:
        members = groups[sig]
        for start in range(0, len(members), max_batch):
            plan.append(members[start : start + max_batch])
    return plan


def simulate_batch(tasks: Sequence["CellTask"]) -> List[SimulationResult]:
    """Run a batch-compatible task group in one stacked simulation.

    Every task must have passed :func:`batch_unsupported_reason` and the
    group must satisfy the uniformity of :func:`_group_signature` (the
    :class:`BatchChip` re-checks config compatibility).  Epoch counts may
    differ: the stack is padded to the longest run and finished rows are
    masked via the kernel's ``active`` mask, with each result sliced back
    to its own length.  Results come back in task order, each
    indistinguishable from the serial run of the same cell
    (``assert_trace_equal`` holds bit for bit).
    """
    if not tasks:
        return []
    for task in tasks:
        reason = batch_unsupported_reason(task)
        if reason is not None:
            raise ValueError(
                f"task {task.cell.label()} is not batch-compatible: {reason}"
            )
    kwargs0: Mapping[str, Any] = dict(tasks[0].sim_kwargs)
    record_per_core = bool(kwargs0.get("record_per_core", False))
    validate = kwargs0.get("validate", None)
    watchdog = bool(kwargs0.get("watchdog", False))
    checkpoint_period = int(kwargs0.get("checkpoint_period", 0))
    max_strikes = int(kwargs0.get("max_strikes", 3))

    n_epochs_arr = np.array([task.cell.n_epochs for task in tasks], dtype=int)
    max_epochs = int(n_epochs_arr.max())
    ragged = bool((n_epochs_arr != max_epochs).any())

    controllers = [task.factory(task.cfg) for task in tasks]
    campaigns = [dict(task.sim_kwargs).get("faults") for task in tasks]
    variations = [dict(task.sim_kwargs).get("variation") for task in tasks]
    heteros = [dict(task.sim_kwargs).get("hetero") for task in tasks]
    chip = BatchChip(
        [task.cfg for task in tasks],
        [task.workload for task in tasks],
        max_epochs,
        faults=campaigns,
        validate=validate,
        variations=(
            variations if any(v is not None for v in variations) else None
        ),
        heteros=heteros if any(h is not None for h in heteros) else None,
    )
    drivers: List[Any]
    if watchdog:
        # Imported here, not at module level: repro.faults.watchdog
        # depends on the controller interface this package adapts.
        from repro.faults.watchdog import WatchdogController

        # Per-run wrappers, exactly as the serial simulator builds them
        # (crash schedule from each run's own campaign).  Watchdog-wrapped
        # drivers batch via PerRunPolicy: each run's decide is the serial
        # wrapper call on a row view, so crash/restore checkpointing is
        # the serial code path unchanged.
        drivers = []
        for ctrl, injector in zip(controllers, chip.faults):
            crash_epochs = (
                injector.campaign.crash_epochs if injector is not None else ()
            )
            drivers.append(
                WatchdogController(
                    ctrl,
                    max_strikes=max_strikes,
                    crash_epochs=crash_epochs,
                    checkpoint_period=checkpoint_period,
                )
            )
    else:
        drivers = list(controllers)
    policy = build_batch_policy(drivers)
    policy.reset()

    n_runs, n_cores = chip.n_runs, chip.n_cores
    validating = validation_enabled(validate)
    chip_power = np.empty((max_epochs, n_runs))
    chip_instructions = np.empty((max_epochs, n_runs))
    max_temperature = np.empty((max_epochs, n_runs))
    decision_time = np.empty((max_epochs, n_runs))
    core_power = (
        np.empty((max_epochs, n_runs, n_cores)) if record_per_core else None
    )
    core_levels = (
        np.empty((max_epochs, n_runs, n_cores), dtype=int)
        if record_per_core
        else None
    )
    core_instructions = (
        np.empty((max_epochs, n_runs, n_cores)) if record_per_core else None
    )

    obs: Optional[BatchObservation] = None
    last_time_s = float("-inf")
    for e in range(max_epochs):
        active = n_epochs_arr > e if ragged else None
        t0 = time.perf_counter()
        levels = policy.decide(obs, active)
        t1 = time.perf_counter()
        # One decide advances all runs; the shared wall time is each run's
        # decision_time entry (a wall-clock field, excluded from
        # trace_equal just like the serial measurement jitter).
        decision_time[e, :] = t1 - t0
        if active is not None:
            # Finished rows hold their last level: no transition stall, no
            # actuator command.  np.where (not in-place assignment) because
            # a policy may return an array it also keeps as learner state.
            levels = np.where(active[:, None], levels, chip.levels)
        obs = chip.step(levels, active=active)
        if validating:
            for r in range(n_runs):
                if active is None or active[r]:
                    check_power_samples(obs.power[r], epoch=e)
            check_time_monotone(last_time_s, obs.time, epoch=e)
            for r in range(n_runs):
                if active is None or active[r]:
                    check_observation_sane(
                        obs.sensed_power[r],
                        obs.sensed_instructions[r],
                        obs.sensed_temperature[r],
                        obs.levels[r],
                        chip.cfg.n_levels,
                        epoch=e,
                    )
            last_time_s = obs.time
        # Recording is unmasked — finished rows record dead (but finite)
        # state that the per-run slicing below never reads.
        for r in range(n_runs):
            chip_power[e, r] = obs.chip_power(r)
            chip_instructions[e, r] = obs.chip_instructions(r)
            max_temperature[e, r] = float(np.max(obs.temperature[r]))
        if record_per_core:
            assert core_power is not None
            assert core_levels is not None
            assert core_instructions is not None
            core_power[e] = obs.power
            core_levels[e] = obs.levels
            core_instructions[e] = obs.instructions

    results: List[SimulationResult] = []
    for r, task in enumerate(tasks):
        n_e = int(n_epochs_arr[r])
        extras: dict = {}
        injector = chip.faults[r]
        if injector is not None and injector.campaign.n_events > 0:
            extras["faults"] = {
                "n_events": injector.campaign.n_events,
                **injector.counts,
            }
        driver = drivers[r]
        stats = getattr(driver, "stats", None)
        if stats is not None and getattr(driver, "inner", driver) is not driver:
            extras["watchdog"] = stats
        degradation = policy.degradation_extras(r)
        if degradation is not None:
            extras["degradation"] = degradation
        results.append(
            SimulationResult(
                cfg=task.cfg,
                controller_name=drivers[r].name,
                workload_name=task.workload.name,
                chip_power=chip_power[:n_e, r].copy(),
                chip_instructions=chip_instructions[:n_e, r].copy(),
                max_temperature=max_temperature[:n_e, r].copy(),
                decision_time=decision_time[:n_e, r].copy(),
                core_power=(
                    core_power[:n_e, r].copy() if core_power is not None else None
                ),
                core_levels=(
                    core_levels[:n_e, r].copy()
                    if core_levels is not None
                    else None
                ),
                core_instructions=(
                    core_instructions[:n_e, r].copy()
                    if core_instructions is not None
                    else None
                ),
                extras=extras,
            )
        )
    return results
