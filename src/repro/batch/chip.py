"""Batched plant: N independent chips advanced by one tensor step.

:class:`BatchChip` stacks ``n_runs`` independent :class:`~repro.manycore.
chip.ManyCoreChip` instances into ``(n_runs, n_cores)`` state arrays and
replays ``ManyCoreChip.step``'s exact operation sequence on the stacked
arrays.  The bit-identity contract (see ``docs/batch.md``) rests on three
facts about the stacking:

* every serial operation on an ``(n_cores,)`` vector is elementwise, so
  running it on a ``(n_runs, n_cores)`` array produces bit-identical rows;
* per-run *reductions* (chip power, DP feasibility) are taken over row
  views of C-contiguous arrays, which numpy reduces in the same pairwise
  order as the serial 1-D array;
* the two non-elementwise pieces — the thermal Laplacian matvec and the
  stateful fault injector — are executed per run on row views, calling
  the exact same code paths as the serial chip.

Runs in one batch may differ in power budget, workload, seed, and fault
campaign; everything else in the configuration (core count, VF table,
epoch time, technology) must be identical — :func:`repro.batch.simulator.
plan_batches` only groups cells satisfying this.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.contracts import check_level_indices, check_power_samples, validation_enabled
from repro.faults.campaign import FaultCampaign
from repro.faults.injector import FaultInjector
from repro.manycore.chip import EpochObservation
from repro.manycore.config import SystemConfig
from repro.manycore.core import activity_factor, instructions_per_second
from repro.manycore.hetero import HeterogeneousMap
from repro.manycore.power import dynamic_power, leakage_power
from repro.manycore.thermal import ThermalModel
from repro.manycore.variation import CoreVariation
from repro.manycore.vf import transition_penalty
from repro.workloads.phases import CorePhaseSequence, Workload

__all__ = ["BatchObservation", "BatchChip"]


@dataclass(frozen=True)
class BatchObservation:
    """One elapsed epoch of every run in the batch.

    Same fields as :class:`~repro.manycore.chip.EpochObservation`, with a
    leading run axis on every array: shape ``(n_runs, n_cores)``.  ``epoch``
    and ``time`` are scalars — all runs in a batch share the epoch clock.
    :meth:`row` recovers one run's :class:`EpochObservation` as views, so a
    serial controller can consume a batch observation unchanged.
    """

    epoch: int
    time: float
    levels: np.ndarray
    power: np.ndarray
    instructions: np.ndarray
    temperature: np.ndarray
    mem_intensity: np.ndarray
    compute_intensity: np.ndarray
    sensed_power: np.ndarray
    sensed_instructions: np.ndarray
    sensed_temperature: np.ndarray

    @property
    def n_runs(self) -> int:
        return int(self.power.shape[0])

    def row(self, run: int) -> EpochObservation:
        """Run ``run``'s slice as a serial observation (row views)."""
        return EpochObservation(
            epoch=self.epoch,
            time=self.time,
            levels=self.levels[run],
            power=self.power[run],
            instructions=self.instructions[run],
            temperature=self.temperature[run],
            mem_intensity=self.mem_intensity[run],
            compute_intensity=self.compute_intensity[run],
            sensed_power=self.sensed_power[run],
            sensed_instructions=self.sensed_instructions[run],
            sensed_temperature=self.sensed_temperature[run],
        )

    def chip_power(self, run: int) -> float:
        """Total chip power of ``run`` this epoch (row-view reduction —
        bit-identical to the serial ``EpochObservation.chip_power``)."""
        return float(np.sum(self.power[run]))

    def chip_instructions(self, run: int) -> float:
        """Total instructions of ``run`` this epoch (row-view reduction)."""
        return float(np.sum(self.instructions[run]))


def _epoch_start_times(n_epochs: int, dt: float) -> np.ndarray:
    """Workload sample times per epoch, accumulated exactly as the serial
    chip accumulates ``self.time`` (repeated ``+= dt``, never ``cumsum``)."""
    times = np.empty(n_epochs)
    t = 0.0
    for e in range(n_epochs):
        times[e] = t
        t += dt
    return times


def _sequence_track(
    seq: CorePhaseSequence, times: np.ndarray
) -> Tuple[np.ndarray, np.ndarray]:
    """``(mem, comp)`` per epoch for one phase sequence.

    Vectorizes ``CorePhaseSequence.phase_at``: the cumulative table is
    rebuilt with the same left-to-right float accumulation, the cyclic
    wrap uses the same ``%``, and ``np.searchsorted(side="right")`` is the
    array form of ``bisect.bisect_right`` — index-identical, so the phase
    constants picked are the very same floats the serial chip samples.
    """
    phases = seq.phases
    cumulative: List[float] = []
    total = 0.0
    for p in phases:
        total += p.duration
        cumulative.append(total)
    cum = np.asarray(cumulative)
    wrapped = times % total
    idx = np.searchsorted(cum, wrapped, side="right")
    idx = np.minimum(idx, len(phases) - 1)
    mem_vals = np.array([p.mem_intensity for p in phases])
    comp_vals = np.array([p.compute_intensity for p in phases])
    return mem_vals[idx], comp_vals[idx]


class BatchChip:
    """``n_runs`` independent plants advanced in lockstep.

    Parameters
    ----------
    cfgs:
        One configuration per run.  May differ **only** in ``power_budget``
        (the plant never reads the budget; controllers do).
    workloads:
        One workload per run; phase streams are precomputed for
        ``n_epochs`` so the epoch step is a table row lookup.
    n_epochs:
        Length of the run the phase streams are precomputed for.
    faults:
        Optional per-run fault campaigns (``None`` entries run fault-free).
        Each run gets its own stateful :class:`FaultInjector`, applied on
        row views — the exact serial code path.
    validate:
        Arm the per-epoch invariant contracts, as on the serial chip;
        ``None`` defers to ``REPRO_VALIDATE``.
    """

    def __init__(
        self,
        cfgs: Sequence[SystemConfig],
        workloads: Sequence[Workload],
        n_epochs: int,
        faults: Optional[Sequence[Optional[FaultCampaign]]] = None,
        validate: Optional[bool] = None,
    ) -> None:
        if not cfgs:
            raise ValueError("BatchChip needs at least one run")
        if len(workloads) != len(cfgs):
            raise ValueError(
                f"{len(cfgs)} configs but {len(workloads)} workloads"
            )
        if n_epochs <= 0:
            raise ValueError(f"n_epochs must be positive, got {n_epochs}")
        cfg0 = cfgs[0]
        if not cfg0.vf_levels:
            raise ValueError("SystemConfig must carry a non-empty VF table")
        reference = cfg0.with_budget(1.0)
        for cfg in cfgs:
            if cfg.power_budget <= 0:
                raise ValueError("SystemConfig.power_budget must be set and positive")
            if cfg.with_budget(1.0) != reference:
                raise ValueError(
                    "batched runs may differ only in power_budget; got a "
                    "config differing elsewhere"
                )
        campaigns: Sequence[Optional[FaultCampaign]] = (
            faults if faults is not None else [None] * len(cfgs)
        )
        if len(campaigns) != len(cfgs):
            raise ValueError(f"{len(cfgs)} configs but {len(campaigns)} fault entries")

        self.cfgs: Tuple[SystemConfig, ...] = tuple(cfgs)
        self.workloads: Tuple[Workload, ...] = tuple(workloads)
        self.cfg = cfg0  # shared plant constants (budget never read here)
        self.n_runs = len(cfgs)
        self.n_cores = cfg0.n_cores
        self.n_levels = cfg0.n_levels
        self.n_epochs = n_epochs
        self.validate = validation_enabled(validate)

        hetero = HeterogeneousMap.homogeneous(cfg0.n_cores)
        variation = CoreVariation.nominal(cfg0.n_cores)
        self._hetero = hetero
        self._variation = variation
        self._base_cpi = cfg0.base_cpi * hetero.cpi_scale
        self._freqs = np.array([f for f, _ in cfg0.vf_levels])
        self._volts = np.array([v for _, v in cfg0.vf_levels])
        # transition_penalty depends only on |new - old|; table-lookup form.
        self._penalty = np.array(
            [transition_penalty(0, d) for d in range(self.n_levels)]
        )
        # Shared Laplacian (same mesh for every run); temperature state is
        # (n_runs, n_cores) and substeps apply the matvec per run.
        thermal = ThermalModel(cfg0)
        self._laplacian = thermal._laplacian
        self._temps = np.full(
            (self.n_runs, self.n_cores), cfg0.technology.t_ambient, dtype=float
        )
        self.faults: List[Optional[FaultInjector]] = [
            FaultInjector(c) if c is not None else None for c in campaigns
        ]
        for injector, cfg in zip(self.faults, cfgs):
            if injector is not None and injector.n_cores != cfg.n_cores:
                raise ValueError(
                    f"fault campaign covers {injector.n_cores} cores but the "
                    f"chip has {cfg.n_cores}"
                )

        times = _epoch_start_times(n_epochs, cfg0.epoch_time)
        self._mem_stream, self._comp_stream = self._build_phase_streams(times)

        self.levels = np.full(
            (self.n_runs, self.n_cores), self.n_levels - 1, dtype=int
        )
        self.epoch = 0
        self.time = 0.0
        self.total_energy = np.zeros(self.n_runs, dtype=float)
        self.total_instructions = np.zeros(self.n_runs, dtype=float)

    def _build_phase_streams(
        self, times: np.ndarray
    ) -> Tuple[np.ndarray, np.ndarray]:
        mem = np.empty((self.n_epochs, self.n_runs, self.n_cores))
        comp = np.empty((self.n_epochs, self.n_runs, self.n_cores))
        tracks: Dict[int, Tuple[np.ndarray, np.ndarray]] = {}
        for r, workload in enumerate(self.workloads):
            for i in range(self.n_cores):
                seq = workload.sequence_for_core(i)
                track = tracks.get(id(seq))
                if track is None:
                    track = _sequence_track(seq, times)
                    tracks[id(seq)] = track
                mem[:, r, i] = track[0]
                comp[:, r, i] = track[1]
        return mem, comp

    def _thermal_step(self, power: np.ndarray, dt: float) -> None:
        """Forward-Euler substeps on ``(n_runs, n_cores)`` temperatures.

        Identical arithmetic to :meth:`ThermalModel.step`; the Laplacian
        matvec runs per run on contiguous row views (a batched matmul
        would use a different BLAS kernel and is *not* bit-stable against
        the serial matvec).
        """
        tech = self.cfg.technology
        tau = tech.r_thermal * tech.c_thermal
        max_h = ThermalModel._MAX_STEP_FRACTION * tau
        n_sub = max(1, int(np.ceil(dt / max_h)))
        h = dt / n_sub
        temps = self._temps
        inv_rv = 1.0 / tech.r_thermal
        inv_rl = 1.0 / tech.r_lateral
        inv_c = 1.0 / tech.c_thermal
        lat = np.empty_like(temps)
        for _ in range(n_sub):
            for r in range(self.n_runs):
                lat[r] = self._laplacian @ temps[r]
            lateral = lat * inv_rl
            dT = (power - (temps - tech.t_ambient) * inv_rv + lateral) * inv_c
            temps = temps + h * dT
        self._temps = temps

    @property
    def temperatures(self) -> np.ndarray:
        """Current ``(n_runs, n_cores)`` die temperatures."""
        return self._temps

    def step(self, new_levels: np.ndarray) -> BatchObservation:
        """Advance every run by one control epoch.

        The operation sequence, dtype conversions, and reduction shapes
        mirror :meth:`ManyCoreChip.step` exactly — see the module
        docstring for why that makes the rows bit-identical.
        """
        new_levels = np.asarray(new_levels)
        if new_levels.shape != (self.n_runs, self.n_cores):
            raise ValueError(
                f"levels must have shape ({self.n_runs}, {self.n_cores}), "
                f"got {new_levels.shape}"
            )
        n_levels = self.n_levels
        if not np.issubdtype(new_levels.dtype, np.integer):
            # .astype(int) truncates toward zero, exactly like the serial
            # per-element int(v).
            new_levels = new_levels.astype(int)
        clamped = np.clip(new_levels, 0, n_levels - 1).astype(int)
        for r, injector in enumerate(self.faults):
            if injector is not None:
                clamped[r] = injector.effective_levels(
                    self.epoch, self.levels[r], clamped[r]
                )
        stall = self._penalty[np.abs(clamped - self.levels)]
        self.levels = clamped

        cfg = self.cfg
        dt = cfg.epoch_time
        mem = self._mem_stream[self.epoch]
        comp = self._comp_stream[self.epoch]
        freq = self._freqs[clamped] * self._hetero.freq_scale
        volt = self._volts[clamped]

        ips = instructions_per_second(cfg, freq, mem, base_cpi=self._base_cpi)
        run_fraction = np.clip(1.0 - stall / dt, 0.0, 1.0)
        instructions = ips * run_fraction * dt

        activity = activity_factor(cfg, freq, mem, comp, base_cpi=self._base_cpi)
        temps = self._temps
        dyn = (
            dynamic_power(cfg.technology, volt, freq, activity)
            * self._variation.ceff_mult
            * self._hetero.ceff_scale
        )
        leak = (
            leakage_power(cfg.technology, volt, temps)
            * self._variation.leak_mult
            * self._hetero.leak_scale
        )
        for r, injector in enumerate(self.faults):
            if injector is not None:
                dead = injector.dead_mask(self.epoch)
                if dead.any():
                    instructions[r] = np.where(dead, 0.0, instructions[r])
                    dyn[r] = np.where(dead, 0.0, dyn[r])
        power = dyn + leak

        if self.validate:
            check_level_indices(clamped, n_levels, epoch=self.epoch)
            check_power_samples(power, epoch=self.epoch)
            check_power_samples(self._temps, epoch=self.epoch, quantity="temperature_k")

        self._thermal_step(power, dt)
        self.time += dt
        # Per-run row reductions, matching the serial float(np.sum(...))
        # accumulation order bit for bit.
        for r in range(self.n_runs):
            self.total_energy[r] += float(np.sum(power[r])) * dt
            self.total_instructions[r] += float(np.sum(instructions[r]))

        sensed_power = np.maximum(power, 0.0)
        sensed_instructions = np.maximum(instructions, 0.0)
        sensed_temperature = np.maximum(self._temps, 0.0)
        for r, injector in enumerate(self.faults):
            if injector is None:
                continue
            blackout = injector.blackout_channels(self.epoch)
            if "power" in blackout:
                sensed_power[r] = 0.0
            if "perf" in blackout:
                sensed_instructions[r] = 0.0
            if "temperature" in blackout:
                sensed_temperature[r] = 0.0

        obs = BatchObservation(
            epoch=self.epoch,
            time=self.time,
            levels=clamped.copy(),
            power=power,
            instructions=instructions,
            temperature=self._temps.copy(),
            mem_intensity=mem,
            compute_intensity=comp,
            sensed_power=sensed_power,
            sensed_instructions=sensed_instructions,
            sensed_temperature=sensed_temperature,
        )
        self.epoch += 1
        return obs
