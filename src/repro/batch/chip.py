"""Batched plant: a stacking adapter over the epoch kernel.

:class:`BatchChip` *is* the array-native kernel
(:class:`repro.kernel.epoch.EpochKernel`) with the batch-backend
construction defaults: phase streams precomputed for ``n_epochs`` (the
epoch step becomes a table row lookup) and the vectorized exact-sensor
path.  The serial chip is the same kernel at ``n_runs=1`` — there is no
second epoch implementation to keep bit-identical anymore; the contract
(see ``docs/batch.md``) is enforced once, inside the kernel:

* every serial operation on an ``(n_cores,)`` vector is elementwise, so
  running it on a ``(n_runs, n_cores)`` array produces bit-identical rows;
* per-run *reductions* (chip power, DP feasibility) are taken over row
  views of C-contiguous arrays, which numpy reduces in the same pairwise
  order as the serial 1-D array;
* the non-elementwise pieces — the thermal Laplacian matvec and the
  stateful fault injector — are executed per run on row views, calling
  the exact same code paths as the serial view.

Runs in one batch may differ in power budget, workload, seed, fault
campaign, and (via the kernel's ``active`` row mask) epoch count;
everything else in the configuration (core count, VF table, epoch time,
technology) must be identical — :func:`repro.batch.simulator.plan_batches`
only groups cells satisfying this.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional, Sequence, Union

from repro.kernel.epoch import EpochKernel, KernelObservation
from repro.manycore.config import SystemConfig
from repro.manycore.hetero import HeterogeneousMap
from repro.manycore.variation import CoreVariation
from repro.workloads.phases import Workload

if TYPE_CHECKING:
    from repro.faults.campaign import FaultCampaign
    from repro.faults.injector import FaultInjector

__all__ = ["BatchObservation", "BatchChip"]

#: One elapsed epoch of every run in the batch — the kernel's observation
#: type under its historical batch-backend name.
BatchObservation = KernelObservation


class BatchChip(EpochKernel):
    """``n_runs`` independent plants advanced in lockstep.

    Parameters
    ----------
    cfgs:
        One configuration per run.  May differ **only** in ``power_budget``
        (the plant never reads the budget; controllers do).
    workloads:
        One workload per run; phase streams are precomputed for
        ``n_epochs`` so the epoch step is a table row lookup.
    n_epochs:
        Length of the run the phase streams are precomputed for.  Ragged
        stacks pass the longest run here and mask shorter rows via
        ``step(..., active=...)``.
    faults:
        Optional per-run fault campaigns (``None`` entries run fault-free).
        Each run gets its own stateful :class:`FaultInjector`, applied on
        row views — the exact serial code path.
    validate:
        Arm the per-epoch invariant contracts, as on the serial chip;
        ``None`` defers to ``REPRO_VALIDATE``.
    variations:
        Optional per-run process-variation multipliers (``None`` entries
        mean the nominal die); stacked into ``(n_runs, n_cores)`` rows by
        the kernel.
    heteros:
        Optional per-run core-type maps (``None`` entries mean all cores
        are the nominal type).
    """

    def __init__(
        self,
        cfgs: Sequence[SystemConfig],
        workloads: Sequence[Workload],
        n_epochs: int,
        faults: Optional[
            Sequence[Union["FaultCampaign", "FaultInjector", None]]
        ] = None,
        validate: Optional[bool] = None,
        variations: Optional[Sequence[Optional[CoreVariation]]] = None,
        heteros: Optional[Sequence[Optional[HeterogeneousMap]]] = None,
    ) -> None:
        if not cfgs:
            raise ValueError("BatchChip needs at least one run")
        if n_epochs <= 0:
            raise ValueError(f"n_epochs must be positive, got {n_epochs}")
        super().__init__(
            cfgs,
            workloads,
            n_epochs=n_epochs,
            faults=faults,
            validate=validate,
            variations=variations,
            heteros=heteros,
        )
