"""Batched tensor simulation backend.

Stacks N independent run cells — controller × workload × seed × budget —
into one ``(n_runs, n_cores, ...)`` tensor simulation so a single NumPy
epoch step advances every run at once, with results **bit-identical** to
the serial path (the golden-trace and ``tests/batch/`` differential
suites are the referee).  Exposed as the third execution backend beside
serial and ``jobs=`` via ``run_suite(..., batch=True)``,
``GridOptions(batch=...)`` and the CLI ``--batch`` flag; see
``docs/batch.md`` for the stacking rules and fallback semantics.
"""

from repro.batch.chip import BatchChip, BatchObservation
from repro.batch.policies import (
    BatchCompatError,
    BatchMaxBIPS,
    BatchODRL,
    BatchPolicy,
    PerRunPolicy,
    build_batch_policy,
)
from repro.batch.simulator import (
    batch_unsupported_reason,
    plan_batches,
    simulate_batch,
)

__all__ = [
    "BatchChip",
    "BatchObservation",
    "BatchCompatError",
    "BatchPolicy",
    "BatchODRL",
    "BatchMaxBIPS",
    "PerRunPolicy",
    "build_batch_policy",
    "batch_unsupported_reason",
    "plan_batches",
    "simulate_batch",
]
