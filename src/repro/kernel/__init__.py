"""The array-native epoch kernel every execution backend is a view over.

:class:`~repro.kernel.epoch.EpochKernel` owns the canonical
``(n_runs, n_cores)`` epoch step — power, thermal, phase, sensor, and
fault advance.  The serial chip (:class:`repro.manycore.chip.ManyCoreChip`)
is an ``n_runs=1`` view, worker processes (``jobs=N``) run the serial
view per cell, and the batched backend (:mod:`repro.batch`) is the
kernel plus stacking/unstacking adapters.  The batched controller
implementations live in :mod:`repro.kernel.policies` (re-exported by
``repro.batch.policies``); they are *not* imported here because they pull
in the controller layer, which imports this package's views.

The kernel's array operations route through the namespace indirection in
:mod:`repro.kernel.backend` (``numpy`` default), making a GPU (``cupy``)
target a configuration change rather than a rewrite.

The bit-identity contract — every backend produces bit-for-bit the traces
of the ``n_runs=1`` view — is pinned by ``tests/golden/`` and the
backend-conformance suite in ``tests/kernel/``, and statically checked by
the DET002 parity analyzer (see ``docs/static-analysis.md``).
"""

from repro.kernel.backend import array_namespace, set_array_namespace
from repro.kernel.epoch import EpochKernel, EpochObservation, KernelObservation

__all__ = [
    "EpochKernel",
    "EpochObservation",
    "KernelObservation",
    "array_namespace",
    "set_array_namespace",
]
