"""Array-namespace indirection for the epoch kernel.

The kernel's own array operations (``clip``, ``where``, ``maximum``, …)
are routed through a swappable namespace so a GPU target (``cupy``) is a
configuration change, not a rewrite.  NumPy is the default and the only
namespace the bit-identity contract is proven against: the golden traces
and the conformance suite pin the NumPy results, and any alternative
namespace must reproduce them bit for bit before it can become a
supported backend.

The namespace is read once per :class:`~repro.kernel.epoch.EpochKernel`
construction (kernels never switch mid-run), so swapping it affects only
kernels built afterwards.
"""

from __future__ import annotations

from typing import Any

import numpy

__all__ = ["array_namespace", "set_array_namespace"]

#: Functions the kernel calls on its namespace.  A replacement namespace
#: (e.g. ``cupy``) must provide all of them with NumPy semantics.
REQUIRED_FUNCTIONS = (
    "asarray",
    "empty",
    "empty_like",
    "zeros",
    "full",
    "abs",
    "clip",
    "where",
    "maximum",
    "ceil",
    "sum",
    "max",
    "issubdtype",
    "integer",
)

_active: Any = numpy


def array_namespace() -> Any:
    """The namespace new kernels bind at construction (``numpy`` default)."""
    return _active


def set_array_namespace(xp: Any) -> Any:
    """Install ``xp`` as the kernel array namespace; returns the previous one.

    ``xp`` must expose every name in :data:`REQUIRED_FUNCTIONS`.  Callers
    swapping namespaces temporarily should restore the returned previous
    namespace in a ``finally`` block — already-constructed kernels keep
    the namespace they were built with either way.
    """
    missing = [name for name in REQUIRED_FUNCTIONS if not hasattr(xp, name)]
    if missing:
        raise ValueError(
            f"array namespace lacks required functions: {sorted(missing)}"
        )
    global _active
    previous = _active
    _active = xp
    return previous
