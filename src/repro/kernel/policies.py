"""Batched controller policies: N runs' controllers advanced in lockstep.

Three shapes, selected by :func:`build_batch_policy`:

* :class:`BatchODRL` — all runs are stock :class:`ODRLController` instances
  with matching hyper-parameters: Q/visit tables gain a leading run axis,
  telemetry sanitization / reward / state encoding vectorize over runs, and
  the RNG-consuming action step plus the TD scatter run per run in the
  exact serial order (the RNG draw sequence per run is untouched).
* :class:`BatchMaxBIPS` — all runs are DP-method
  :class:`MaxBIPSController` instances sharing estimator tables: the
  telemetry inversion vectorizes over runs and the knapsack DP runs all
  runs per (core, level) inner step.  This is the batching that actually
  pays — MaxBIPS spends ~90 % of its wall-clock inside ``solve_dp``.
* :class:`PerRunPolicy` — anything else (including watchdog-wrapped
  drivers): the kernel plant is still shared, but each run's serial
  controller consumes its own row view of the kernel observation.
  Bit-identical by construction, since the serial ``decide`` is the one
  executing.

Ragged stacks pass the ``active`` row mask of the kernel step through
``decide``: a finished run's controller is never invoked again — its RNG
streams, counters, and learner state freeze exactly where a standalone
run of its length would leave them — while the dead rows of the stacked
arrays keep advancing harmlessly (they are never read).

Every vectorized expression here replicates its serial counterpart's
operation order element for element (see ``docs/batch.md``); per-run
reductions are row-view sums with the serial pairwise order.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.baselines.maxbips import MaxBIPSController
from repro.contracts import check_q_table
from repro.core.budget import reallocate_budget
from repro.core.controller import ODRLController
from repro.kernel.epoch import KernelObservation
from repro.sim.interface import Controller

__all__ = [
    "BatchCompatError",
    "BatchPolicy",
    "PerRunPolicy",
    "BatchODRL",
    "BatchMaxBIPS",
    "build_batch_policy",
]


def _row_active(active: Optional[np.ndarray], run: int) -> bool:
    """Whether ``run`` is live this epoch (no mask means all rows live)."""
    return active is None or bool(active[run])


class BatchCompatError(ValueError):
    """A controller group cannot be driven by a specialized batch policy."""


class BatchPolicy(ABC):
    """Decides all runs' next VF levels from one :class:`KernelObservation`."""

    #: short tag for engine events / diagnostics
    kind: str = "batch"

    def __init__(self, controllers: Sequence[Controller]) -> None:
        if not controllers:
            raise ValueError("batch policy needs at least one controller")
        self.controllers: List[Controller] = list(controllers)
        self.n_runs = len(self.controllers)
        self.n_cores = self.controllers[0].n_cores
        self.n_levels = self.controllers[0].n_levels

    @abstractmethod
    def reset(self) -> None:
        """Reset every run's controller state (start of the batch run)."""

    @abstractmethod
    def decide(
        self,
        bobs: Optional[KernelObservation],
        active: Optional[np.ndarray] = None,
    ) -> np.ndarray:
        """``(n_runs, n_cores)`` integer VF levels for the next epoch.

        ``active`` is the ragged-stack row mask: rows with ``active[r]``
        false belong to finished runs and must not advance any per-run
        controller state (RNG draws, counters, learner tables); their
        output rows are unspecified — the batch simulator freezes them.
        """

    def degradation_extras(self, run: int) -> Optional[Dict[str, int]]:
        """Run ``run``'s degradation counters, mirroring the serial
        ``result.extras["degradation"]`` gate (present only when the
        controller carries an armed sanitizer).  Watchdog-wrapped drivers
        are unwrapped first, as the serial simulator does."""
        ctrl = self.controllers[run]
        inner = getattr(ctrl, "inner", ctrl)
        sanitizer = getattr(inner, "sanitizer", None)
        if sanitizer is not None and getattr(inner, "degradation", False):
            return {
                "rejected_samples": sanitizer.rejected_samples,
                "fallback_samples": sanitizer.fallback_samples,
                "agents_repaired": getattr(inner, "agents_repaired", 0),
            }
        return None


class PerRunPolicy(BatchPolicy):
    """Generic fallback: serial controllers deciding on kernel-row views.

    Each run's controller executes its own unmodified ``decide`` on a row
    view of the kernel observation, so any controller batches (plant-side
    speedup only) and equivalence to serial is by construction.
    """

    kind = "per-run"

    def reset(self) -> None:
        for ctrl in self.controllers:
            ctrl.reset()

    def decide(
        self,
        bobs: Optional[KernelObservation],
        active: Optional[np.ndarray] = None,
    ) -> np.ndarray:
        # Zeros, not empty: finished runs' rows must still be valid level
        # indices (the simulator overwrites them with the frozen levels).
        out = np.zeros((self.n_runs, self.n_cores), dtype=int)
        for r, ctrl in enumerate(self.controllers):
            if not _row_active(active, r):
                continue
            out[r] = ctrl.decide(None if bobs is None else bobs.row(r))
        return out


class BatchODRL(BatchPolicy):
    """All runs' OD-RL controllers advanced by one vectorized decide.

    Construct via :func:`build_batch_policy`, which verifies that every
    controller is a stock :class:`ODRLController` with identical
    hyper-parameters (budgets and seeds may differ).  The per-run RNG
    streams, TD updates, counters and reallocation windows replicate the
    serial controller exactly — see the compat check for the full list of
    what must match.
    """

    kind = "od-rl"

    def __init__(self, controllers: Sequence[ODRLController]) -> None:
        super().__init__(controllers)
        c0 = controllers[0]
        self.cfg = c0.cfg
        self.encoder = c0.encoder
        self.reward_params = c0.reward_params
        self.action_mode = c0.action_mode
        self.realloc_period = c0.realloc_period
        self.degradation = c0.degradation
        self._budgets = [c.cfg.power_budget for c in controllers]
        self._deltas = c0._deltas
        self._freqs = c0._freqs
        self._instr_scale = c0._instr_scale
        self._floors = c0._floors
        self._caps = c0._caps
        agents0 = c0.agents
        self.gamma = agents0.gamma
        self.td_rule = agents0.td_rule
        self.epsilon = agents0.epsilon
        self.alpha = agents0.alpha
        self.n_actions = agents0.n_actions
        self._q_init = agents0._init
        self._agents_validate = agents0.validate
        self._agent_idx = np.arange(self.n_cores)
        self._san_policy = c0.sanitizer.policy
        self.reset()

    def reset(self) -> None:
        for ctrl in self.controllers:
            ctrl.reset()
        n_runs, n_cores = self.n_runs, self.n_cores
        # Steal the freshly reset per-run learner state; from here on the
        # stacked arrays are the single source of truth.
        self.q = np.stack(
            [c.agents.q for c in self.controllers]  # type: ignore[union-attr]
        )
        self.visits = np.stack(
            [c.agents.visits for c in self.controllers]  # type: ignore[union-attr]
        )
        self.step_counts = [0] * n_runs
        self._rngs = [
            c.agents._rng for c in self.controllers  # type: ignore[union-attr]
        ]
        self.allocation = np.stack(
            [c.allocation for c in self.controllers]  # type: ignore[attr-defined]
        )
        self.guard = [0.0] * n_runs
        self._window_ipc = np.zeros((n_runs, n_cores))
        self._window_epochs = 0
        self._window_over = [0] * n_runs
        self.agents_repaired = [0] * n_runs
        self._prev_states: Optional[np.ndarray] = None
        self._prev_actions: Optional[np.ndarray] = None
        self._prev_trusted: Optional[np.ndarray] = None
        self._san_staleness = np.zeros((n_runs, n_cores), dtype=int)
        self._san_have_good = np.zeros((n_runs, n_cores), dtype=bool)
        self._san_last_power = np.zeros((n_runs, n_cores))
        self._san_last_instr = np.zeros((n_runs, n_cores))
        self._san_last_temp = np.full(
            (n_runs, n_cores), self._san_policy.fallback_temperature_k
        )
        self.rejected_samples = [0] * n_runs
        self.fallback_samples = [0] * n_runs

    def degradation_extras(self, run: int) -> Optional[Dict[str, int]]:
        if not self.degradation:
            return None
        return {
            "rejected_samples": self.rejected_samples[run],
            "fallback_samples": self.fallback_samples[run],
            "agents_repaired": self.agents_repaired[run],
        }

    def _sanitize(
        self,
        power: np.ndarray,
        instructions: np.ndarray,
        temperature: np.ndarray,
        active: Optional[np.ndarray],
    ) -> Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
        """Batched :meth:`TelemetrySanitizer.sanitize`: every operation is
        elementwise; the counter tallies are per-run row sums.  Finished
        runs' register rows keep advancing (never read again) but their
        reported counters freeze."""
        policy = self._san_policy
        valid = (
            np.isfinite(power)
            & np.isfinite(instructions)
            & np.isfinite(temperature)
            & (power > policy.power_floor_w)
            & (instructions >= 0.0)
            & (temperature >= policy.min_temperature_k)
        )
        for r in range(self.n_runs):
            if _row_active(active, r):
                self.rejected_samples[r] += int(np.sum(~valid[r]))
        self._san_last_power = np.where(valid, power, self._san_last_power)
        self._san_last_instr = np.where(valid, instructions, self._san_last_instr)
        self._san_last_temp = np.where(valid, temperature, self._san_last_temp)
        self._san_have_good |= valid
        self._san_staleness = np.where(valid, 0, self._san_staleness + 1)
        hold = (
            ~valid
            & self._san_have_good
            & (self._san_staleness <= policy.max_staleness_epochs)
        )
        fallback = ~valid & ~hold
        for r in range(self.n_runs):
            if _row_active(active, r):
                self.fallback_samples[r] += int(np.sum(fallback[r]))
        out_power = np.where(valid, power, self._san_last_power)
        out_instr = np.where(valid, instructions, self._san_last_instr)
        out_temp = np.where(valid, temperature, self._san_last_temp)
        out_power = np.where(fallback, self.allocation, out_power)
        out_instr = np.where(fallback, 0.0, out_instr)
        out_temp = np.where(fallback, policy.fallback_temperature_k, out_temp)
        return out_power, out_instr, out_temp, valid

    def _compute_rewards(
        self, instructions: np.ndarray, power: np.ndarray
    ) -> np.ndarray:
        params = self.reward_params
        throughput_norm = instructions / self._instr_scale
        overshoot = np.maximum(0.0, (power - self.allocation) / self.allocation)
        reward = throughput_norm - params.overshoot_weight * overshoot
        if params.energy_weight > 0:
            reward = reward - params.energy_weight * (power / self.allocation)
        if params.chip_overshoot_weight > 0:
            # The chip-level term is a per-run scalar; the serial path
            # subtracts it even when zero, so the batch does too.
            for r in range(self.n_runs):
                budget = self._budgets[r]
                if budget > 0:
                    chip_over = max(
                        0.0, (float(np.sum(power[r])) - budget) / budget
                    )
                    reward[r] = reward[r] - params.chip_overshoot_weight * chip_over
        return reward

    def _repair_nonfinite(self, active: Optional[np.ndarray]) -> np.ndarray:
        bad = ~np.isfinite(self.q).all(axis=(2, 3))
        if active is not None:
            # A finished run's learner is frozen: its tables are exactly
            # what a standalone run of its length left behind, so never
            # repair (or count repairs for) inactive rows.
            bad &= active[:, None]
        if bad.any():
            self.q[bad] = self._q_init
            self.visits[bad] = 0
            for r in range(self.n_runs):
                n_bad = int(np.sum(bad[r]))
                if n_bad:
                    self.agents_repaired[r] += n_bad
        return bad

    def _act(self, states: np.ndarray, active: Optional[np.ndarray]) -> np.ndarray:
        """Epsilon-greedy per run.  The three RNG draws per epoch (tie-break
        jitter, explore coin, random action) happen per run in the serial
        order, so each run's exploration stream is bit-identical.  Finished
        runs draw nothing — their streams stay frozen."""
        # Zeros, not empty: inactive rows must stay valid action indices
        # (they index _deltas below before the simulator freezes the row).
        actions = np.zeros((self.n_runs, self.n_cores), dtype=np.int64)
        for r in range(self.n_runs):
            if not _row_active(active, r):
                continue
            rng = self._rngs[r]
            qs = self.q[r, self._agent_idx, states[r]]
            jitter = rng.random(qs.shape) * 1e-12
            greedy_actions = np.argmax(qs + jitter, axis=1)
            eps = self.epsilon(self.step_counts[r])
            explore = rng.random(self.n_cores) < eps
            random_actions = rng.integers(self.n_actions, size=self.n_cores)
            actions[r] = np.where(explore, random_actions, greedy_actions)
        return actions

    def _update(
        self,
        states: np.ndarray,
        actions: np.ndarray,
        rewards: np.ndarray,
        next_states: np.ndarray,
        next_actions: np.ndarray,
        masks: Optional[np.ndarray],
        active: Optional[np.ndarray],
    ) -> None:
        for r in range(self.n_runs):
            if not _row_active(active, r):
                continue
            q = self.q[r]
            if self.td_rule == "sarsa":
                bootstrap = q[self._agent_idx, next_states[r], next_actions[r]]
            else:
                bootstrap = np.max(q[self._agent_idx, next_states[r]], axis=1)
            idx = self._agent_idx if masks is None else self._agent_idx[masks[r]]
            if idx.size == 0:
                # Fully masked run: nothing learned, schedule clock frozen
                # (matches the serial early return).
                continue
            row_states = states[r][idx]
            row_actions = actions[r][idx]
            cell_visits = self.visits[r][idx, row_states, row_actions]
            a = self.alpha.value(cell_visits)
            target = rewards[r][idx] + self.gamma * bootstrap[idx]
            td = target - q[idx, row_states, row_actions]
            q[idx, row_states, row_actions] += a * td
            self.visits[r][idx, row_states, row_actions] += 1
            self.step_counts[r] += 1
            if self._agents_validate:
                check_q_table(
                    q[idx, row_states, row_actions], step=self.step_counts[r]
                )

    def decide(
        self,
        bobs: Optional[KernelObservation],
        active: Optional[np.ndarray] = None,
    ) -> np.ndarray:
        n_runs, n_cores = self.n_runs, self.n_cores
        if bobs is None:
            self._prev_actions = None
            return np.full((n_runs, n_cores), self.n_levels // 2, dtype=int)

        levels = bobs.levels
        if self.degradation:
            power, instructions, _temperature, trusted = self._sanitize(
                bobs.sensed_power,
                bobs.sensed_instructions,
                bobs.sensed_temperature,
                active,
            )
        else:
            power = bobs.sensed_power
            instructions = bobs.sensed_instructions
            trusted = np.ones((n_runs, n_cores), dtype=bool)
        freq = self._freqs[levels]
        cycles = freq * self.cfg.epoch_time
        ipc = instructions / np.maximum(cycles, 1.0)

        rewards = self._compute_rewards(instructions, power)

        self._window_ipc += ipc
        self._window_epochs += 1
        for r in range(n_runs):
            if not _row_active(active, r):
                continue
            if float(np.sum(power[r])) > self._budgets[r]:
                self._window_over[r] += 1
        # realloc_period is compat-equal across runs and the window counter
        # ticks every epoch for every run, so one shared scalar suffices
        # and all runs reallocate on the same epochs (as serial runs do —
        # a ragged stack's runs are prefixes of the shared epoch timeline,
        # so every active run sees the serial reallocation schedule).
        if self.realloc_period > 0 and self._window_epochs >= self.realloc_period:
            floors_total = float(np.sum(self._floors))
            for r in range(n_runs):
                if not _row_active(active, r):
                    continue
                over_rate = self._window_over[r] / self._window_epochs
                self.guard[r] = float(
                    np.clip(
                        self.guard[r]
                        + ODRLController.GUARD_GAIN
                        * (over_rate - ODRLController.GUARD_TARGET),
                        0.0,
                        ODRLController.GUARD_MAX,
                    )
                )
                distributable = (1.0 - self.guard[r]) * self._budgets[r]
                distributable = max(distributable, floors_total)
                scores = self._window_ipc[r] / self._window_epochs
                self.allocation[r] = reallocate_budget(
                    distributable, scores, self._floors, self._caps
                )
            self._window_ipc[:] = 0.0
            self._window_epochs = 0
            self._window_over = [0] * n_runs

        states = self.encoder.encode(power, self.allocation, ipc, levels)
        if self.degradation:
            repaired = self._repair_nonfinite(active)
        else:
            repaired = np.zeros((n_runs, n_cores), dtype=bool)
        actions = self._act(states, active)
        if self._prev_states is not None and self._prev_actions is not None:
            masks: Optional[np.ndarray] = None
            if self.degradation:
                prev_trusted = (
                    self._prev_trusted
                    if self._prev_trusted is not None
                    else np.ones((n_runs, n_cores), dtype=bool)
                )
                masks = trusted & prev_trusted & ~repaired
            self._update(
                self._prev_states,
                self._prev_actions,
                rewards,
                states,
                actions,
                masks,
                active,
            )
        self._prev_states = states
        self._prev_actions = actions
        self._prev_trusted = trusted
        if self.action_mode == "absolute":
            next_levels = actions
        else:
            next_levels = np.clip(
                levels + self._deltas[actions], 0, self.n_levels - 1
            )
        if repaired.any():
            next_levels = np.where(repaired, 0, next_levels)
        return next_levels


class BatchMaxBIPS(BatchPolicy):
    """All runs' MaxBIPS (DP method) decided by one batched knapsack.

    The telemetry-to-prediction inversion vectorizes over runs; the DP
    sweeps all runs together per (core, level) step via a gather-shift
    that evaluates exactly the serial ``value[w - c] + gain`` additions.
    Budgets may differ per run (each run has its own value table and
    quantum).  The policy is epoch-stateless, so ragged masking needs no
    gating — inactive rows simply compute unused (but valid) levels.
    """

    kind = "maxbips"

    def __init__(self, controllers: Sequence[MaxBIPSController]) -> None:
        super().__init__(controllers)
        c0 = controllers[0]
        self.cfg = c0.cfg
        self.n_quanta = c0.n_quanta
        estimator = c0._estimator
        self._freqs = estimator._freqs
        self._volts = estimator._volts
        self._ceff = estimator._ceff
        self._base_cpi = estimator._base_cpi
        self._leak_per_level = estimator._leak_per_level
        self._budgets = np.array([c.cfg.power_budget for c in controllers])
        self._cores = np.arange(self.n_cores)

    def reset(self) -> None:
        for ctrl in self.controllers:
            ctrl.reset()

    def decide(
        self,
        bobs: Optional[KernelObservation],
        active: Optional[np.ndarray] = None,
    ) -> np.ndarray:
        cfg = self.cfg
        n_runs, n_cores, n_levels = self.n_runs, self.n_cores, self.n_levels
        if bobs is None:
            # Cold predictions are telemetry-free, hence run-independent:
            # compute once and tile by assignment (broadcast_to would give
            # stride-0 rows whose reductions differ from serial).
            ctrl0 = self.controllers[0]
            pred = ctrl0._estimator.cold_predictions(n_cores)  # type: ignore[attr-defined]
            power3 = np.empty((n_runs, n_cores, n_levels))
            power3[:] = pred.power
            ips3 = np.empty((n_runs, n_cores, n_levels))
            ips3[:] = pred.ips
        else:
            levels = np.asarray(bobs.levels, dtype=int)
            f_cur = self._freqs[self._cores[None, :], levels]
            v_cur = self._volts[levels]
            cycles = np.maximum(f_cur * cfg.epoch_time, 1.0)
            ipc = np.clip(bobs.sensed_instructions / cycles, 1e-6, None)
            mu = np.maximum(0.0, (1.0 / ipc - self._base_cpi)) / (
                cfg.mem_latency * f_cur + 1e-30
            )
            leak_cur = self._leak_per_level[self._cores[None, :], levels]
            p_dyn = np.maximum(0.0, bobs.sensed_power - leak_cur)
            act = p_dyn / (self._ceff * v_cur**2 * f_cur)
            act = np.clip(act, cfg.activity_range[0], cfg.activity_range[1])
            f = self._freqs
            v2 = self._volts[None, :] ** 2
            power3 = act[:, :, None] * self._ceff[:, None] * v2 * f + self._leak_per_level
            ips3 = f / (self._base_cpi[:, None] + mu[:, :, None] * cfg.mem_latency * f)
        return self._solve_dp_batch(power3, ips3)

    def _solve_dp_batch(self, power3: np.ndarray, ips3: np.ndarray) -> np.ndarray:
        """Batched :func:`repro.baselines.maxbips.solve_dp`.

        Per run and weight, the serial loop keeps the *first* level
        attaining the maximum ``value[w - c] + gain`` (strict ``>``
        against the running best); evaluating all levels at once and
        reducing with first-occurrence ``argmax`` selects the same level,
        so the surviving float is the same addition's result bit for bit.
        Runs where even the all-bottom assignment overshoots return
        all-zeros before any backtracking, exactly as the serial early
        return does.
        """
        n_runs, n_cores, n_levels = power3.shape
        n_quanta = self.n_quanta
        quantum = self._budgets / n_quanta
        cost = np.minimum(
            np.ceil(power3 / quantum[:, None, None]).astype(int), n_quanta + 1
        )
        infeasible = np.zeros(n_runs, dtype=bool)
        for r in range(n_runs):
            if float(np.sum(power3[r, :, 0])) > self._budgets[r]:
                infeasible[r] = True

        neg_inf = -np.inf
        value = np.full((n_runs, n_quanta + 1), neg_inf)
        value[:, 0] = 0.0
        choice = np.zeros((n_runs, n_cores, n_quanta + 1), dtype=np.int8)
        w_idx = np.arange(n_quanta + 1)
        run_idx3 = np.arange(n_runs)[:, None, None]
        for i in range(n_cores):
            c = cost[:, i, :]
            gain = ips3[:, i, :]
            src = w_idx[None, None, :] - c[:, :, None]
            ok = (c[:, :, None] <= n_quanta) & (src >= 0)
            gathered = value[run_idx3, np.where(ok, src, 0)]
            shifted = np.where(ok, gathered + gain[:, :, None], neg_inf)
            best = np.argmax(shifted, axis=1)
            value = np.take_along_axis(shifted, best[:, None, :], axis=1)[:, 0, :]
            choice[:, i] = best.astype(np.int8)

        out = np.zeros((n_runs, n_cores), dtype=int)
        for r in range(n_runs):
            if infeasible[r]:
                continue
            w_best = int(np.argmax(value[r]))
            if not np.isfinite(value[r, w_best]):
                continue
            w = w_best
            for i in range(n_cores - 1, -1, -1):
                lvl = int(choice[r, i, w])
                out[r, i] = lvl
                w -= int(cost[r, i, lvl])
        return out


def _check_odrl_group(ctrls: List[ODRLController]) -> None:
    c0 = ctrls[0]
    for c in ctrls:
        if type(c) is not ODRLController:
            raise BatchCompatError(f"not a stock ODRLController: {type(c).__name__}")
        if c.thermal_limit is not None:
            raise BatchCompatError("thermal_limit is not batch-supported")
        if c.profiler is not None:
            raise BatchCompatError("profiled controllers do not batch")
        if getattr(c, "_pretrained", None) is not None:
            # BatchODRL.reset() restacks fresh learner state (zero step
            # counts, zero guard); a warm-started controller's restored
            # snapshot would be silently discarded.  Route to PerRunPolicy,
            # which runs the serial decide and preserves the warm start
            # bit-for-bit.
            raise BatchCompatError("pretrained (warm-start) controllers do not batch")
        if c.action_mode != c0.action_mode:
            raise BatchCompatError("action_mode differs across runs")
        if c.realloc_period != c0.realloc_period:
            raise BatchCompatError("realloc_period differs across runs")
        if c.degradation != c0.degradation:
            raise BatchCompatError("degradation flag differs across runs")
        if c.encoder != c0.encoder:
            raise BatchCompatError("state encoder differs across runs")
        if c.reward_params != c0.reward_params:
            raise BatchCompatError("reward params differ across runs")
        if c.sanitizer.policy != c0.sanitizer.policy:
            raise BatchCompatError("sanitizer policy differs across runs")
        a, a0 = c.agents, c0.agents
        if (
            a.gamma != a0.gamma
            or a.td_rule != a0.td_rule
            or a.n_states != a0.n_states
            or a.n_actions != a0.n_actions
            or a._init != a0._init
            or a.epsilon != a0.epsilon
            or a.alpha != a0.alpha
        ):
            raise BatchCompatError("agent hyper-parameters differ across runs")
        if not np.array_equal(c._floors, c0._floors) or not np.array_equal(
            c._caps, c0._caps
        ):
            raise BatchCompatError("power floors/caps differ across runs")


def _check_maxbips_group(ctrls: List[MaxBIPSController]) -> None:
    c0 = ctrls[0]
    for c in ctrls:
        if type(c) is not MaxBIPSController:
            raise BatchCompatError(f"not a stock MaxBIPSController: {type(c).__name__}")
        if c.method != "dp":
            raise BatchCompatError("only the DP method batches")
        if c.n_quanta != c0.n_quanta:
            raise BatchCompatError("n_quanta differs across runs")
        e, e0 = c._estimator, c0._estimator
        if not (
            np.array_equal(e._freqs, e0._freqs)
            and np.array_equal(e._volts, e0._volts)
            and np.array_equal(np.asarray(e._ceff), np.asarray(e0._ceff))
            and np.array_equal(np.asarray(e._base_cpi), np.asarray(e0._base_cpi))
            and np.array_equal(e._leak_per_level, e0._leak_per_level)
        ):
            raise BatchCompatError("estimator tables differ across runs")


def build_batch_policy(controllers: Sequence[Controller]) -> BatchPolicy:
    """Pick the batch policy for a controller group.

    Returns a specialized policy when every controller qualifies, else the
    generic :class:`PerRunPolicy` (which is always correct — and is how
    watchdog-wrapped drivers batch).  A compat failure is a routing
    decision, not an error — the fallback preserves bit-identity by
    running the serial controllers themselves.
    """
    ctrls = list(controllers)
    if not ctrls:
        raise ValueError("build_batch_policy needs at least one controller")
    try:
        if all(isinstance(c, ODRLController) for c in ctrls):
            odrl = [c for c in ctrls if isinstance(c, ODRLController)]
            _check_odrl_group(odrl)
            return BatchODRL(odrl)
        if all(isinstance(c, MaxBIPSController) for c in ctrls):
            mb = [c for c in ctrls if isinstance(c, MaxBIPSController)]
            _check_maxbips_group(mb)
            return BatchMaxBIPS(mb)
    except BatchCompatError:
        return PerRunPolicy(ctrls)
    return PerRunPolicy(ctrls)
