"""The canonical array-native epoch kernel.

:class:`EpochKernel` is the single implementation of the plant's epoch
step, operating on ``(n_runs, n_cores)`` state arrays.  Every execution
backend is a view over it:

* the serial chip (:class:`repro.manycore.chip.ManyCoreChip`) wraps an
  ``n_runs=1`` kernel and hands out row views;
* the batched backend (:class:`repro.batch.chip.BatchChip`) *is* the
  kernel plus a stacking constructor;
* worker processes (``jobs=N``) run the serial view per cell.

The bit-identity contract between all of them rests on three facts:

* every serial operation on an ``(n_cores,)`` vector is elementwise, so
  running it on a ``(n_runs, n_cores)`` array produces bit-identical rows;
* per-run *reductions* (chip power, DP feasibility) are taken over row
  views of C-contiguous arrays, which numpy reduces in the same pairwise
  order as the serial 1-D array;
* the non-elementwise pieces — the thermal Laplacian matvec and the
  stateful per-run components (fault injectors, sensor suites, memory
  systems) — execute per run on row views, calling the exact same code
  paths in the exact same order as an ``n_runs=1`` kernel would.

Ragged stacking: runs of different lengths share one kernel via the
``active`` row mask of :meth:`step`.  For an inactive (finished) row the
kernel still advances the stacked arrays — that state is never read
again, so the extra arithmetic is harmless — but every *stateful per-run
effect* is suppressed: fault-injector calls, sensor reads, memory-system
solves, and the energy/instruction accumulators.  Active rows therefore
see exactly the operation sequence of a shorter batch, which is what the
ragged property suite in ``tests/kernel/`` verifies against serial runs.

Array operations go through the namespace indirection in
:mod:`repro.kernel.backend` (``numpy`` by default) so a ``cupy`` target
is a follow-on, not a rewrite.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import (
    TYPE_CHECKING,
    Any,
    Dict,
    List,
    Optional,
    Sequence,
    Tuple,
    Union,
)

import numpy as np

if TYPE_CHECKING:  # runtime import is lazy: repro.faults imports the
    # sim/controller layers, which import the serial view of this kernel.
    from repro.faults.campaign import FaultCampaign
    from repro.faults.injector import FaultInjector

from repro.contracts import (
    check_level_indices,
    check_power_samples,
    validation_enabled,
)
from repro.kernel.backend import array_namespace
from repro.manycore.chip import EpochObservation
from repro.manycore.config import SystemConfig
from repro.manycore.core import activity_factor, instructions_per_second
from repro.manycore.hetero import HeterogeneousMap
from repro.manycore.memory import MemorySystem
from repro.manycore.power import dynamic_power, leakage_power
from repro.manycore.sensors import SensorSuite
from repro.manycore.thermal import ThermalModel
from repro.manycore.variation import CoreVariation
from repro.manycore.vf import transition_penalty
from repro.workloads.phases import CorePhaseSequence, Workload

__all__ = ["EpochObservation", "KernelObservation", "EpochKernel"]


@dataclass(frozen=True)
class KernelObservation:
    """One elapsed epoch of every run in the kernel stack.

    Same fields as :class:`EpochObservation`, with a leading run axis on
    every array: shape ``(n_runs, n_cores)``.  ``epoch`` and ``time`` are
    scalars — all runs in a stack share the epoch clock.  :meth:`row`
    recovers one run's :class:`EpochObservation` as views, so a serial
    controller can consume a kernel observation unchanged.
    """

    epoch: int
    time: float
    levels: np.ndarray
    power: np.ndarray
    instructions: np.ndarray
    temperature: np.ndarray
    mem_intensity: np.ndarray
    compute_intensity: np.ndarray
    sensed_power: np.ndarray
    sensed_instructions: np.ndarray
    sensed_temperature: np.ndarray

    @property
    def n_runs(self) -> int:
        return int(self.power.shape[0])

    def row(self, run: int) -> EpochObservation:
        """Run ``run``'s slice as a serial observation (row views)."""
        return EpochObservation(
            epoch=self.epoch,
            time=self.time,
            levels=self.levels[run],
            power=self.power[run],
            instructions=self.instructions[run],
            temperature=self.temperature[run],
            mem_intensity=self.mem_intensity[run],
            compute_intensity=self.compute_intensity[run],
            sensed_power=self.sensed_power[run],
            sensed_instructions=self.sensed_instructions[run],
            sensed_temperature=self.sensed_temperature[run],
        )

    def chip_power(self, run: int) -> float:
        """Total chip power of ``run`` this epoch (row-view reduction —
        bit-identical to the serial ``EpochObservation.chip_power``)."""
        return float(np.sum(self.power[run]))

    def chip_instructions(self, run: int) -> float:
        """Total instructions of ``run`` this epoch (row-view reduction)."""
        return float(np.sum(self.instructions[run]))


def _epoch_start_times(n_epochs: int, dt: float) -> np.ndarray:
    """Workload sample times per epoch, accumulated exactly as the kernel
    accumulates ``self.time`` (repeated ``+= dt``, never ``cumsum``)."""
    times = np.empty(n_epochs)
    t = 0.0
    for e in range(n_epochs):
        times[e] = t
        t += dt
    return times


def _sequence_track(
    seq: CorePhaseSequence, times: np.ndarray
) -> Tuple[np.ndarray, np.ndarray]:
    """``(mem, comp)`` per epoch for one phase sequence.

    Vectorizes ``CorePhaseSequence.phase_at``: the cumulative table is
    rebuilt with the same left-to-right float accumulation, the cyclic
    wrap uses the same ``%``, and ``np.searchsorted(side="right")`` is the
    array form of ``bisect.bisect_right`` — index-identical, so the phase
    constants picked are the very same floats the live sampler returns.
    """
    phases = seq.phases
    cumulative: List[float] = []
    total = 0.0
    for p in phases:
        total += p.duration
        cumulative.append(total)
    cum = np.asarray(cumulative)
    wrapped = times % total
    idx = np.searchsorted(cum, wrapped, side="right")
    idx = np.minimum(idx, len(phases) - 1)
    mem_vals = np.array([p.mem_intensity for p in phases])
    comp_vals = np.array([p.compute_intensity for p in phases])
    return mem_vals[idx], comp_vals[idx]


def _stack_rows(values: Sequence[Any], n_runs: int, n_cores: int) -> np.ndarray:
    """Per-run scalars or ``(n_cores,)`` vectors stacked by assignment.

    Assignment (not ``broadcast_to``) so every row is a real C-contiguous
    buffer: stride-0 rows reduce in a different pairwise order than the
    serial 1-D array, and these stacks feed row-view reductions.
    """
    out = np.empty((n_runs, n_cores))
    for r, value in enumerate(values):
        out[r] = value
    return out


def _row_active(active: Optional[np.ndarray], run: int) -> bool:
    """Whether ``run`` is live this epoch (no mask means all rows live)."""
    return active is None or bool(active[run])


class EpochKernel:
    """``n_runs`` independent plants advanced in lockstep.

    Parameters
    ----------
    cfgs:
        One configuration per run.  May differ **only** in ``power_budget``
        (the plant never reads the budget; controllers do).
    workloads:
        One workload per run.
    n_epochs:
        When given, phase streams are precomputed for ``n_epochs`` so the
        epoch step is a table row lookup (the batched backend).  ``None``
        samples each workload live per epoch (the serial view) — required
        when a ``memory_systems`` entry is present, since contention
        rescales the sampled intensities in place.
    faults:
        Optional per-run fault campaigns or pre-built injectors (``None``
        entries run fault-free).  Each run gets its own stateful
        :class:`FaultInjector`, applied on row views.
    validate:
        Arm the per-epoch invariant contracts; ``None`` defers to
        ``REPRO_VALIDATE``.  The resolved switch is the public
        ``validate`` attribute.
    sensors:
        Optional per-run :class:`SensorSuite` instances.  ``None`` (the
        whole argument) uses the vectorized exact-sensor path — identical
        readings to :meth:`SensorSuite.exact`, without per-run calls.
        Passing suites routes each run's reads through its own (possibly
        noisy, stateful) suite, timed into the ``sensor`` profiler phase.
    initial_levels:
        Per-run starting VF level; ``None`` starts every run at the top
        level (:meth:`reset` always returns to the top level, matching
        the uncontrolled state the paper's problem begins from).
    variations:
        Optional per-run process-variation multipliers (``None`` entries
        mean the nominal die).
    memory_systems:
        Optional per-run shared-memory contention models (``None``
        entries keep the uncontended constant-latency model).
    heteros:
        Optional per-run core-type maps (``None`` entries mean all cores
        are the nominal type).
    """

    def __init__(
        self,
        cfgs: Sequence[SystemConfig],
        workloads: Sequence[Workload],
        n_epochs: Optional[int] = None,
        faults: Optional[
            Sequence[Union["FaultCampaign", "FaultInjector", None]]
        ] = None,
        validate: Optional[bool] = None,
        sensors: Optional[Sequence[Optional[SensorSuite]]] = None,
        initial_levels: Optional[Sequence[int]] = None,
        variations: Optional[Sequence[Optional[CoreVariation]]] = None,
        memory_systems: Optional[Sequence[Optional[MemorySystem]]] = None,
        heteros: Optional[Sequence[Optional[HeterogeneousMap]]] = None,
    ) -> None:
        if not cfgs:
            raise ValueError("EpochKernel needs at least one run")
        if len(workloads) != len(cfgs):
            raise ValueError(f"{len(cfgs)} configs but {len(workloads)} workloads")
        if n_epochs is not None and n_epochs <= 0:
            raise ValueError(f"n_epochs must be positive, got {n_epochs}")
        cfg0 = cfgs[0]
        if not cfg0.vf_levels:
            raise ValueError("SystemConfig must carry a non-empty VF table")
        reference = cfg0.with_budget(1.0)
        for cfg in cfgs:
            if cfg.power_budget <= 0:
                raise ValueError("SystemConfig.power_budget must be set and positive")
            if cfg.with_budget(1.0) != reference:
                raise ValueError(
                    "batched runs may differ only in power_budget; got a "
                    "config differing elsewhere"
                )

        n_runs = len(cfgs)
        n_cores = cfg0.n_cores
        self.cfgs: Tuple[SystemConfig, ...] = tuple(cfgs)
        self.workloads: Tuple[Workload, ...] = tuple(workloads)
        self.cfg = cfg0  # shared plant constants (budget never read here)
        self.n_runs = n_runs
        self.n_cores = n_cores
        self.n_levels = cfg0.n_levels
        self.n_epochs = n_epochs
        self.validate = validation_enabled(validate)
        #: array namespace bound at construction (see repro.kernel.backend)
        self._xp = array_namespace()

        self.sensors = self._per_run(sensors, "sensors")
        variation_list = self._per_run(variations, "variations")
        self.variations: List[CoreVariation] = [
            v if v is not None else CoreVariation.nominal(n_cores)
            for v in variation_list
        ]
        for v in self.variations:
            if v.n_cores != n_cores:
                raise ValueError(
                    f"variation covers {v.n_cores} cores but the chip "
                    f"has {n_cores}"
                )
        hetero_list = self._per_run(heteros, "heteros")
        self.heteros: List[HeterogeneousMap] = [
            h if h is not None else HeterogeneousMap.homogeneous(n_cores)
            for h in hetero_list
        ]
        for h in self.heteros:
            if h.n_cores != n_cores:
                raise ValueError(
                    f"hetero map covers {h.n_cores} cores but the chip "
                    f"has {n_cores}"
                )
        self.memory_systems = self._per_run(memory_systems, "memory_systems")
        self._has_memory = any(ms is not None for ms in self.memory_systems)
        if self._has_memory and n_epochs is not None:
            raise ValueError(
                "memory systems need the live phase path (n_epochs=None): "
                "contention rescales the sampled intensities per epoch"
            )

        # Per-run multipliers stacked into (n_runs, n_cores) rows.  Every
        # use is elementwise, so a stacked row multiplies bit-identically
        # to the serial (n_cores,) vector it was copied from.
        self._freq_scale = _stack_rows(
            [h.freq_scale for h in self.heteros], n_runs, n_cores
        )
        self._ceff_scale = _stack_rows(
            [h.ceff_scale for h in self.heteros], n_runs, n_cores
        )
        self._leak_scale = _stack_rows(
            [h.leak_scale for h in self.heteros], n_runs, n_cores
        )
        self._ceff_mult = _stack_rows(
            [v.ceff_mult for v in self.variations], n_runs, n_cores
        )
        self._leak_mult = _stack_rows(
            [v.leak_mult for v in self.variations], n_runs, n_cores
        )
        self._base_cpi = _stack_rows(
            [cfg0.base_cpi * h.cpi_scale for h in self.heteros], n_runs, n_cores
        )
        # Re-expose each run's variation/hetero through row views of the
        # stacked planes: the serial chip read these arrays live every
        # step, so in-place edits (the contract tests corrupt multipliers
        # to provoke a violation) must keep reaching the kernel's math.
        # cpi_scale stays a construction-time constant, as it always was
        # (the serial chip precomputed base_cpi * cpi_scale too).
        self.variations = [
            CoreVariation(
                leak_mult=self._leak_mult[r], ceff_mult=self._ceff_mult[r]
            )
            for r in range(n_runs)
        ]
        rebound = []
        for r, h in enumerate(self.heteros):
            view = HeterogeneousMap(h.types)
            view.freq_scale = self._freq_scale[r]
            view.ceff_scale = self._ceff_scale[r]
            view.leak_scale = self._leak_scale[r]
            rebound.append(view)
        self.heteros = rebound

        self._freqs = np.array([f for f, _ in cfg0.vf_levels])
        self._volts = np.array([v for _, v in cfg0.vf_levels])
        # transition_penalty depends only on |new - old|; table-lookup form.
        self._penalty = np.array(
            [transition_penalty(0, d) for d in range(self.n_levels)]
        )
        # Shared Laplacian (same mesh for every run); temperature state is
        # (n_runs, n_cores) and substeps apply the matvec per run.
        thermal = ThermalModel(cfg0)
        self._laplacian = thermal._laplacian
        self._temps = np.full(
            (n_runs, n_cores), cfg0.technology.t_ambient, dtype=float
        )
        self.faults = self._build_injectors(faults)

        if n_epochs is not None:
            times = _epoch_start_times(n_epochs, cfg0.epoch_time)
            streams = self._build_phase_streams(times)
            self._mem_stream: Optional[np.ndarray] = streams[0]
            self._comp_stream: Optional[np.ndarray] = streams[1]
        else:
            self._mem_stream = None
            self._comp_stream = None

        starts = (
            initial_levels
            if initial_levels is not None
            else [self.n_levels - 1] * n_runs
        )
        if len(starts) != n_runs:
            raise ValueError(f"{n_runs} configs but {len(starts)} initial levels")
        for start in starts:
            if not (0 <= start < self.n_levels):
                raise ValueError(
                    f"initial_level {start} outside VF table of {self.n_levels}"
                )
        self.levels = np.empty((n_runs, n_cores), dtype=int)
        for r, start in enumerate(starts):
            self.levels[r] = start
        #: optional :class:`repro.obs.PhaseProfiler`; when attached (the
        #: simulator does this under ``profile=True``) the kernel times
        #: its per-run sensor reads into the ``sensor`` phase.  Write-only
        #: telemetry — nothing in the kernel reads it back.
        self.profiler: Optional[Any] = None
        self.epoch = 0
        self.time = 0.0
        self.total_energy = np.zeros(n_runs, dtype=float)
        self.total_instructions = np.zeros(n_runs, dtype=float)

    def _per_run(
        self, entries: Optional[Sequence[Any]], label: str
    ) -> List[Any]:
        """Normalize an optional per-run component list (None -> all-None)."""
        if entries is None:
            return [None] * self.n_runs
        out = list(entries)
        if len(out) != self.n_runs:
            raise ValueError(f"{self.n_runs} configs but {len(out)} {label}")
        return out

    def _build_injectors(
        self,
        faults: Optional[Sequence[Union["FaultCampaign", "FaultInjector", None]]],
    ) -> List[Optional["FaultInjector"]]:
        entries = self._per_run(faults, "fault entries")
        if all(entry is None for entry in entries):
            return entries
        # Imported here, not at module level: repro.faults pulls in the
        # simulator/controller layers, which import this kernel's views.
        from repro.faults.campaign import FaultCampaign
        from repro.faults.injector import FaultInjector

        injectors: List[Optional[FaultInjector]] = []
        for entry, cfg in zip(entries, self.cfgs):
            if entry is None:
                injectors.append(None)
                continue
            injector = (
                FaultInjector(entry) if isinstance(entry, FaultCampaign) else entry
            )
            if injector.n_cores != cfg.n_cores:
                raise ValueError(
                    f"fault campaign covers {injector.n_cores} cores but the "
                    f"chip has {cfg.n_cores}"
                )
            injectors.append(injector)
        return injectors

    def _build_phase_streams(
        self, times: np.ndarray
    ) -> Tuple[np.ndarray, np.ndarray]:
        assert self.n_epochs is not None
        mem = np.empty((self.n_epochs, self.n_runs, self.n_cores))
        comp = np.empty((self.n_epochs, self.n_runs, self.n_cores))
        tracks: Dict[int, Tuple[np.ndarray, np.ndarray]] = {}
        for r, workload in enumerate(self.workloads):
            for i in range(self.n_cores):
                seq = workload.sequence_for_core(i)
                track = tracks.get(id(seq))
                if track is None:
                    track = _sequence_track(seq, times)
                    tracks[id(seq)] = track
                mem[:, r, i] = track[0]
                comp[:, r, i] = track[1]
        return mem, comp

    def _thermal_step(self, power: np.ndarray, dt: float) -> None:
        """Forward-Euler substeps on ``(n_runs, n_cores)`` temperatures.

        Identical arithmetic to :meth:`ThermalModel.step`; the Laplacian
        matvec runs per run on contiguous row views (a batched matmul
        would use a different BLAS kernel and is *not* bit-stable against
        the serial matvec).
        """
        tech = self.cfg.technology
        tau = tech.r_thermal * tech.c_thermal
        max_h = ThermalModel._MAX_STEP_FRACTION * tau
        n_sub = max(1, int(np.ceil(dt / max_h)))
        h = dt / n_sub
        temps = self._temps
        inv_rv = 1.0 / tech.r_thermal
        inv_rl = 1.0 / tech.r_lateral
        inv_c = 1.0 / tech.c_thermal
        lat = np.empty_like(temps)
        for _ in range(n_sub):
            for r in range(self.n_runs):
                lat[r] = self._laplacian @ temps[r]
            lateral = lat * inv_rl
            dT = (power - (temps - tech.t_ambient) * inv_rv + lateral) * inv_c
            temps = temps + h * dT
        self._temps = temps

    @property
    def temperatures(self) -> np.ndarray:
        """Current ``(n_runs, n_cores)`` die temperatures."""
        return self._temps

    def reset(self) -> None:
        """Return every run to its initial state (top VF, ambient temps).

        Mirrors the serial chip's reset exactly: levels go to the *top*
        level regardless of ``initial_levels`` (the uncontrolled state),
        stateful per-run components (memory systems, fault injectors) are
        reset, and sensor suites keep their register/RNG state — the
        serial chip never reset those either.
        """
        self.levels = np.full(
            (self.n_runs, self.n_cores), self.n_levels - 1, dtype=int
        )
        self._temps = np.full(
            (self.n_runs, self.n_cores),
            self.cfg.technology.t_ambient,
            dtype=float,
        )
        for ms in self.memory_systems:
            if ms is not None:
                ms.reset()
        for injector in self.faults:
            if injector is not None:
                injector.reset()
        self.epoch = 0
        self.time = 0.0
        self.total_energy = np.zeros(self.n_runs, dtype=float)
        self.total_instructions = np.zeros(self.n_runs, dtype=float)

    def step(
        self, new_levels: np.ndarray, active: Optional[np.ndarray] = None
    ) -> KernelObservation:
        """Advance every run by one control epoch.

        Parameters
        ----------
        new_levels:
            ``(n_runs, n_cores)`` integer level indices; values outside
            the VF table are clamped (a controller bug should degrade,
            not crash, the plant — matching firmware behaviour).
        active:
            Optional ``(n_runs,)`` boolean row mask for ragged stacks.
            Inactive rows advance arithmetically (their state is dead)
            but suppress every stateful per-run effect — injector calls,
            sensor reads, memory solves, totals accumulation — so active
            rows are bit-identical to a stack without the finished runs.
        """
        xp = self._xp
        new_levels = xp.asarray(new_levels)
        if new_levels.shape != (self.n_runs, self.n_cores):
            raise ValueError(
                f"levels must have shape ({self.n_runs}, {self.n_cores}), "
                f"got {new_levels.shape}"
            )
        n_levels = self.n_levels
        if not xp.issubdtype(new_levels.dtype, xp.integer):
            # .astype(int) truncates toward zero, exactly like the serial
            # per-element int(v).
            new_levels = new_levels.astype(int)
        clamped = xp.clip(new_levels, 0, n_levels - 1).astype(int)
        for r, injector in enumerate(self.faults):
            if injector is not None and _row_active(active, r):
                # Actuator faults filter the command: dropped commands
                # leave the level unchanged, stuck actuators hold their
                # frozen level.  Applied before the stall so an unchanged
                # level pays no transition penalty.
                clamped[r] = injector.effective_levels(
                    self.epoch, self.levels[r], clamped[r]
                )
        # Stall time paid by cores that switched level this epoch.
        stall = self._penalty[xp.abs(clamped - self.levels)]
        self.levels = clamped

        cfg = self.cfg
        dt = cfg.epoch_time
        if self._mem_stream is not None and self._comp_stream is not None:
            mem = self._mem_stream[self.epoch]
            comp = self._comp_stream[self.epoch]
        else:
            mem = xp.empty((self.n_runs, self.n_cores))
            comp = xp.empty((self.n_runs, self.n_cores))
            for r, workload in enumerate(self.workloads):
                row_mem, row_comp = workload.sample(self.time, self.n_cores)
                mem[r] = row_mem
                comp[r] = row_comp
        freq = self._freqs[clamped] * self._freq_scale
        volt = self._volts[clamped]

        # Shared-memory contention inflates the effective latency everyone
        # sees; scaling mem_intensity by the multiplier is equivalent to
        # scaling the latency in the CPI model.
        if self._has_memory:
            for r, ms in enumerate(self.memory_systems):
                if ms is not None and _row_active(active, r):
                    multiplier = ms.solve_latency_multiplier(
                        self.cfgs[r], freq[r], mem[r]
                    )
                    mem[r] = mem[r] * multiplier

        # Throughput: IPS while running, times the fraction of the epoch
        # not lost to the VF transition.
        ips = instructions_per_second(cfg, freq, mem, base_cpi=self._base_cpi)
        run_fraction = xp.clip(1.0 - stall / dt, 0.0, 1.0)
        instructions = ips * run_fraction * dt

        # Power: activity from the phase; temperature from the start of
        # the epoch (leakage lags by one epoch, a standard discretization).
        # Variation and core-type multipliers scale each core's components
        # in the serial order: (dyn * variation) * hetero.
        activity = activity_factor(cfg, freq, mem, comp, base_cpi=self._base_cpi)
        temps = self._temps
        dyn = (
            dynamic_power(cfg.technology, volt, freq, activity)
            * self._ceff_mult
            * self._ceff_scale
        )
        leak = (
            leakage_power(cfg.technology, volt, temps)
            * self._leak_mult
            * self._leak_scale
        )
        for r, injector in enumerate(self.faults):
            if injector is not None and _row_active(active, r):
                dead = injector.dead_mask(self.epoch)
                if dead.any():
                    # A dead core retires nothing and draws leakage only.
                    instructions[r] = xp.where(dead, 0.0, instructions[r])
                    dyn[r] = xp.where(dead, 0.0, dyn[r])
        power = dyn + leak

        if self.validate:
            check_level_indices(clamped, n_levels, epoch=self.epoch)
            check_power_samples(power, epoch=self.epoch)
            check_power_samples(
                self._temps, epoch=self.epoch, quantity="temperature_k"
            )

        self._thermal_step(power, dt)
        self.time += dt
        # Per-run row reductions, matching the serial float(np.sum(...))
        # accumulation order bit for bit.
        for r in range(self.n_runs):
            if _row_active(active, r):
                self.total_energy[r] += float(xp.sum(power[r])) * dt
                self.total_instructions[r] += float(xp.sum(instructions[r]))

        blackouts: List[frozenset] = []
        for r, injector in enumerate(self.faults):
            if injector is not None and _row_active(active, r):
                blackouts.append(injector.blackout_channels(self.epoch))
            else:
                blackouts.append(frozenset())
        if self.sensors is None or all(s is None for s in self.sensors):
            # Vectorized exact-sensor path: identical readings to
            # SensorSuite.exact() without per-run read calls.
            sensed_power = xp.maximum(power, 0.0)
            sensed_instructions = xp.maximum(instructions, 0.0)
            sensed_temperature = xp.maximum(self._temps, 0.0)
            for r, blackout in enumerate(blackouts):
                if "power" in blackout:
                    sensed_power[r] = 0.0
                if "perf" in blackout:
                    sensed_instructions[r] = 0.0
                if "temperature" in blackout:
                    sensed_temperature[r] = 0.0
        else:
            profiler = self.profiler
            t_sense = time.perf_counter() if profiler is not None else 0.0
            sensed_power = xp.empty_like(power)
            sensed_instructions = xp.empty_like(instructions)
            sensed_temperature = xp.empty_like(self._temps)
            for r, suite in enumerate(self.sensors):
                if suite is None or not _row_active(active, r):
                    # Finished runs read nothing: stateful (noisy) suites
                    # must not advance their RNG streams.
                    sensed_power[r] = 0.0
                    sensed_instructions[r] = 0.0
                    sensed_temperature[r] = 0.0
                    continue
                blackout = blackouts[r]
                sensed_power[r] = suite.power.read(
                    power[r], blackout="power" in blackout
                )
                sensed_instructions[r] = suite.perf.read(
                    instructions[r], blackout="perf" in blackout
                )
                sensed_temperature[r] = suite.temperature.read(
                    self._temps[r], blackout="temperature" in blackout
                )
            if profiler is not None:
                profiler.add("sensor", time.perf_counter() - t_sense)

        obs = KernelObservation(
            epoch=self.epoch,
            time=self.time,
            levels=clamped.copy(),
            power=power,
            instructions=instructions,
            temperature=self._temps.copy(),
            mem_intensity=mem,
            compute_intensity=comp,
            sensed_power=sensed_power,
            sensed_instructions=sensed_instructions,
            sensed_temperature=sensed_temperature,
        )
        self.epoch += 1
        return obs
