"""Runtime invariant contracts for the OD-RL control loop.

A silently negative power sample, a budget reallocation that loses watts,
or a NaN creeping into a Q-table would corrupt every E1–E14 result
without failing a single unit test.  This module provides cheap,
vectorized validators for the physical and numerical invariants the
simulator relies on, and a single switch to arm them:

* set the environment variable ``REPRO_VALIDATE=1``, or
* pass ``validate=True`` to :func:`repro.sim.simulator.simulate`,
  :class:`repro.manycore.chip.ManyCoreChip`,
  :class:`repro.core.agent.QLearningPopulation` or
  :func:`repro.core.budget.reallocate_budget`.

Each validator raises :class:`InvariantViolation` naming the epoch, the
offending core (or agent), and the quantity, so a corrupted run dies at
the first bad number instead of producing a plausible-looking plot.
Overhead with validation off is a single ``if``; measured overhead with
validation on is documented in ``docs/correctness.md``.
"""

from __future__ import annotations

import os
from typing import Optional

import numpy as np

__all__ = [
    "InvariantViolation",
    "validation_enabled",
    "check_power_samples",
    "check_budget_conservation",
    "check_level_indices",
    "check_observation_sane",
    "check_q_table",
    "check_time_monotone",
]

_TRUTHY = frozenset({"1", "true", "yes", "on"})


class InvariantViolation(AssertionError):
    """A runtime physical/numerical invariant was broken.

    Attributes
    ----------
    quantity:
        Short name of the violated quantity (e.g. ``"power_w"``).
    epoch:
        Control epoch at which the violation was detected, when known.
    core:
        Offending core/agent index, when the check is per-core.
    """

    def __init__(
        self,
        quantity: str,
        message: str,
        epoch: Optional[int] = None,
        core: Optional[int] = None,
    ) -> None:
        self.quantity = quantity
        self.epoch = epoch
        self.core = core
        where = []
        if epoch is not None:
            where.append(f"epoch {epoch}")
        if core is not None:
            where.append(f"core {core}")
        prefix = f"[{', '.join(where)}] " if where else ""
        super().__init__(f"{prefix}{quantity}: {message}")


def validation_enabled(override: Optional[bool] = None) -> bool:
    """Resolve the validation switch.

    ``override`` (a ``validate=`` kwarg) wins when not ``None``; otherwise
    the ``REPRO_VALIDATE`` environment variable decides (``1``/``true``/
    ``yes``/``on``, case-insensitive, arm it).
    """
    if override is not None:
        return override
    return os.environ.get("REPRO_VALIDATE", "").strip().lower() in _TRUTHY


def _first_bad_index(bad: np.ndarray) -> Optional[int]:
    idx = np.flatnonzero(bad)
    return int(idx[0]) if idx.size else None


def check_power_samples(
    power_w: np.ndarray, epoch: Optional[int] = None, quantity: str = "power_w"
) -> None:
    """Power samples must be finite and non-negative (watts)."""
    power_w = np.asarray(power_w)
    finite = np.isfinite(power_w)
    if not finite.all():
        core = _first_bad_index(~finite)
        value = power_w.reshape(-1)[core] if core is not None else float("nan")
        raise InvariantViolation(
            quantity, f"non-finite sample {value!r}", epoch=epoch, core=core
        )
    negative = power_w < 0
    if negative.any():
        core = _first_bad_index(negative)
        value = power_w.reshape(-1)[core] if core is not None else float("nan")
        raise InvariantViolation(
            quantity, f"negative sample {value:.6g} W", epoch=epoch, core=core
        )


def check_budget_conservation(
    allocation_w: np.ndarray,
    expected_total_w: float,
    floors_w: Optional[np.ndarray] = None,
    caps_w: Optional[np.ndarray] = None,
    epoch: Optional[int] = None,
    rtol: float = 1e-6,
    atol: float = 1e-6,
) -> None:
    """A budget split must conserve watts and respect per-core bounds.

    ``allocation_w`` must sum to ``expected_total_w`` within tolerance —
    a reallocation step that loses (or mints) watts corrupts every
    downstream compliance number — and, when given, stay inside
    ``[floors_w, caps_w]`` elementwise.
    """
    allocation_w = np.asarray(allocation_w, dtype=float)
    check_power_samples(allocation_w, epoch=epoch, quantity="budget_share_w")
    total = float(np.sum(allocation_w))
    if not np.isclose(total, expected_total_w, rtol=rtol, atol=atol):
        raise InvariantViolation(
            "budget_total_w",
            f"allocation sums to {total:.9g} W, expected "
            f"{expected_total_w:.9g} W (watts not conserved)",
            epoch=epoch,
        )
    if floors_w is not None:
        below = allocation_w < np.asarray(floors_w, dtype=float) - atol
        if below.any():
            core = _first_bad_index(below)
            raise InvariantViolation(
                "budget_share_w",
                f"share {allocation_w[core]:.6g} W below its floor",
                epoch=epoch,
                core=core,
            )
    if caps_w is not None:
        above = allocation_w > np.asarray(caps_w, dtype=float) + atol
        if above.any():
            core = _first_bad_index(above)
            raise InvariantViolation(
                "budget_share_w",
                f"share {allocation_w[core]:.6g} W above its cap",
                epoch=epoch,
                core=core,
            )


def check_level_indices(
    levels: np.ndarray, n_levels: int, epoch: Optional[int] = None
) -> None:
    """VF level indices must be integral and inside the VF table."""
    levels = np.asarray(levels)
    if not np.issubdtype(levels.dtype, np.integer):
        raise InvariantViolation(
            "vf_level",
            f"level indices must be integers, got dtype {levels.dtype}",
            epoch=epoch,
        )
    bad = (levels < 0) | (levels >= n_levels)
    if bad.any():
        core = _first_bad_index(bad)
        raise InvariantViolation(
            "vf_level",
            f"index {int(levels.reshape(-1)[core])} outside VF table "
            f"[0, {n_levels})",
            epoch=epoch,
            core=core,
        )


def check_q_table(
    q: np.ndarray, step: Optional[int] = None, quantity: str = "q_table"
) -> None:
    """Q-values must stay finite after every TD update.

    A NaN or inf in one cell spreads through the max/bootstrap term to the
    whole table within a few epochs; fail at the first one.  ``step`` is
    reported in the epoch slot of the violation.
    """
    finite = np.isfinite(q)
    if not finite.all():
        flat = _first_bad_index(~np.asarray(finite).reshape(-1))
        agent = None
        if flat is not None and q.ndim >= 1 and q.size:
            agent = int(flat // int(np.prod(q.shape[1:], dtype=int) or 1))
        raise InvariantViolation(
            quantity,
            "non-finite Q-value after TD update",
            epoch=step,
            core=agent,
        )


def check_observation_sane(
    sensed_power_w: np.ndarray,
    sensed_instructions: np.ndarray,
    sensed_temperature_k: np.ndarray,
    levels: np.ndarray,
    n_levels: int,
    epoch: Optional[int] = None,
) -> None:
    """The telemetry handed to a controller must be physically plausible.

    Sensed power must be finite and non-negative (a dropout legitimately
    reads zero — that is a *valid* faulty reading, handled by the telemetry
    sanitizer, not an invariant violation); sensed instruction counts must
    be finite and non-negative; sensed temperatures must be finite (a
    blacked-out diode reads zero kelvin, again finite); and the applied VF
    levels must index the VF table.  This is the gate between the plant and
    the controller: it catches simulator/injector bugs that would otherwise
    surface as mysterious learning divergence.
    """
    check_power_samples(sensed_power_w, epoch=epoch, quantity="sensed_power_w")
    instructions = np.asarray(sensed_instructions)
    bad = ~np.isfinite(instructions) | (instructions < 0)
    if bad.any():
        core = _first_bad_index(bad)
        value = instructions.reshape(-1)[core] if core is not None else None
        raise InvariantViolation(
            "sensed_instructions",
            f"implausible sample {value!r}",
            epoch=epoch,
            core=core,
        )
    temperature = np.asarray(sensed_temperature_k)
    bad = ~np.isfinite(temperature)
    if bad.any():
        core = _first_bad_index(bad)
        value = temperature.reshape(-1)[core] if core is not None else None
        raise InvariantViolation(
            "sensed_temperature_k",
            f"non-finite sample {value!r}",
            epoch=epoch,
            core=core,
        )
    check_level_indices(levels, n_levels, epoch=epoch)


def check_time_monotone(
    t_prev_s: float, t_now_s: float, epoch: Optional[int] = None
) -> None:
    """Epoch timestamps must strictly increase (seconds)."""
    if not np.isfinite(t_now_s) or t_now_s <= t_prev_s:
        raise InvariantViolation(
            "time_s",
            f"timestamp {t_now_s!r} does not advance past {t_prev_s!r}",
            epoch=epoch,
        )
