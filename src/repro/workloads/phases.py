"""Workload phase abstractions.

A workload is described the way a trace-driven DVFS study sees it: each core
executes a sequence of *phases*, and within a phase the core's memory
intensity (long-latency accesses per instruction) and compute intensity
(datapath utilisation) are stationary.  Real SPLASH-2/PARSEC applications
exhibit exactly this phase structure, which is what the per-core RL agent
learns to exploit.

Phase sequences are cyclic: a simulation longer than the trace wraps around,
the same convention trace-driven simulators use.
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass
from typing import List, Sequence, Tuple

import numpy as np

__all__ = ["Phase", "CorePhaseSequence", "Workload"]


@dataclass(frozen=True)
class Phase:
    """A stationary interval of core behaviour.

    Attributes
    ----------
    duration:
        Phase length in seconds.
    mem_intensity:
        Long-latency memory accesses per instruction (typical range
        0 — compute bound — up to ~0.03 for streaming memory-bound code).
    compute_intensity:
        Datapath utilisation in [0, 1]; drives switching activity.
    """

    duration: float
    mem_intensity: float
    compute_intensity: float

    def __post_init__(self) -> None:
        if self.duration <= 0:
            raise ValueError(f"duration must be positive, got {self.duration}")
        if self.mem_intensity < 0:
            raise ValueError(f"mem_intensity must be >= 0, got {self.mem_intensity}")
        if not (0.0 <= self.compute_intensity <= 1.0):
            raise ValueError(
                f"compute_intensity must be in [0, 1], got {self.compute_intensity}"
            )


class CorePhaseSequence:
    """Cyclic sequence of phases executed by one core.

    Lookup by absolute time is O(log n) via a precomputed cumulative-duration
    table.
    """

    def __init__(self, phases: Sequence[Phase]) -> None:
        if not phases:
            raise ValueError("a core phase sequence needs at least one phase")
        self._phases: Tuple[Phase, ...] = tuple(phases)
        cumulative = []
        total = 0.0
        for p in self._phases:
            total += p.duration
            cumulative.append(total)
        self._cumulative = cumulative
        self._total = total

    @property
    def phases(self) -> Tuple[Phase, ...]:
        return self._phases

    @property
    def total_duration(self) -> float:
        """Length of one pass through the sequence, in seconds."""
        return self._total

    def phase_at(self, t: float) -> Phase:
        """The phase active at absolute time ``t`` (cyclic)."""
        if t < 0:
            raise ValueError(f"time must be >= 0, got {t}")
        t = t % self._total
        idx = bisect.bisect_right(self._cumulative, t)
        if idx >= len(self._phases):  # numerical edge at exact wrap point
            idx = len(self._phases) - 1
        return self._phases[idx]

    def __len__(self) -> int:
        return len(self._phases)


class Workload:
    """A set of per-core phase sequences for an N-core chip.

    If fewer sequences than cores are provided the sequences are tiled
    round-robin — the convention for running a P-thread benchmark on more
    cores than threads.
    """

    def __init__(self, sequences: Sequence[CorePhaseSequence], name: str = "workload") -> None:
        if not sequences:
            raise ValueError("workload needs at least one core phase sequence")
        self._sequences: Tuple[CorePhaseSequence, ...] = tuple(sequences)
        self.name = name

    @property
    def sequences(self) -> Tuple[CorePhaseSequence, ...]:
        return self._sequences

    def sequence_for_core(self, core: int) -> CorePhaseSequence:
        """Phase sequence assigned to ``core`` (round-robin tiled)."""
        if core < 0:
            raise ValueError(f"core index must be >= 0, got {core}")
        return self._sequences[core % len(self._sequences)]

    def sample(self, t: float, n_cores: int) -> Tuple[np.ndarray, np.ndarray]:
        """Per-core ``(mem_intensity, compute_intensity)`` arrays at time ``t``."""
        if n_cores <= 0:
            raise ValueError(f"n_cores must be positive, got {n_cores}")
        mem = np.empty(n_cores)
        comp = np.empty(n_cores)
        for i in range(n_cores):
            phase = self.sequence_for_core(i).phase_at(t)
            mem[i] = phase.mem_intensity
            comp[i] = phase.compute_intensity
        return mem, comp

    def __len__(self) -> int:
        return len(self._sequences)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Workload(name={self.name!r}, sequences={len(self._sequences)})"
