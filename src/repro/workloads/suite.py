"""Named benchmark suite.

Each entry is a synthetic stand-in for a SPLASH-2 / PARSEC application,
parameterized to reproduce that application's published memory-boundedness
and phase behaviour.  The names are kept so experiment tables read like the
paper's.

Use :func:`make_benchmark` for one workload or :func:`benchmark_names` to
iterate the suite in experiments.
"""

from __future__ import annotations

from typing import Callable, Dict, List

import numpy as np

from repro.workloads.phases import CorePhaseSequence, Workload
from repro.workloads import synthetic as syn

__all__ = ["benchmark_names", "make_benchmark", "make_suite", "mixed_workload"]

_SequenceFactory = Callable[[np.random.Generator], CorePhaseSequence]

# name -> factory producing one core's phase sequence.  Parameters follow the
# qualitative characterization of each application in the DVFS literature.
_BENCHMARKS: Dict[str, _SequenceFactory] = {
    # SPLASH-2
    "barnes": lambda rng: syn.compute_bound_sequence(rng, n_phases=6, mean_duration=0.025),
    "fmm": lambda rng: syn.compute_bound_sequence(rng, n_phases=8, mean_duration=0.02),
    "ocean": lambda rng: syn.memory_bound_sequence(rng, n_phases=8, mean_duration=0.02),
    "radix": lambda rng: syn.phased_sequence(rng, n_cycles=5, compute_duration=0.02, memory_duration=0.02),
    "fft": lambda rng: syn.phased_sequence(rng, n_cycles=4, compute_duration=0.03, memory_duration=0.012),
    "lu": lambda rng: syn.phased_sequence(rng, n_cycles=6, compute_duration=0.035, memory_duration=0.008),
    # PARSEC
    "blackscholes": lambda rng: syn.compute_bound_sequence(rng, n_phases=4, mean_duration=0.04),
    "swaptions": lambda rng: syn.compute_bound_sequence(rng, n_phases=5, mean_duration=0.03),
    "canneal": lambda rng: syn.memory_bound_sequence(rng, n_phases=10, mean_duration=0.012),
    "streamcluster": lambda rng: syn.memory_bound_sequence(rng, n_phases=6, mean_duration=0.03),
    "fluidanimate": lambda rng: syn.bursty_sequence(rng, n_phases=14, mean_duration=0.007),
    "x264": lambda rng: syn.bursty_sequence(rng, n_phases=16, mean_duration=0.006),
    # Adversarial filler
    "randmix": lambda rng: syn.random_mix_sequence(rng, n_phases=10, mean_duration=0.015),
}


def benchmark_names() -> List[str]:
    """All benchmark names, in the canonical reporting order."""
    return list(_BENCHMARKS)


def make_benchmark(name: str, n_cores: int, seed: int = 0) -> Workload:
    """Build the named benchmark for an ``n_cores`` chip.

    Every core gets its own independently-sampled phase sequence from the
    benchmark's generator (threads of the same application behave similarly
    but not identically), with phase offsets decorrelated by the per-core
    RNG streams.

    Raises
    ------
    KeyError
        If ``name`` is not in the suite.
    """
    if name not in _BENCHMARKS:
        raise KeyError(
            f"unknown benchmark {name!r}; available: {', '.join(_BENCHMARKS)}"
        )
    if n_cores <= 0:
        raise ValueError(f"n_cores must be positive, got {n_cores}")
    factory = _BENCHMARKS[name]
    root = np.random.default_rng(seed)
    sequences = [factory(np.random.default_rng(root.integers(2**63))) for _ in range(n_cores)]
    return Workload(sequences, name=name)


def make_suite(n_cores: int, seed: int = 0) -> Dict[str, Workload]:
    """Build the whole suite, one workload per benchmark name."""
    return {
        name: make_benchmark(name, n_cores, seed=seed + i)
        for i, name in enumerate(_BENCHMARKS)
    }


def mixed_workload(n_cores: int, seed: int = 0) -> Workload:
    """Heterogeneous multiprogrammed mix: cores draw round-robin from all
    benchmark generators.  This is the stress case for global budget
    reallocation — compute-bound and memory-bound cores coexist, so moving
    watts between them has first-order payoff."""
    if n_cores <= 0:
        raise ValueError(f"n_cores must be positive, got {n_cores}")
    root = np.random.default_rng(seed)
    factories = list(_BENCHMARKS.values())
    sequences = [
        factories[i % len(factories)](np.random.default_rng(root.integers(2**63)))
        for i in range(n_cores)
    ]
    return Workload(sequences, name="mixed")
