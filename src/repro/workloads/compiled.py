"""Precompiled workload sampling for large sweeps.

``Workload.sample`` walks each core's phase list through a bisection per
core per epoch — fine at 64 cores, but the Python-loop cost dominates
simulations of hundreds of cores over thousands of epochs.
:class:`CompiledWorkload` trades memory for speed: it evaluates the phase
parameters for every (epoch, core) pair *once*, on a fixed epoch grid, and
serves samples with a single array lookup.

A compiled workload is exact (not an approximation) as long as it is
sampled on the epoch grid it was compiled for: the chip samples workloads
at ``t = k * epoch_time``, which is exactly the compiled grid.  Off-grid
times fall back to the underlying workload.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from repro.workloads.phases import Workload

__all__ = ["CompiledWorkload"]


class CompiledWorkload(Workload):
    """A workload with its phase parameters pre-evaluated on an epoch grid.

    Parameters
    ----------
    workload:
        The source workload.
    epoch_time:
        Grid spacing in seconds (the simulation's control epoch).
    n_epochs:
        Number of grid points; sampling wraps cyclically past the horizon,
        consistent with the underlying cyclic phase sequences only when the
        horizon covers a whole number of cycles — so off-horizon times also
        fall back to exact evaluation.
    n_cores:
        Chip width the table is compiled for.
    """

    def __init__(
        self,
        workload: Workload,
        epoch_time: float,
        n_epochs: int,
        n_cores: int,
    ) -> None:
        if epoch_time <= 0:
            raise ValueError(f"epoch_time must be positive, got {epoch_time}")
        if n_epochs <= 0:
            raise ValueError(f"n_epochs must be positive, got {n_epochs}")
        if n_cores <= 0:
            raise ValueError(f"n_cores must be positive, got {n_cores}")
        super().__init__(workload.sequences, name=workload.name)
        self._source = workload
        self._epoch_time = epoch_time
        self._n_epochs = n_epochs
        self._n_cores = n_cores
        mem = np.empty((n_epochs, n_cores))
        comp = np.empty((n_epochs, n_cores))
        for e in range(n_epochs):
            m, c = workload.sample(e * epoch_time, n_cores)
            mem[e] = m
            comp[e] = c
        self._mem = mem
        self._comp = comp

    @property
    def horizon(self) -> float:
        """Length of the compiled grid in seconds."""
        return self._n_epochs * self._epoch_time

    def sample(self, t: float, n_cores: int) -> Tuple[np.ndarray, np.ndarray]:
        """Grid-aligned lookups are O(1); everything else falls back to the
        exact (slow) evaluation on the source workload."""
        if n_cores != self._n_cores or t < 0 or t >= self.horizon:
            return self._source.sample(t, n_cores)
        index = t / self._epoch_time
        rounded = int(round(index))
        if abs(index - rounded) > 1e-9 or rounded >= self._n_epochs:
            return self._source.sample(t, n_cores)
        return self._mem[rounded].copy(), self._comp[rounded].copy()
