"""Workload substrate: phase traces, synthetic generators, named suite."""

from repro.workloads.compiled import CompiledWorkload
from repro.workloads.phases import CorePhaseSequence, Phase, Workload
from repro.workloads.profile import (
    WorkloadProfile,
    characterize,
    generate_from_profile,
)
from repro.workloads.suite import (
    benchmark_names,
    make_benchmark,
    make_suite,
    mixed_workload,
)
from repro.workloads.synthetic import (
    bursty_sequence,
    compute_bound_sequence,
    memory_bound_sequence,
    phased_sequence,
    random_mix_sequence,
)
from repro.workloads.trace_io import (
    load_workload,
    save_workload,
    workload_from_dict,
    workload_to_dict,
)

__all__ = [
    "CompiledWorkload",
    "CorePhaseSequence",
    "WorkloadProfile",
    "characterize",
    "generate_from_profile",
    "Phase",
    "Workload",
    "benchmark_names",
    "make_benchmark",
    "make_suite",
    "mixed_workload",
    "bursty_sequence",
    "compute_bound_sequence",
    "memory_bound_sequence",
    "phased_sequence",
    "random_mix_sequence",
    "load_workload",
    "save_workload",
    "workload_from_dict",
    "workload_to_dict",
]
