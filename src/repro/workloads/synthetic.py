"""Synthetic phase-trace generators.

Since the original SPLASH-2/PARSEC traces are not redistributable, workloads
are generated synthetically with the phase statistics that matter to a DVFS
controller: the level of memory intensity, how strongly it varies over time,
and on what timescale.  Every generator takes a ``numpy.random.Generator``
so traces are exactly reproducible from a seed.

Memory-intensity scale: values are long-latency accesses per instruction.
``0.0`` is pure compute; ``0.02`` at 2.4 GHz and 80 ns memory latency means
~3.8 stall cycles per instruction — heavily memory bound.
"""

from __future__ import annotations

from typing import List

import numpy as np

from repro.workloads.phases import CorePhaseSequence, Phase

__all__ = [
    "compute_bound_sequence",
    "memory_bound_sequence",
    "phased_sequence",
    "bursty_sequence",
    "random_mix_sequence",
]

# Bounds for sampled phase parameters.
_MEM_MAX = 0.03
_MIN_PHASE = 1e-3  # seconds; at the default 1 ms epoch a phase spans >= 1 epoch


def _clip_mem(x: float) -> float:
    return float(np.clip(x, 0.0, _MEM_MAX))


def _clip_comp(x: float) -> float:
    return float(np.clip(x, 0.05, 1.0))


def compute_bound_sequence(
    rng: np.random.Generator,
    n_phases: int = 8,
    mean_duration: float = 0.02,
) -> CorePhaseSequence:
    """CPU-bound behaviour: negligible memory stalls, high activity.

    Models benchmarks like *swaptions* or *blackscholes* — frequency buys
    nearly linear throughput, so these cores are where budget should flow.
    ``mean_duration`` is the mean phase length in seconds.
    """
    phases = _sample_phases(
        rng,
        n_phases,
        mean_duration,
        mem_mean=0.0005,
        mem_spread=0.0005,
        comp_mean=0.9,
        comp_spread=0.08,
    )
    return CorePhaseSequence(phases)


def memory_bound_sequence(
    rng: np.random.Generator,
    n_phases: int = 8,
    mean_duration: float = 0.02,
) -> CorePhaseSequence:
    """Streaming, memory-bound behaviour (e.g. *ocean*, *canneal*).

    Throughput saturates early with frequency; high VF levels waste power.
    ``mean_duration`` is the mean phase length in seconds.
    """
    phases = _sample_phases(
        rng,
        n_phases,
        mean_duration,
        mem_mean=0.018,
        mem_spread=0.005,
        comp_mean=0.45,
        comp_spread=0.1,
    )
    return CorePhaseSequence(phases)


def phased_sequence(
    rng: np.random.Generator,
    n_cycles: int = 4,
    compute_duration: float = 0.03,
    memory_duration: float = 0.015,
) -> CorePhaseSequence:
    """Alternating compute/memory program phases (e.g. *fft*, *radix* with
    their local-sort then all-to-all structure).

    This is the pattern that separates learning controllers from static
    ones: the right VF level flips between extremes on a regular cadence.
    ``compute_duration`` and ``memory_duration`` are the nominal phase
    lengths in seconds.
    """
    if n_cycles < 1:
        raise ValueError(f"n_cycles must be >= 1, got {n_cycles}")
    phases: List[Phase] = []
    for _ in range(n_cycles):
        phases.append(
            Phase(
                duration=max(_MIN_PHASE, compute_duration * rng.uniform(0.8, 1.2)),
                mem_intensity=_clip_mem(rng.normal(0.001, 0.0005)),
                compute_intensity=_clip_comp(rng.normal(0.85, 0.05)),
            )
        )
        phases.append(
            Phase(
                duration=max(_MIN_PHASE, memory_duration * rng.uniform(0.8, 1.2)),
                mem_intensity=_clip_mem(rng.normal(0.02, 0.003)),
                compute_intensity=_clip_comp(rng.normal(0.4, 0.05)),
            )
        )
    return CorePhaseSequence(phases)


def bursty_sequence(
    rng: np.random.Generator,
    n_phases: int = 12,
    mean_duration: float = 0.008,
) -> CorePhaseSequence:
    """Short, erratic phases with heavy-tailed durations (e.g. *x264*,
    graph workloads).  Stresses controller reaction time.
    ``mean_duration`` is the mean phase length in seconds."""
    if n_phases < 1:
        raise ValueError(f"n_phases must be >= 1, got {n_phases}")
    phases: List[Phase] = []
    for _ in range(n_phases):
        # Pareto-ish duration: mostly short, occasionally long.
        dur = max(_MIN_PHASE, mean_duration * float(rng.pareto(2.0) + 0.5))
        if rng.random() < 0.5:
            mem, comp = rng.normal(0.002, 0.001), rng.normal(0.8, 0.1)
        else:
            mem, comp = rng.normal(0.015, 0.006), rng.normal(0.5, 0.15)
        phases.append(Phase(dur, _clip_mem(mem), _clip_comp(comp)))
    return CorePhaseSequence(phases)


def random_mix_sequence(
    rng: np.random.Generator,
    n_phases: int = 10,
    mean_duration: float = 0.015,
) -> CorePhaseSequence:
    """Uniformly random behaviour over the whole parameter space — the
    adversarial case with no structure to learn beyond slack tracking.
    ``mean_duration`` is the mean phase length in seconds."""
    phases = _sample_phases(
        rng,
        n_phases,
        mean_duration,
        mem_mean=0.01,
        mem_spread=0.009,
        comp_mean=0.6,
        comp_spread=0.25,
    )
    return CorePhaseSequence(phases)


def _sample_phases(
    rng: np.random.Generator,
    n_phases: int,
    mean_duration: float,
    mem_mean: float,
    mem_spread: float,
    comp_mean: float,
    comp_spread: float,
) -> List[Phase]:
    if n_phases < 1:
        raise ValueError(f"n_phases must be >= 1, got {n_phases}")
    if mean_duration <= 0:
        raise ValueError(f"mean_duration must be positive, got {mean_duration}")
    phases = []
    for _ in range(n_phases):
        dur = max(_MIN_PHASE, float(rng.exponential(mean_duration)))
        mem = _clip_mem(float(rng.normal(mem_mean, mem_spread)))
        comp = _clip_comp(float(rng.normal(comp_mean, comp_spread)))
        phases.append(Phase(dur, mem, comp))
    return phases
