"""Workload trace serialization.

Traces round-trip through a small JSON schema so experiments can be frozen
to disk and replayed exactly (e.g. to compare controllers on the literal
same trace, or to inspect a pathological case).

Schema::

    {
      "name": "ocean",
      "version": 1,
      "cores": [
        [[duration, mem_intensity, compute_intensity], ...],   # core 0
        ...
      ]
    }
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Union

from repro.workloads.phases import CorePhaseSequence, Phase, Workload

__all__ = ["workload_to_dict", "workload_from_dict", "save_workload", "load_workload"]

_SCHEMA_VERSION = 1


def workload_to_dict(workload: Workload) -> dict:
    """Serialize a workload to the JSON-compatible dict form."""
    return {
        "name": workload.name,
        "version": _SCHEMA_VERSION,
        "cores": [
            [[p.duration, p.mem_intensity, p.compute_intensity] for p in seq.phases]
            for seq in workload.sequences
        ],
    }


def workload_from_dict(data: dict) -> Workload:
    """Reconstruct a workload from its dict form.

    Raises
    ------
    ValueError
        On schema-version mismatch or structurally invalid payloads.
    """
    version = data.get("version")
    if version != _SCHEMA_VERSION:
        raise ValueError(
            f"unsupported trace schema version {version!r}; expected {_SCHEMA_VERSION}"
        )
    cores = data.get("cores")
    if not isinstance(cores, list) or not cores:
        raise ValueError("trace must contain a non-empty 'cores' list")
    sequences = []
    for core_idx, phase_list in enumerate(cores):
        if not isinstance(phase_list, list) or not phase_list:
            raise ValueError(f"core {core_idx} has no phases")
        phases = []
        for entry in phase_list:
            if not isinstance(entry, (list, tuple)) or len(entry) != 3:
                raise ValueError(
                    f"core {core_idx}: each phase must be [duration, mem, compute], got {entry!r}"
                )
            phases.append(Phase(*map(float, entry)))
        sequences.append(CorePhaseSequence(phases))
    return Workload(sequences, name=str(data.get("name", "workload")))


def save_workload(workload: Workload, path: Union[str, Path]) -> None:
    """Write a workload trace to ``path`` as JSON."""
    path = Path(path)
    with path.open("w") as f:
        json.dump(workload_to_dict(workload), f)


def load_workload(path: Union[str, Path]) -> Workload:
    """Read a workload trace previously written by :func:`save_workload`."""
    path = Path(path)
    with path.open() as f:
        data = json.load(f)
    return workload_from_dict(data)
