"""Workload profiling: fit phase statistics, generate matching traces.

Research workflows often start from a trace that cannot be redistributed.
The profile bridge makes studies reproducible anyway: `characterize` a
workload into a small statistical summary (publishable), then
`generate_from_profile` as many synthetic workloads with the same phase
statistics as needed (shareable).  The summary captures exactly the
moments the DVFS control problem is sensitive to — the level and spread of
memory intensity, compute intensity, and phase duration.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.workloads.phases import CorePhaseSequence, Phase, Workload

__all__ = ["WorkloadProfile", "characterize", "generate_from_profile"]

_MEM_MAX = 0.03
_MIN_PHASE = 1e-3


@dataclass(frozen=True)
class WorkloadProfile:
    """Statistical summary of a workload's phase structure.

    All statistics are pooled over every phase of every core, weighted
    equally per phase (duration weighting would hide short phases, which
    are what stress a controller).
    """

    name: str
    n_cores: int
    phases_per_core: float
    duration_mean: float
    duration_std: float
    mem_mean: float
    mem_std: float
    compute_mean: float
    compute_std: float

    def __post_init__(self) -> None:
        if self.n_cores <= 0:
            raise ValueError(f"n_cores must be positive, got {self.n_cores}")
        if self.phases_per_core < 1:
            raise ValueError(
                f"phases_per_core must be >= 1, got {self.phases_per_core}"
            )
        if self.duration_mean <= 0:
            raise ValueError("duration_mean must be positive")
        for field_name in ("duration_std", "mem_mean", "mem_std", "compute_std"):
            if getattr(self, field_name) < 0:
                raise ValueError(f"{field_name} must be >= 0")
        if not (0 <= self.compute_mean <= 1):
            raise ValueError("compute_mean must be in [0, 1]")


def characterize(workload: Workload) -> WorkloadProfile:
    """Fit a :class:`WorkloadProfile` to a workload's phases."""
    durations, mems, comps = [], [], []
    for seq in workload.sequences:
        for p in seq.phases:
            durations.append(p.duration)
            mems.append(p.mem_intensity)
            comps.append(p.compute_intensity)
    durations = np.array(durations)
    mems = np.array(mems)
    comps = np.array(comps)
    return WorkloadProfile(
        name=workload.name,
        n_cores=len(workload),
        phases_per_core=len(durations) / len(workload),
        duration_mean=float(durations.mean()),
        duration_std=float(durations.std()),
        mem_mean=float(mems.mean()),
        mem_std=float(mems.std()),
        compute_mean=float(comps.mean()),
        compute_std=float(comps.std()),
    )


def generate_from_profile(
    profile: WorkloadProfile,
    rng: np.random.Generator,
    n_cores: int | None = None,
) -> Workload:
    """Sample a fresh workload matching ``profile``'s statistics.

    Durations are drawn from a lognormal matched to the profile's
    mean/std (phase durations are non-negative and right-skewed in real
    traces); memory and compute intensities from clipped normals.

    Parameters
    ----------
    profile:
        The target statistics.
    rng:
        Seeded generator; the trace is reproducible from it.
    n_cores:
        Override the core count (defaults to the profile's).
    """
    n = profile.n_cores if n_cores is None else n_cores
    if n <= 0:
        raise ValueError(f"n_cores must be positive, got {n}")
    n_phases = max(1, int(round(profile.phases_per_core)))

    # Lognormal parameters from mean m and std s:
    m, s = profile.duration_mean, max(profile.duration_std, 1e-12)
    sigma2 = np.log(1.0 + (s / m) ** 2)
    mu = np.log(m) - sigma2 / 2.0
    sigma = np.sqrt(sigma2)

    sequences = []
    for _ in range(n):
        phases = []
        for _ in range(n_phases):
            duration = max(_MIN_PHASE, float(rng.lognormal(mu, sigma)))
            mem = float(
                np.clip(rng.normal(profile.mem_mean, profile.mem_std), 0.0, _MEM_MAX)
            )
            comp = float(
                np.clip(
                    rng.normal(profile.compute_mean, profile.compute_std), 0.0, 1.0
                )
            )
            phases.append(Phase(duration, mem, comp))
        sequences.append(CorePhaseSequence(phases))
    return Workload(sequences, name=f"{profile.name}-synthetic")
