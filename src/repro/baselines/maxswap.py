"""Maximize-then-swap baseline (the Procrustes/ILP-heuristic family).

The algorithm published as an efficient near-optimal alternative to ILP
solvers for power-constrained performance maximization:

1. **Maximize** — greedily upgrade the best marginal-utility levels until
   no further upgrade fits the budget (the greedy-ascent pass).
2. **Swap** — repeatedly look for a *pair* move: downgrade one core to free
   watts that let a different core upgrade for a net predicted-throughput
   gain.  Pure ascent cannot find these because the upgrade alone does not
   fit; the swap phase recovers most of the gap to the ILP optimum.

Each swap round costs O(n log n) (sort the downgrade candidates by power
freed, suffix-minimum of their throughput losses, then one binary search
per upgrade candidate); rounds are capped linearly in n.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from repro.baselines.estimator import LevelPredictions, PowerPerfEstimator
from repro.baselines.greedy import _greedy_ascent
from repro.manycore.chip import EpochObservation
from repro.manycore.config import SystemConfig
from repro.manycore.hetero import HeterogeneousMap
from repro.sim.interface import Controller

__all__ = ["solve_max_swap", "MaxSwapController"]


def _best_swap(
    power: np.ndarray,
    ips: np.ndarray,
    levels: np.ndarray,
    headroom: float,
) -> Optional[Tuple[float, int, int]]:
    """Find the best feasible (downgrade i, upgrade j) pair.

    Returns ``(gain, i, j)`` or ``None`` when no pair improves predicted
    throughput.
    """
    n, n_levels = power.shape
    cores = np.arange(n)
    can_up = levels < n_levels - 1
    can_dn = levels > 0
    if not np.any(can_up) or not np.any(can_dn):
        return None
    up_j = cores[can_up]
    dp_up = power[up_j, levels[up_j] + 1] - power[up_j, levels[up_j]]
    dips_up = ips[up_j, levels[up_j] + 1] - ips[up_j, levels[up_j]]
    dn_i = cores[can_dn]
    dp_dn = power[dn_i, levels[dn_i]] - power[dn_i, levels[dn_i] - 1]
    dips_dn = ips[dn_i, levels[dn_i]] - ips[dn_i, levels[dn_i] - 1]

    # Sort downgrade candidates by the power they free; the suffix minimum
    # of their throughput losses tells us, for any required amount of freed
    # power, the cheapest loss achieving at least that.
    order = np.argsort(dp_dn)
    dp_sorted = dp_dn[order]
    loss_sorted = dips_dn[order]
    m = len(order)
    # Two cheapest-loss downgrade candidates per suffix, so an upgrader
    # whose own downgrade is the cheapest still has an alternative partner.
    suffix_best1 = np.empty(m)
    suffix_arg1 = np.empty(m, dtype=int)
    suffix_best2 = np.empty(m)
    suffix_arg2 = np.empty(m, dtype=int)
    b1, a1, b2, a2 = np.inf, -1, np.inf, -1
    for k in range(m - 1, -1, -1):
        loss = loss_sorted[k]
        if loss < b1:
            b2, a2 = b1, a1
            b1, a1 = loss, k
        elif loss < b2:
            b2, a2 = loss, k
        suffix_best1[k], suffix_arg1[k] = b1, a1
        suffix_best2[k], suffix_arg2[k] = b2, a2

    best_gain = 0.0
    best_pair = None
    for idx, j in enumerate(up_j):
        need = dp_up[idx] - headroom
        k = int(np.searchsorted(dp_sorted, need, side="left"))
        if k >= m:
            continue
        i = dn_i[order[suffix_arg1[k]]]
        loss = suffix_best1[k]
        if i == j:
            if suffix_arg2[k] < 0:
                continue
            i = dn_i[order[suffix_arg2[k]]]
            loss = suffix_best2[k]
        gain = dips_up[idx] - loss
        if gain > best_gain + 1e-12:
            best_gain = gain
            best_pair = (float(gain), int(i), int(j))
    return best_pair


def solve_max_swap(
    pred: LevelPredictions, budget: float, max_rounds: Optional[int] = None
) -> np.ndarray:
    """Maximize-then-swap level assignment under ``budget``.

    Parameters
    ----------
    pred:
        Per-(core, level) power/throughput predictions.
    budget:
        Chip power budget, watts.
    max_rounds:
        Swap-round cap; defaults to ``4 * n_cores``.
    """
    power, ips = pred.power, pred.ips
    n = power.shape[0]
    levels = _greedy_ascent(pred, budget)
    total = float(np.sum(power[np.arange(n), levels]))
    rounds = 0
    cap = 4 * n if max_rounds is None else max_rounds
    while rounds < cap:
        rounds += 1
        pair = _best_swap(power, ips, levels, budget - total)
        if pair is None:
            break
        _, i, j = pair
        total -= power[i, levels[i]] - power[i, levels[i] - 1]
        levels[i] -= 1
        total += power[j, levels[j] + 1] - power[j, levels[j]]
        levels[j] += 1
        # Swaps can open direct-upgrade headroom; re-run the cheap ascent.
        upgraded = _greedy_ascent_from(pred, budget, levels, total)
        levels, total = upgraded
    return levels


def _greedy_ascent_from(
    pred: LevelPredictions,
    budget: float,
    levels: np.ndarray,
    total: float,
) -> Tuple[np.ndarray, float]:
    """Continue greedy ascent from an existing assignment."""
    power, ips = pred.power, pred.ips
    n, n_levels = power.shape
    improved = True
    while improved:
        improved = False
        best_ratio = 0.0
        best_j = -1
        for j in range(n):
            lvl = levels[j]
            if lvl + 1 >= n_levels:
                continue
            dp = power[j, lvl + 1] - power[j, lvl]
            if total + dp > budget:
                continue
            dips = ips[j, lvl + 1] - ips[j, lvl]
            ratio = dips / max(dp, 1e-12)
            if dips > 0 and ratio > best_ratio:
                best_ratio = ratio
                best_j = j
        if best_j >= 0:
            total += power[best_j, levels[best_j] + 1] - power[best_j, levels[best_j]]
            levels[best_j] += 1
            improved = True
    return levels, total


class MaxSwapController(Controller):
    """Per-epoch maximize-then-swap allocation on model predictions."""

    name = "max-swap"

    def __init__(self, cfg: SystemConfig, hetero: HeterogeneousMap | None = None) -> None:
        super().__init__(cfg)
        self._estimator = PowerPerfEstimator(cfg, hetero=hetero)

    def decide(self, obs: Optional[EpochObservation]) -> np.ndarray:
        if obs is None:
            pred = self._estimator.cold_predictions(self.n_cores)
        else:
            pred = self._estimator.predict(obs)
        return solve_max_swap(pred, self.cfg.power_budget)
