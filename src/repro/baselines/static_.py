"""Static (open-loop) baseline controllers.

These never react to telemetry; they exist to anchor the evaluation:

* :class:`StaticUniformController` — every core pinned to one level chosen
  offline as the highest uniform level whose worst-case chip power fits the
  budget.  This is TDP provisioning without any DVFS management.
* :class:`UncappedController` — every core at the top level, ignoring the
  budget entirely.  Upper-bounds throughput and lower-bounds compliance.
* :class:`PriorityController` — a fixed priority order; high-priority cores
  get the top level, the rest the bottom, with the cut chosen offline from
  worst-case power.  Models the crude "sprint some cores" policy.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from repro.baselines.estimator import PowerPerfEstimator
from repro.manycore.chip import EpochObservation
from repro.manycore.config import SystemConfig
from repro.sim.interface import Controller

__all__ = ["StaticUniformController", "UncappedController", "PriorityController"]


class StaticUniformController(Controller):
    """All cores pinned at the highest uniform level that fits the budget
    under worst-case (cold-model) power predictions."""

    name = "static-uniform"

    def __init__(self, cfg: SystemConfig) -> None:
        super().__init__(cfg)
        predictions = PowerPerfEstimator(cfg).cold_predictions(cfg.n_cores)
        chip_power_by_level = predictions.power.sum(axis=0)
        feasible = np.nonzero(chip_power_by_level <= cfg.power_budget)[0]
        # Worst-case infeasible even at the bottom: pin to the bottom level
        # (the least-bad static choice).
        self._level = int(feasible[-1]) if feasible.size else 0

    @property
    def level(self) -> int:
        """The offline-chosen uniform level."""
        return self._level

    def decide(self, obs: Optional[EpochObservation]) -> np.ndarray:
        return self._full(self._level)


class UncappedController(Controller):
    """Performance-greedy: top level always, budget ignored."""

    name = "uncapped"

    def decide(self, obs: Optional[EpochObservation]) -> np.ndarray:
        return self._full(self.n_levels - 1)


class PriorityController(Controller):
    """High-priority cores sprint at the top level, the rest idle at the
    bottom; the split point is the largest that fits the budget under
    worst-case predictions.

    Parameters
    ----------
    cfg:
        System under control.
    priority:
        Core indices in descending priority; defaults to core order.
    """

    name = "priority"

    def __init__(self, cfg: SystemConfig, priority: Optional[Sequence[int]] = None) -> None:
        super().__init__(cfg)
        if priority is None:
            priority = range(cfg.n_cores)
        priority = list(priority)
        if sorted(priority) != list(range(cfg.n_cores)):
            raise ValueError("priority must be a permutation of core indices")
        predictions = PowerPerfEstimator(cfg).cold_predictions(cfg.n_cores)
        p_top = float(predictions.power[0, -1])
        p_bot = float(predictions.power[0, 0])
        levels = np.zeros(cfg.n_cores, dtype=int)
        budget_left = cfg.power_budget - p_bot * cfg.n_cores
        for core in priority:
            extra = p_top - p_bot
            if budget_left >= extra:
                levels[core] = cfg.n_levels - 1
                budget_left -= extra
            # A partial upgrade to an intermediate level would squeeze more
            # in; the crude policy is deliberately all-or-nothing.
        self._levels = levels

    def decide(self, obs: Optional[EpochObservation]) -> np.ndarray:
        return self._levels.copy()
