"""Telemetry-driven power/performance prediction for model-based baselines.

The baselines the paper compares against (MaxBIPS, steepest-drop greedy)
are *model-based*: they predict, for every core and every VF level, what
power the core would draw and what throughput it would achieve, then search
over assignments.  This module supplies that prediction, calibrated on-line
from the last epoch's telemetry:

* the core's **memory intensity** is inverted from measured IPC through the
  first-order CPI model (the kind of offline-calibrated model such
  controllers ship with);
* the core's **switching activity** is inverted from measured power after
  subtracting a leakage estimate at an *assumed* die temperature.

The temperature assumption is a deliberate, realistic model error — the
estimator has no thermal sensor, so its leakage estimate drifts from truth
as the die heats.  This is precisely the model-mismatch argument the paper
makes for learning the policy model-free.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.manycore.chip import EpochObservation
from repro.manycore.config import SystemConfig
from repro.manycore.hetero import HeterogeneousMap

__all__ = ["LevelPredictions", "PowerPerfEstimator"]


@dataclass(frozen=True)
class LevelPredictions:
    """Predicted behaviour of every core at every VF level.

    Attributes
    ----------
    power:
        Predicted per-core power, watts, shape ``(n_cores, n_levels)``.
    ips:
        Predicted instructions per second, same shape.
    """

    power: np.ndarray
    ips: np.ndarray

    def __post_init__(self) -> None:
        if self.power.shape != self.ips.shape:
            raise ValueError("power and ips prediction shapes must match")


class PowerPerfEstimator:
    """Predicts per-core power/throughput across VF levels from telemetry.

    Parameters
    ----------
    cfg:
        System configuration; supplies the VF table and the calibrated
        model constants (base CPI, memory latency, Ceff, leakage law).
    assumed_temperature:
        Die temperature the leakage estimate is evaluated at; defaults to
        the technology's reference temperature.
    hetero:
        Optional core-type map.  Core types are platform facts a
        model-based controller ships with, so the estimator scales its
        frequency/CPI/power constants per core when given the map.
    """

    def __init__(
        self,
        cfg: SystemConfig,
        assumed_temperature: float | None = None,
        hetero: HeterogeneousMap | None = None,
    ) -> None:
        if not cfg.vf_levels:
            raise ValueError("SystemConfig must carry a non-empty VF table")
        self.cfg = cfg
        tech = cfg.technology
        self._t_assumed = (
            tech.t_ref if assumed_temperature is None else float(assumed_temperature)
        )
        if self._t_assumed <= 0:
            raise ValueError("assumed_temperature must be positive kelvin")
        self.hetero = (
            hetero if hetero is not None else HeterogeneousMap.homogeneous(cfg.n_cores)
        )
        if self.hetero.n_cores != cfg.n_cores:
            raise ValueError(
                f"hetero map covers {self.hetero.n_cores} cores but the system "
                f"has {cfg.n_cores}"
            )
        table_freqs = np.array([f for f, _ in cfg.vf_levels])
        self._volts = np.array([v for _, v in cfg.vf_levels])
        # Per-core tables, shape (n_cores, n_levels).
        self._freqs = table_freqs[None, :] * self.hetero.freq_scale[:, None]
        self._ceff = tech.ceff * self.hetero.ceff_scale
        self._base_cpi = cfg.base_cpi * self.hetero.cpi_scale
        leak_nominal = (
            self._volts
            * tech.leak_coeff
            * np.exp(tech.leak_temp_sens * (self._t_assumed - tech.t_ref))
        )
        self._leak_per_level = leak_nominal[None, :] * self.hetero.leak_scale[:, None]

    def predict(self, obs: EpochObservation) -> LevelPredictions:
        """Predictions for all cores and levels from one epoch's telemetry."""
        cfg = self.cfg
        levels = np.asarray(obs.levels, dtype=int)
        cores = np.arange(cfg.n_cores)
        f_cur = self._freqs[cores, levels]
        v_cur = self._volts[levels]

        # Invert memory intensity from IPC via CPI(f) = CPI0 + mu * L * f.
        cycles = np.maximum(f_cur * cfg.epoch_time, 1.0)
        ipc = np.clip(obs.sensed_instructions / cycles, 1e-6, None)
        mu = np.maximum(0.0, (1.0 / ipc - self._base_cpi)) / (
            cfg.mem_latency * f_cur + 1e-30
        )

        # Invert activity from measured power minus assumed leakage.
        leak_cur = self._leak_per_level[cores, levels]
        p_dyn = np.maximum(0.0, obs.sensed_power - leak_cur)
        act = p_dyn / (self._ceff * v_cur**2 * f_cur)
        act = np.clip(act, cfg.activity_range[0], cfg.activity_range[1])

        # Expand across all levels.
        f = self._freqs  # (n, L)
        v2 = self._volts[None, :] ** 2
        power = act[:, None] * self._ceff[:, None] * v2 * f + self._leak_per_level
        ips = f / (self._base_cpi[:, None] + mu[:, None] * cfg.mem_latency * f)
        return LevelPredictions(power=power, ips=ips)

    def cold_predictions(self, n_cores: int) -> LevelPredictions:
        """Predictions with no telemetry (first epoch): assume worst-case
        activity and pure-compute phases — the conservative cold start."""
        cfg = self.cfg
        if n_cores != cfg.n_cores:
            raise ValueError(
                f"cold_predictions expects the configured core count "
                f"{cfg.n_cores}, got {n_cores}"
            )
        f = self._freqs
        v2 = self._volts[None, :] ** 2
        act = cfg.activity_range[1]
        power = act * self._ceff[:, None] * v2 * f + self._leak_per_level
        ips = f / self._base_cpi[:, None]
        return LevelPredictions(power=power, ips=ips)
