"""Greedy model-based allocation baselines.

Two classic heuristics from the power-capping literature, both driven by
the on-line model of :class:`~repro.baselines.estimator.PowerPerfEstimator`:

* :class:`GreedyAscentController` — start every core at the bottom level;
  repeatedly grant the single level upgrade with the best predicted
  marginal throughput per watt, while the predicted chip power fits the
  budget.  (The "maximize-then-swap"/marginal-utility family.)
* :class:`SteepestDropController` — start every core at the top; while the
  predicted chip power exceeds the budget, take the single downgrade that
  sheds the most power per unit of predicted throughput lost.  (The
  steepest-drop heuristic of Winter et al.)

Both run a heap-driven pass per epoch: O(n·L log n) decision cost.  Their
weakness versus OD-RL is the model itself — the activity/leakage inversion
drifts with die temperature, so "fits the budget" in the model can overshoot
in reality, every epoch, systematically.
"""

from __future__ import annotations

import heapq
from typing import Optional

import numpy as np

from repro.baselines.estimator import LevelPredictions, PowerPerfEstimator
from repro.manycore.chip import EpochObservation
from repro.manycore.config import SystemConfig
from repro.manycore.hetero import HeterogeneousMap
from repro.sim.interface import Controller

__all__ = ["GreedyAscentController", "SteepestDropController"]


def _greedy_ascent(pred: LevelPredictions, budget: float) -> np.ndarray:
    """Bottom-up marginal-utility allocation.  Shared by controllers/tests."""
    power, ips = pred.power, pred.ips
    n, n_levels = power.shape
    levels = np.zeros(n, dtype=int)
    total = float(np.sum(power[:, 0]))
    heap = []
    for i in range(n):
        if n_levels > 1:
            dp = power[i, 1] - power[i, 0]
            dips = ips[i, 1] - ips[i, 0]
            heap.append((-dips / max(dp, 1e-12), i, 1))
    heapq.heapify(heap)
    while heap:
        _, i, lvl = heapq.heappop(heap)
        if levels[i] != lvl - 1:
            continue  # stale entry
        dp = power[i, lvl] - power[i, lvl - 1]
        if total + dp > budget:
            continue  # this upgrade does not fit; others may
        levels[i] = lvl
        total += dp
        if lvl + 1 < n_levels:
            dp_next = power[i, lvl + 1] - power[i, lvl]
            dips_next = ips[i, lvl + 1] - ips[i, lvl]
            heapq.heappush(heap, (-dips_next / max(dp_next, 1e-12), i, lvl + 1))
    return levels


def _steepest_drop(pred: LevelPredictions, budget: float) -> np.ndarray:
    """Top-down power shedding.  Shared by controllers/tests."""
    power, ips = pred.power, pred.ips
    n, n_levels = power.shape
    levels = np.full(n, n_levels - 1, dtype=int)
    total = float(np.sum(power[:, -1]))
    heap = []

    def push(i: int) -> None:
        lvl = levels[i]
        if lvl == 0:
            return
        dp = power[i, lvl] - power[i, lvl - 1]
        dips = ips[i, lvl] - ips[i, lvl - 1]
        # Most power shed per throughput lost first -> smallest dips/dp.
        heap.append((dips / max(dp, 1e-12), i, lvl))

    for i in range(n):
        push(i)
    heapq.heapify(heap)
    while total > budget and heap:
        _, i, lvl = heapq.heappop(heap)
        if levels[i] != lvl:
            continue  # stale entry
        levels[i] = lvl - 1
        total -= power[i, lvl] - power[i, lvl - 1]
        if levels[i] > 0:
            dp = power[i, levels[i]] - power[i, levels[i] - 1]
            dips = ips[i, levels[i]] - ips[i, levels[i] - 1]
            heapq.heappush(heap, (dips / max(dp, 1e-12), i, levels[i]))
    return levels


class GreedyAscentController(Controller):
    """Per-epoch bottom-up marginal-utility allocation on model predictions."""

    name = "greedy-ascent"

    def __init__(self, cfg: SystemConfig, hetero: HeterogeneousMap | None = None) -> None:
        super().__init__(cfg)
        self._estimator = PowerPerfEstimator(cfg, hetero=hetero)

    def decide(self, obs: Optional[EpochObservation]) -> np.ndarray:
        if obs is None:
            pred = self._estimator.cold_predictions(self.n_cores)
        else:
            pred = self._estimator.predict(obs)
        return _greedy_ascent(pred, self.cfg.power_budget)


class SteepestDropController(Controller):
    """Per-epoch top-down steepest-drop power shedding on model predictions."""

    name = "steepest-drop"

    def __init__(self, cfg: SystemConfig, hetero: HeterogeneousMap | None = None) -> None:
        super().__init__(cfg)
        self._estimator = PowerPerfEstimator(cfg, hetero=hetero)

    def decide(self, obs: Optional[EpochObservation]) -> np.ndarray:
        if obs is None:
            pred = self._estimator.cold_predictions(self.n_cores)
        else:
            pred = self._estimator.predict(obs)
        return _steepest_drop(pred, self.cfg.power_budget)
