"""Centralized Q-learning baseline.

A single chip-level RL agent.  The honest joint formulation — one action
per *assignment* of levels to cores — has ``L**n`` actions and is hopeless
beyond a handful of cores; what a practical centralized agent does instead
is collapse the action space to one global level for all cores.  That is
what this baseline implements:

* state: chip power slack bin × mean-IPC bin,
* action: the single VF level applied to every core.

It learns to track the budget about as well as OD-RL's agents do, but it
cannot differentiate cores, so — like the PID baseline — it leaves the
throughput of heterogeneous workloads on the table.  Its per-decision cost
is O(1) in core count, which makes it a useful scalability control in E5
(fast but weak, versus MaxBIPS: strong but slow, versus OD-RL: both).
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.core.agent import QLearningPopulation
from repro.core.reward import RewardParams, compute_reward, max_epoch_instructions
from repro.core.state import StateEncoder
from repro.manycore.chip import EpochObservation
from repro.manycore.config import SystemConfig
from repro.sim.interface import Controller

__all__ = ["CentralizedRLController"]


class CentralizedRLController(Controller):
    """One tabular Q-learning agent choosing a single global VF level.

    Parameters
    ----------
    cfg:
        System under control.
    gamma, seed:
        Q-learning discount and RNG seed, as for OD-RL.
    """

    name = "centralized-rl"

    def __init__(self, cfg: SystemConfig, gamma: float = 0.5, seed: int = 0) -> None:
        super().__init__(cfg)
        self.encoder = StateEncoder.variant("slack_ipc", cfg.n_levels)
        self.reward_params = RewardParams()
        self.agent = QLearningPopulation(
            n_agents=1,
            n_states=self.encoder.n_states,
            n_actions=cfg.n_levels,
            gamma=gamma,
            rng=np.random.default_rng(seed),
        )
        self._freqs = np.array([f for f, _ in cfg.vf_levels])
        self._instr_scale = max_epoch_instructions(cfg) * cfg.n_cores
        self.reset()

    def reset(self) -> None:
        self.agent.reset()
        self._prev_state: Optional[np.ndarray] = None
        self._prev_action: Optional[np.ndarray] = None

    def decide(self, obs: Optional[EpochObservation]) -> np.ndarray:
        if obs is None:
            start = self.n_levels // 2
            self._prev_action = np.array([start])
            return self._full(start)

        chip_power = float(np.sum(obs.sensed_power))
        chip_instr = float(np.sum(obs.sensed_instructions))
        freq = self._freqs[obs.levels]
        cycles = float(np.sum(freq)) * self.cfg.epoch_time
        mean_ipc = chip_instr / max(cycles, 1.0)

        state = self.encoder.encode(
            np.array([chip_power]),
            np.array([self.cfg.power_budget]),
            np.array([mean_ipc]),
            np.array([int(obs.levels[0])]),
        )
        reward = compute_reward(
            self.reward_params,
            np.array([chip_instr]),
            np.array([chip_power]),
            np.array([self.cfg.power_budget]),
            self._instr_scale,
        )
        if self._prev_state is not None and self._prev_action is not None:
            self.agent.update(self._prev_state, self._prev_action, reward, state)
        action = self.agent.act(state)
        self._prev_state = state
        self._prev_action = action
        return self._full(int(action[0]))
