"""Baseline controllers the paper compares OD-RL against."""

from repro.baselines.centralized_rl import CentralizedRLController
from repro.baselines.estimator import LevelPredictions, PowerPerfEstimator
from repro.baselines.greedy import GreedyAscentController, SteepestDropController
from repro.baselines.maxbips import MaxBIPSController, solve_dp, solve_exhaustive
from repro.baselines.maxswap import MaxSwapController, solve_max_swap
from repro.baselines.pid import PIDCappingController
from repro.baselines.static_ import (
    PriorityController,
    StaticUniformController,
    UncappedController,
)

__all__ = [
    "CentralizedRLController",
    "LevelPredictions",
    "PowerPerfEstimator",
    "GreedyAscentController",
    "SteepestDropController",
    "MaxBIPSController",
    "solve_dp",
    "solve_exhaustive",
    "MaxSwapController",
    "solve_max_swap",
    "PIDCappingController",
    "PriorityController",
    "StaticUniformController",
    "UncappedController",
]
