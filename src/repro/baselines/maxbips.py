"""MaxBIPS: the centralized optimizing baseline (Isci et al., MICRO 2006).

MaxBIPS picks, each interval, the VF assignment that maximizes predicted
chip throughput subject to the predicted chip power fitting the budget.
Two solvers are provided:

* :func:`solve_exhaustive` — literal enumeration of all ``L**n``
  assignments.  Exact; usable only for unit-test-sized systems, and the
  reason MaxBIPS does not scale (the paper's claim C3 contrasts against
  exactly this combinatorial blow-up).
* :func:`solve_dp` — pseudo-polynomial knapsack dynamic program over
  quantized power, O(n · L · Q) time and O(n · Q) memory for Q power
  quanta.  This is the practical "optimized" variant; it is still two to
  three orders of magnitude more expensive per decision than OD-RL's O(n)
  table lookups at hundreds of cores.

Both solvers maximize ``sum(ips)`` subject to ``sum(power) <= budget``.
The DP quantizes power *up* per (core, level) so its chosen assignment
never exceeds the budget in model terms (it may be slightly conservative).
"""

from __future__ import annotations

import itertools
from typing import Optional, Tuple

import numpy as np

from repro.baselines.estimator import LevelPredictions, PowerPerfEstimator
from repro.manycore.chip import EpochObservation
from repro.manycore.config import SystemConfig
from repro.manycore.hetero import HeterogeneousMap
from repro.sim.interface import Controller

__all__ = ["solve_exhaustive", "solve_dp", "MaxBIPSController"]

_EXHAUSTIVE_LIMIT = 2_000_000  # max assignments enumerated before refusing


def solve_exhaustive(pred: LevelPredictions, budget: float) -> np.ndarray:
    """Exact MaxBIPS by full enumeration.

    Raises
    ------
    ValueError
        If the assignment space exceeds the enumeration safety limit.
    """
    power, ips = pred.power, pred.ips
    n, n_levels = power.shape
    if n_levels**n > _EXHAUSTIVE_LIMIT:
        raise ValueError(
            f"{n_levels}**{n} assignments exceed the exhaustive-search limit; "
            f"use solve_dp"
        )
    best_levels: Optional[Tuple[int, ...]] = None
    best_ips = -np.inf
    idx = np.arange(n)
    for assignment in itertools.product(range(n_levels), repeat=n):
        total_p = float(np.sum(power[idx, assignment]))
        if total_p > budget:
            continue
        total_ips = float(np.sum(ips[idx, assignment]))
        if total_ips > best_ips:
            best_ips = total_ips
            best_levels = assignment
    if best_levels is None:
        # Infeasible even at the bottom everywhere: return all-bottom, the
        # least-overshooting assignment (matches solve_dp's fallback).
        return np.zeros(n, dtype=int)
    return np.array(best_levels, dtype=int)


def solve_dp(
    pred: LevelPredictions, budget: float, n_quanta: int = 400
) -> np.ndarray:
    """MaxBIPS via knapsack dynamic programming over quantized power.

    Parameters
    ----------
    pred:
        Per-(core, level) power/throughput predictions.
    budget:
        Chip power budget, watts.
    n_quanta:
        Number of power quanta the budget is discretized into.  Larger is
        closer to exact and proportionally slower.

    Returns
    -------
    numpy.ndarray
        Level per core.  All-bottom if even that is infeasible.
    """
    if n_quanta < 2:
        raise ValueError(f"n_quanta must be >= 2, got {n_quanta}")
    power, ips = pred.power, pred.ips
    n, n_levels = power.shape
    quantum = budget / n_quanta
    # Ceil-quantize so the solution never exceeds the true budget.
    cost = np.minimum(np.ceil(power / quantum).astype(int), n_quanta + 1)
    if float(np.sum(power[:, 0])) > budget:
        return np.zeros(n, dtype=int)

    neg_inf = -np.inf
    # value[w] = best total ips using cores 0..i with total cost exactly <= w
    value = np.full(n_quanta + 1, neg_inf)
    value[0] = 0.0
    choice = np.zeros((n, n_quanta + 1), dtype=np.int8)
    for i in range(n):
        new_value = np.full(n_quanta + 1, neg_inf)
        new_choice = np.zeros(n_quanta + 1, dtype=np.int8)
        for lvl in range(n_levels):
            c = int(cost[i, lvl])
            if c > n_quanta:
                continue
            gain = ips[i, lvl]
            # shifted[w] = value[w - c] + gain
            shifted = np.full(n_quanta + 1, neg_inf)
            shifted[c:] = value[: n_quanta + 1 - c] + gain
            better = shifted > new_value
            new_value = np.where(better, shifted, new_value)
            new_choice = np.where(better, np.int8(lvl), new_choice)
        value = new_value
        choice[i] = new_choice
    # value[w] holds the best throughput at total quantized cost exactly w;
    # "<= budget" is realized by taking the best bucket overall.
    w_best = int(np.argmax(value))
    if not np.isfinite(value[w_best]):
        return np.zeros(n, dtype=int)
    levels = np.zeros(n, dtype=int)
    w = w_best
    for i in range(n - 1, -1, -1):
        lvl = int(choice[i, w])
        levels[i] = lvl
        w -= int(cost[i, lvl])
    return levels


class MaxBIPSController(Controller):
    """Per-epoch MaxBIPS optimization on model predictions.

    Parameters
    ----------
    cfg:
        System under control.
    method:
        ``"dp"`` (default) or ``"exhaustive"``.
    n_quanta:
        Power quantization for the DP solver.  ``None`` (default) picks
        ``max(200, 8 * n_cores)`` so the power *quantum stays a fixed
        fraction of one core's draw* as the chip grows — without this the
        DP's accuracy collapses at hundreds of cores.  The consequence is
        O(n²) decision cost for fixed relative accuracy, which is exactly
        the scaling wall claim C3 measures against.
    """

    name = "maxbips"

    def __init__(
        self,
        cfg: SystemConfig,
        method: str = "dp",
        n_quanta: int | None = None,
        hetero: HeterogeneousMap | None = None,
    ) -> None:
        super().__init__(cfg)
        if method not in ("dp", "exhaustive"):
            raise ValueError(f"method must be 'dp' or 'exhaustive', got {method!r}")
        self.method = method
        self.n_quanta = (
            max(200, 8 * cfg.n_cores) if n_quanta is None else int(n_quanta)
        )
        if self.n_quanta < 2:
            raise ValueError(f"n_quanta must be >= 2, got {self.n_quanta}")
        self._estimator = PowerPerfEstimator(cfg, hetero=hetero)

    def decide(self, obs: Optional[EpochObservation]) -> np.ndarray:
        if obs is None:
            pred = self._estimator.cold_predictions(self.n_cores)
        else:
            pred = self._estimator.predict(obs)
        if self.method == "exhaustive":
            return solve_exhaustive(pred, self.cfg.power_budget)
        return solve_dp(pred, self.cfg.power_budget, self.n_quanta)
