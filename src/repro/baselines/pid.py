"""PID power-capping baseline.

The industrial state of practice (Intel RAPL-style firmware): a chip-level
PI feedback loop on total power error drives one *global* level signal that
all cores follow.  Reacts fast and tracks the budget tightly, but:

* it regulates the *average* — roughly half the epochs sit above the budget
  while the loop hunts (the overshoot OD-RL's claim C1 is measured against);
* it cannot differentiate cores, so memory-bound cores get the same
  frequency as compute-bound ones and watts are spent where they buy no
  throughput.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.manycore.chip import EpochObservation
from repro.manycore.config import SystemConfig
from repro.sim.interface import Controller

__all__ = ["PIDCappingController"]


class PIDCappingController(Controller):
    """Chip-level PI feedback on power error, actuating a global VF level.

    Implemented in velocity form, which is windup-free by construction:

        command += kp * (error - prev_error) + ki * error

    where ``error = (budget - power) / budget`` and ``command`` is a
    continuous level index rounded at actuation.

    Parameters
    ----------
    cfg:
        System under control.
    kp:
        Proportional gain (on the error *change*), in level steps.
    ki:
        Integral gain (on the error itself), in level steps per epoch.
    """

    name = "pid"

    def __init__(self, cfg: SystemConfig, kp: float = 2.0, ki: float = 1.5) -> None:
        super().__init__(cfg)
        if kp < 0 or ki < 0:
            raise ValueError("gains must be non-negative")
        if kp == 0 and ki == 0:
            raise ValueError("at least one gain must be positive")
        self.kp = kp
        self.ki = ki
        self.reset()

    def reset(self) -> None:
        self._prev_error: Optional[float] = None
        # Continuous level command; rounded per decision.  Starts mid-ladder.
        self._command = (self.n_levels - 1) / 2.0

    def decide(self, obs: Optional[EpochObservation]) -> np.ndarray:
        if obs is None:
            return self._full(int(round(self._command)))
        power = float(np.sum(obs.sensed_power))
        error = (self.cfg.power_budget - power) / self.cfg.power_budget
        delta = self.ki * error
        if self._prev_error is not None:
            delta += self.kp * (error - self._prev_error)
        self._prev_error = error
        self._command = float(np.clip(self._command + delta, 0.0, self.n_levels - 1))
        return self._full(int(round(self._command)))
